"""Benchmark: regenerate Fig. 12 (output IO per instance, broadcast thresholds).

Paper result: broadcast cuts the tail workers' output IO by ~42% at the
heuristic threshold (λ·E/W); pushing the threshold lower helps only
marginally (<5% difference across a wide range).
"""

import pytest

from repro.experiments import fig12_io_broadcast


@pytest.mark.paper_artifact("fig12")
def test_bench_fig12_io_broadcast(benchmark):
    result = benchmark.pedantic(
        lambda: fig12_io_broadcast.run(num_nodes=20_000, avg_degree=12.0, num_workers=16),
        rounds=1, iterations=1)
    print()
    print(fig12_io_broadcast.format_result(result))
    heuristic_name = f"threshold={result.heuristic_threshold}"
    assert result.tail_reduction(heuristic_name) > 0.2
    # Lower thresholds give only marginal additional benefit.
    reductions = [result.tail_reduction(name) for name in result.series if name != "base"]
    assert max(reductions) - result.tail_reduction(heuristic_name) < 0.3
