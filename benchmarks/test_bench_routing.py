"""Benchmark: columnar ClusterLayout routing vs the dict-based baseline.

The superstep routing path used to resolve every message destination through
Python — a dict comprehension per row for global→local translation and one
``nonzero`` mask per destination partition for block bucketing.  The
:class:`~repro.cluster.layout.ClusterLayout` refactor replaces both with
dense ``int64`` gathers and one stable argsort
(:meth:`~repro.pregel.vertex.MessageBlock.split_by`).

This micro-benchmark times one routing round — global→local translation of
every destination plus bucketing of a 100k-row message block across 8
workers — through both implementations and asserts the columnar path wins by
at least 5x (typical local runs show 20-60x; the margin exists so a loaded CI
runner cannot flake the build).
"""

import time

import numpy as np
import pytest

from repro.cluster.layout import ClusterLayout
from repro.graph.partition import HashPartitioner
from repro.pregel.vertex import MessageBlock

from bench_thresholds import min_speedup

NUM_EDGES = 100_000
NUM_NODES = 20_000
NUM_WORKERS = 8
PAYLOAD_DIM = 16
TIMING_ROUNDS = 3   # best-of to damp scheduler noise on shared CI runners
# CI-enforced floor; scale with REPRO_BENCH_MIN_SPEEDUP_SCALE on loaded runners.
MIN_SPEEDUP = min_speedup(5.0)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(23)
    dst_ids = rng.integers(0, NUM_NODES, size=NUM_EDGES).astype(np.int64)
    payload = rng.normal(size=(NUM_EDGES, PAYLOAD_DIM))
    partitioner = HashPartitioner(NUM_WORKERS)
    layout = ClusterLayout.build(NUM_NODES, partitioner)
    block = MessageBlock(dst_ids=dst_ids, payload=payload)
    return dst_ids, block, partitioner, layout


def dict_baseline_round(dst_ids, block, partitioner, local_dicts):
    """The pre-refactor path: per-row dict translation + per-target masks."""
    targets = partitioner.assign_many(dst_ids)
    buckets = {}
    for target in np.unique(targets):
        rows = np.nonzero(targets == target)[0]
        piece = block.take(rows)
        # Receiver-side global→local translation, one dict lookup per row.
        local = np.asarray([local_dicts[int(target)][int(v)] for v in piece.dst_ids],
                           dtype=np.int64)
        buckets[int(target)] = (piece, local)
    return buckets


def columnar_round(dst_ids, block, layout):
    """The refactored path: owner gather + argsort split + local gather."""
    targets = layout.owners(dst_ids)
    buckets = {}
    for target, piece in block.split_by(targets, NUM_WORKERS):
        buckets[target] = (piece, layout.local_indices(piece.dst_ids))
    return buckets


def _best_of(fn) -> tuple:
    best = float("inf")
    value = None
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


@pytest.mark.paper_artifact("routing_microbench")
def test_bench_routing(benchmark, workload):
    dst_ids, block, partitioner, layout = workload
    # Per-partition global→local dicts, exactly what PregelPartition kept.
    local_dicts = {pid: {int(node): i for i, node in enumerate(layout.nodes_of(pid))}
                   for pid in range(NUM_WORKERS)}

    # Warm both paths (allocator, caches) before timing.
    dict_baseline_round(dst_ids, block, partitioner, local_dicts)
    columnar_round(dst_ids, block, layout)

    baseline_seconds, baseline_buckets = _best_of(
        lambda: dict_baseline_round(dst_ids, block, partitioner, local_dicts))
    benchmark.pedantic(lambda: columnar_round(dst_ids, block, layout),
                       rounds=1, iterations=1)
    columnar_seconds, columnar_buckets = _best_of(
        lambda: columnar_round(dst_ids, block, layout))

    # Same mailboxes, byte for byte.
    assert set(baseline_buckets) == set(columnar_buckets)
    for target in baseline_buckets:
        base_piece, base_local = baseline_buckets[target]
        col_piece, col_local = columnar_buckets[target]
        np.testing.assert_array_equal(base_piece.dst_ids, col_piece.dst_ids)
        np.testing.assert_array_equal(base_piece.payload, col_piece.payload)
        np.testing.assert_array_equal(base_local, col_local)

    speedup = baseline_seconds / columnar_seconds
    print()
    print(f"dict + mask routing ({NUM_EDGES} rows, {NUM_WORKERS} workers): "
          f"{baseline_seconds * 1e3:.2f} ms")
    print(f"ClusterLayout + split_by routing:               "
          f"{columnar_seconds * 1e3:.2f} ms")
    print(f"columnar routing speedup:                       {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"columnar routing must be >= {MIN_SPEEDUP}x faster than the "
        f"dict-based baseline (got {speedup:.1f}x)")
