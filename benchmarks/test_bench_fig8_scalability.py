"""Benchmark: regenerate Fig. 8 (cost vs. data scale).

Paper result: on the MapReduce backend, a 2-layer GAT's wall-clock time and
cpu*min both grow nearly linearly over three orders of magnitude of graph
scale (the reproduction sweeps a 16× range; the log-log slope ≈ 1 is the
reproduced property).
"""

import pytest

from repro.experiments import fig8_scalability


@pytest.mark.paper_artifact("fig8")
def test_bench_fig8_scalability(benchmark):
    result = benchmark.pedantic(
        lambda: fig8_scalability.run(scales=(2_000, 8_000, 32_000), backend="mapreduce",
                                     num_workers=8),
        rounds=1, iterations=1)
    print()
    print(fig8_scalability.format_result(result))
    assert 0.8 < result.loglog_slope("cpu_minutes") < 1.2
    assert 0.8 < result.loglog_slope("wall_clock_minutes") < 1.2
