"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures and prints
the reproduced rows (captured in ``bench_output.txt`` when run with ``tee``),
while pytest-benchmark records the harness runtime.  Runtimes measure this
reproduction's simulator, not the paper's cluster — the printed tables carry
the actual reproduced numbers.
"""

import pytest


def pytest_configure(config):
    # The benchmark files live outside the default testpaths; make sure
    # pytest-benchmark is active even when the plugin autoload is disabled.
    config.addinivalue_line("markers", "paper_artifact(name): paper table/figure regenerated")
