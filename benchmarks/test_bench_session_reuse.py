"""Benchmark: plan-once/infer-many vs re-planning on every run.

The serving argument for :class:`InferenceSession`: ``prepare()`` runs table
ingest, the strategy plan, the shadow rewrite and the backend layout (Pregel
partitioning) once, so N repeated ``infer()`` calls skip all of it, while N×
one-shot ``InferTurbo.run()`` pays it every time — the scenario here feeds
both paths the same warehouse ``(NodeTable, EdgeTable)`` pair, which the old
API re-ingested per call.

Two guarantees are asserted:

* **functional** — the session path plans exactly once for N executions while
  the one-shot path plans N times, and both produce bit-identical scores;
* **wall-clock** — the session path is not slower (within a 10% scheduler
  -noise allowance; typical local runs show a 1.05–1.2x win, printed below).
"""

import time
import warnings

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.graph.tables import graph_to_tables
from repro.inference import (
    InferenceConfig,
    InferenceSession,
    InferTurbo,
    StrategyConfig,
)

REPEATS = 8
TIMING_ROUNDS = 2   # best-of to damp scheduler noise on shared CI runners
NOISE_ALLOWANCE = 1.10


def _config():
    return InferenceConfig(backend="pregel", num_workers=8,
                           strategies=StrategyConfig(partial_gather=True, broadcast=True,
                                                     shadow_nodes=True,
                                                     hub_threshold_override=40))


class _PlanCounter:
    """Delegating spy counting how often a session's backend re-plans."""

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.plan_calls = 0

    def default_cluster(self, num_workers):
        return self._inner.default_cluster(num_workers)

    def plan(self, model, graph, config):
        self.plan_calls += 1
        return self._inner.plan(model, graph, config)

    def execute(self, plan, metrics):
        return self._inner.execute(plan, metrics)


@pytest.fixture(scope="module")
def workload():
    graph = powerlaw_graph(num_nodes=3000, avg_degree=8.0, skew="out",
                           feature_dim=16, num_classes=4, seed=17)
    model = build_model("sage", 16, 32, 4, num_layers=2, seed=3)
    return graph_to_tables(graph), model


def _run_oneshot(tables, model):
    scores = None
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for _ in range(REPEATS):
            scores = InferTurbo(model, _config()).run(tables).scores
    return scores


def _run_session(tables, model):
    session = InferenceSession(model, _config())
    spy = _PlanCounter(session.backend)
    session.backend = spy
    session.prepare(tables)
    plan = session.plan
    results = session.infer_many(REPEATS)
    assert spy.plan_calls == 1, "reuse path must plan exactly once"
    assert session.plan is plan, "reuse path must not re-plan"
    return results[-1].scores


def _best_of(fn) -> tuple:
    """(best wall-clock over TIMING_ROUNDS, last return value)."""
    best = float("inf")
    value = None
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


@pytest.mark.paper_artifact("session_reuse")
def test_bench_session_reuse(benchmark, workload):
    tables, model = workload

    # Warm both paths once (imports, allocator) before timing.
    _run_oneshot(tables, model)
    oneshot_seconds, oneshot_scores = _best_of(lambda: _run_oneshot(tables, model))

    benchmark.pedantic(lambda: _run_session(tables, model), rounds=1, iterations=1)
    session_seconds, session_scores = _best_of(lambda: _run_session(tables, model))

    np.testing.assert_array_equal(oneshot_scores, session_scores)
    speedup = oneshot_seconds / session_seconds
    print()
    print(f"{REPEATS}x InferTurbo.run(tables):            {oneshot_seconds:.3f}s "
          f"({REPEATS} ingests + {REPEATS} plans)")
    print(f"prepare(tables) + {REPEATS}x session.infer(): {session_seconds:.3f}s "
          f"(1 ingest + 1 plan)")
    print(f"plan-reuse speedup:                     {speedup:.2f}x")
    assert session_seconds < oneshot_seconds * NOISE_ALLOWANCE, (
        f"plan-once/infer-many ({session_seconds:.3f}s) should not lose to "
        f"{REPEATS}x one-shot runs ({oneshot_seconds:.3f}s)")
