"""Benchmark: regenerate Fig. 9 (per-instance latency vs. in-degree skew).

Paper result: instance latency grows with the number of in-edge records the
instance receives; partial-gather flattens the distribution (points cluster
around the mean) and removes the stragglers.
"""

import pytest

from repro.experiments import fig9_partial_gather


@pytest.mark.paper_artifact("fig9")
def test_bench_fig9_partial_gather_latency(benchmark):
    result = benchmark.pedantic(
        lambda: fig9_partial_gather.run(num_nodes=20_000, avg_degree=12.0, num_workers=16),
        rounds=1, iterations=1)
    print()
    print(fig9_partial_gather.format_result(result))
    assert result.partial_gather.variance_of_time() < result.base.variance_of_time()
    assert result.partial_gather.max_over_mean_time() <= result.base.max_over_mean_time()
