"""Benchmark: incremental delta-inference vs full re-prepare + re-infer.

The serving scenario the delta subsystem exists for: a recurring scoring job
over a graph whose node features drift between runs.  Before, the only safe
way to pick up a 1% feature refresh was ``prepare()`` + ``infer()`` from
scratch; now ``apply_delta()`` patches the cached plan in place and
``infer(mode="incremental")`` reruns just the dirty k-hop region — scores
bit-identical to the full run.

This benchmark builds a 100k-edge power-law graph (broadcast + shadow-nodes
enabled, 8 workers), refreshes 1% of the feature rows, and times

* ``apply_delta`` + ``infer(mode="incremental")`` against
* a fresh ``prepare`` + full ``infer`` on the mutated graph,

asserting the incremental path wins by at least 3x (typical local runs show
~4x; both sides are measured best-of-3 in the same process so a loaded CI
runner degrades them together).
"""

import time

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference import (
    GraphDelta,
    InferenceConfig,
    InferenceSession,
    StrategyConfig,
)

from bench_thresholds import min_speedup

NUM_NODES = 25_000
AVG_DEGREE = 4.0          # ~100k edges
FEATURE_DIM = 32
HIDDEN_DIM = 64
NUM_CLASSES = 8
NUM_WORKERS = 8
DELTA_FRACTION = 0.01     # 1% of the feature rows refreshed per round
TIMING_ROUNDS = 3         # best-of to damp scheduler noise on shared runners
# CI-enforced floor; scale with REPRO_BENCH_MIN_SPEEDUP_SCALE on loaded runners.
MIN_SPEEDUP = min_speedup(3.0)


def make_config() -> InferenceConfig:
    return InferenceConfig(backend="pregel", num_workers=NUM_WORKERS,
                           strategies=StrategyConfig(partial_gather=True,
                                                     broadcast=True,
                                                     shadow_nodes=True))


@pytest.mark.paper_artifact("delta_inference_microbench")
def test_bench_delta_inference(benchmark):
    graph = powerlaw_graph(num_nodes=NUM_NODES, avg_degree=AVG_DEGREE, skew="out",
                           feature_dim=FEATURE_DIM, num_classes=NUM_CLASSES, seed=42)
    model = build_model("gcn", FEATURE_DIM, HIDDEN_DIM, NUM_CLASSES,
                        num_layers=2, seed=0)
    rng = np.random.default_rng(7)
    delta_size = max(1, int(NUM_NODES * DELTA_FRACTION))

    session = InferenceSession(model, make_config())
    session.prepare(graph)
    session.infer()                      # warm the incremental state cache

    def one_delta():
        ids = rng.choice(NUM_NODES, size=delta_size, replace=False)
        rows = rng.standard_normal((delta_size, FEATURE_DIM))
        return GraphDelta(node_ids=ids, node_features=rows)

    incremental_seconds = float("inf")
    incremental_scores = None
    for _ in range(TIMING_ROUNDS):
        delta = one_delta()
        start = time.perf_counter()
        session.apply_delta(delta)
        incremental_scores = session.infer(mode="incremental").scores
        incremental_seconds = min(incremental_seconds, time.perf_counter() - start)
    benchmark.pedantic(
        lambda: (session.apply_delta(one_delta()),
                 session.infer(mode="incremental")),
        rounds=1, iterations=1)

    # The old path: the same (already mutated) graph through a cold plan.
    full_seconds = float("inf")
    full_scores = None
    for _ in range(TIMING_ROUNDS):
        fresh = InferenceSession(
            build_model("gcn", FEATURE_DIM, HIDDEN_DIM, NUM_CLASSES,
                        num_layers=2, seed=0),
            make_config())
        start = time.perf_counter()
        fresh.prepare(graph)
        full_scores = fresh.infer().scores
        full_seconds = min(full_seconds, time.perf_counter() - start)

    # Not just fast — *right*: the benchmark's last incremental run serves the
    # same graph state the fresh session just planned, bit for bit.
    last_incremental = session.infer(mode="incremental").scores
    np.testing.assert_array_equal(last_incremental, full_scores)

    speedup = full_seconds / incremental_seconds
    print()
    print(f"full re-prepare + infer   ({NUM_NODES} nodes, ~{graph.num_edges} edges): "
          f"{full_seconds * 1e3:.1f} ms")
    print(f"apply_delta + incremental ({delta_size} dirty rows, "
          f"{DELTA_FRACTION:.0%} of nodes):           {incremental_seconds * 1e3:.1f} ms")
    print(f"incremental delta-inference speedup:            {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"incremental infer after a {DELTA_FRACTION:.0%} feature delta must be "
        f">= {MIN_SPEEDUP}x faster than a full re-prepare + infer "
        f"(got {speedup:.1f}x)")
