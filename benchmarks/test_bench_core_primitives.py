"""Micro-benchmarks of the core primitives (real wall-clock, multiple rounds).

These are not paper artefacts; they track the reproduction's own performance:
segment reductions (the numerical core of gather), one full-graph inference
pass per backend, and one traditional-pipeline batch — useful for catching
performance regressions in the simulator itself.
"""

import numpy as np
import pytest

from repro.baselines.khop_pipeline import TraditionalConfig, TraditionalPipeline
from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference import InferTurbo, InferenceConfig, StrategyConfig
from repro.tensor import ops
from repro.tensor.tensor import Tensor


@pytest.fixture(scope="module")
def bench_graph():
    return powerlaw_graph(num_nodes=5_000, avg_degree=10.0, skew="both", feature_dim=32,
                          num_classes=4, seed=0)


@pytest.fixture(scope="module")
def bench_model(bench_graph):
    return build_model("sage", bench_graph.feature_dim, 64, 4, num_layers=2, seed=0)


def test_bench_segment_sum(benchmark):
    rng = np.random.default_rng(0)
    values = Tensor(rng.normal(size=(200_000, 64)))
    ids = rng.integers(0, 10_000, size=200_000)
    benchmark(lambda: ops.segment_sum(values, ids, 10_000))


def test_bench_segment_softmax(benchmark):
    rng = np.random.default_rng(1)
    values = Tensor(rng.normal(size=(100_000, 4)))
    ids = rng.integers(0, 5_000, size=100_000)
    benchmark(lambda: ops.segment_softmax(values, ids, 5_000))


def test_bench_pregel_inference(benchmark, bench_graph, bench_model):
    config = InferenceConfig(backend="pregel", num_workers=8,
                             strategies=StrategyConfig(partial_gather=True))
    engine = InferTurbo(bench_model, config)
    result = benchmark.pedantic(lambda: engine.run(bench_graph), rounds=3, iterations=1)
    assert result.scores.shape == (bench_graph.num_nodes, 4)


def test_bench_mapreduce_inference(benchmark, bench_graph, bench_model):
    config = InferenceConfig(backend="mapreduce", num_workers=8,
                             strategies=StrategyConfig(partial_gather=True))
    engine = InferTurbo(bench_model, config)
    result = benchmark.pedantic(lambda: engine.run(bench_graph), rounds=2, iterations=1)
    assert result.scores.shape == (bench_graph.num_nodes, 4)


def test_bench_traditional_batch(benchmark, bench_graph, bench_model):
    pipeline = TraditionalPipeline(bench_model, TraditionalConfig(num_workers=4, fanout=10))
    targets = np.arange(256)
    result = benchmark.pedantic(
        lambda: pipeline.run(bench_graph, targets=targets, compute_scores=True),
        rounds=3, iterations=1)
    assert result.scores is not None
