"""Benchmark: regenerate Fig. 10 (time variance for out-degree strategies).

Paper result: on an out-degree-skewed graph, both Shadow-Nodes and Broadcast
reduce the variance of per-instance time relative to the base configuration,
and combining them (SN+BC) is the best setting for GraphSAGE.
"""

import pytest

from repro.experiments import fig10_outdegree


@pytest.mark.paper_artifact("fig10")
def test_bench_fig10_outdegree_variance(benchmark):
    result = benchmark.pedantic(
        lambda: fig10_outdegree.run(num_nodes=20_000, avg_degree=12.0, num_workers=16),
        rounds=1, iterations=1)
    print()
    print(fig10_outdegree.format_result(result))
    variances = result.variances()
    assert variances["SN"] < variances["base"]
    assert variances["BC"] < variances["base"]
    assert variances["SN+BC"] < variances["base"]
    assert variances["SN+BC"] <= min(variances["SN"], variances["BC"])
