"""Shared speedup-floor scaling for the CI-enforced micro-benchmarks.

Every serving micro-benchmark asserts a minimum speedup (the ``>=3x`` /
``>=5x`` floors).  Typical runs clear them by a wide margin, but a heavily
oversubscribed shared CI runner can squeeze the *baseline* and *candidate*
timings differently and flake an otherwise healthy build.  Setting

    REPRO_BENCH_MIN_SPEEDUP_SCALE=0.5

multiplies every floor by the given factor (here: halves it) in one place —
no per-file edits, no silently divergent thresholds.  Unset (or ``1``) keeps
today's floors exactly.
"""

from __future__ import annotations

import os

SCALE_ENV_VAR = "REPRO_BENCH_MIN_SPEEDUP_SCALE"


def min_speedup(base: float) -> float:
    """``base`` scaled by ``$REPRO_BENCH_MIN_SPEEDUP_SCALE`` (default 1.0)."""
    raw = os.environ.get(SCALE_ENV_VAR, "1.0")
    try:
        scale = float(raw)
    except ValueError:
        raise ValueError(
            f"{SCALE_ENV_VAR}={raw!r} is not a number; expected a positive "
            "scale factor like 0.5") from None
    if scale <= 0:
        raise ValueError(f"{SCALE_ENV_VAR} must be positive, got {scale}")
    return base * scale
