"""Benchmark: the async gateway vs a serial request-at-a-time serving loop.

The serving scenario the gateway exists for: N tenants each fire a burst of
concurrent infer requests per tick while their features drift between ticks.
A request-at-a-time loop over a bare :class:`SessionPool` pays one backend
execution *per request*.  The gateway batches each tenant's burst into one
plan-cache-hit execution (every waiter shares the tick's result) and overlaps
different tenants' ticks on its worker threads — so the win here is first
algorithmic (requests / tick, deterministic) and only second parallel.

Both sides serve the identical workload — the same tenants, the same delta
stream, the same request count — and the gateway's answers are checked
bit-identical to the serial loop's before any clock starts.  With at least
``REQUIRED_CORES`` usable cores the gateway must win by ``>=2x`` wall clock
(scaled by ``REPRO_BENCH_MIN_SPEEDUP_SCALE`` like every CI floor); on smaller
machines the identity checks still run and the timing assertion is skipped.

The run dumps ``BENCH_serving_gateway.json`` (gateway snapshot + p50/p99 tick
latency + requests/second for both sides) — uploaded as a CI artifact so
serving latency is trackable across commits.  Set
``REPRO_BENCH_ARTIFACT_DIR`` to redirect where it lands (default: CWD).
"""

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference import (
    GatewayConfig,
    GraphDelta,
    InferenceConfig,
    SessionPool,
    StrategyConfig,
)
from repro.serving import ServingGateway

from bench_thresholds import min_speedup

NUM_TENANTS = 4
NUM_NODES = 8_000
AVG_DEGREE = 4.0
FEATURE_DIM = 16
DELTA_ROWS = 30           # feature rows refreshed per tenant per tick
BURST = 6                 # concurrent infer requests per tenant per tick
TICKS = 4                 # measured serving rounds
REQUIRED_CORES = 4        # below this, assert identity but skip the timing
MIN_SPEEDUP = min_speedup(2.0)
ARTIFACT = "BENCH_serving_gateway.json"


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def make_config() -> InferenceConfig:
    return InferenceConfig(backend="pregel", num_workers=4,
                           strategies=StrategyConfig(partial_gather=True,
                                                     broadcast=True,
                                                     shadow_nodes=True))


def make_model():
    return build_model("gcn", FEATURE_DIM, 32, 4, num_layers=2, seed=0)


def make_tenants():
    return {f"tenant-{seed}": powerlaw_graph(
        num_nodes=NUM_NODES, avg_degree=AVG_DEGREE, skew="out",
        feature_dim=FEATURE_DIM, num_classes=4, seed=seed)
        for seed in range(NUM_TENANTS)}


def delta_stream(num_ticks: int):
    """One deterministic delta per tenant per tick, same for both sides."""
    rng = np.random.default_rng(11)
    stream = []
    for _ in range(num_ticks):
        per_tenant = {}
        for tenant in range(NUM_TENANTS):
            ids = rng.choice(NUM_NODES, size=DELTA_ROWS, replace=False)
            per_tenant[f"tenant-{tenant}"] = GraphDelta(
                node_ids=ids,
                node_features=rng.standard_normal((DELTA_ROWS, FEATURE_DIM)))
        stream.append(per_tenant)
    return stream


def serial_serve(pool, tenants, deltas):
    """The baseline: one execution per request, request at a time."""
    results = {tenant_id: [] for tenant_id in tenants}
    for tick_deltas in deltas:
        for tenant_id, graph in tenants.items():
            pool.apply_delta(graph, tick_deltas[tenant_id], defer=True)
            for _ in range(BURST):
                results[tenant_id].append(
                    pool.infer(graph).scores)
    return results


async def gateway_serve(gateway, tenants, deltas):
    """The same workload through the gateway: bursts batch into ticks."""
    results = {tenant_id: [] for tenant_id in tenants}
    for tick_deltas in deltas:
        await asyncio.gather(*(
            gateway.submit_delta(tenant_id, tick_deltas[tenant_id])
            for tenant_id in tenants))
        burst = await asyncio.gather(*(
            gateway.infer(tenant_id)
            for tenant_id in tenants for _ in range(BURST)))
        for index, tenant_id in enumerate(
                tenant for tenant in tenants for _ in range(BURST)):
            results[tenant_id].append(burst[index].scores)
    return results


@pytest.mark.paper_artifact("serving_gateway_microbench")
def test_bench_serving_gateway(benchmark):
    model = make_model()
    total_requests = NUM_TENANTS * BURST * TICKS

    # --- identity pass: same delta stream, both sides, compared result for
    # result (burst requests all see the post-delta content of their tick).
    serial_tenants = make_tenants()
    serial_pool = SessionPool(model, make_config(), capacity=NUM_TENANTS)
    serial_results = serial_serve(serial_pool, serial_tenants,
                                  delta_stream(TICKS))

    gateway_tenants = make_tenants()

    async def run_gateway(tenants, deltas, warm=True):
        pool = SessionPool(model, make_config(), capacity=NUM_TENANTS)
        config = GatewayConfig(max_queue_depth=4 * BURST, max_batch=BURST,
                               max_concurrent_ticks=NUM_TENANTS)
        async with ServingGateway(pool, config) as gateway:
            for tenant_id, graph in tenants.items():
                gateway.register(tenant_id, graph)
            if warm:
                await asyncio.gather(*(gateway.warm(tenant_id)
                                       for tenant_id in tenants))
            started = time.perf_counter()
            results = await gateway_serve(gateway, tenants, deltas)
            elapsed = time.perf_counter() - started
            return results, gateway.snapshot(), elapsed

    gateway_results, snapshot, _ = asyncio.run(
        run_gateway(gateway_tenants, delta_stream(TICKS)))
    for tenant_id, reference in serial_results.items():
        assert len(gateway_results[tenant_id]) == len(reference)
        for serial_scores, gateway_scores in zip(reference,
                                                 gateway_results[tenant_id]):
            np.testing.assert_array_equal(gateway_scores, serial_scores)

    # The algorithmic contract behind the speedup: every tenant's burst of
    # BURST concurrent requests collapsed into far fewer executions.
    assert snapshot.requests == total_requests
    assert snapshot.ticks <= total_requests / 2, (
        f"batching collapsed {snapshot.requests} requests into only "
        f"{snapshot.ticks} ticks — expected at least 2x")

    cores = usable_cores()
    if cores < REQUIRED_CORES:
        pytest.skip(
            f"only {cores} usable core(s); the timing floor needs "
            f"{REQUIRED_CORES} (identity + batching checks passed)")

    # --- timing pass: fresh pools on both sides, identical workloads.
    timing_serial_tenants = make_tenants()
    timing_pool = SessionPool(model, make_config(), capacity=NUM_TENANTS)
    for graph in timing_serial_tenants.values():       # warm: plan + prime
        timing_pool.infer(graph)
    started = time.perf_counter()
    serial_serve(timing_pool, timing_serial_tenants, delta_stream(TICKS))
    serial_seconds = time.perf_counter() - started

    # One timed run only: tenants are built inside the run (the deltas drift
    # their graphs, so a second pass over the same objects would measure
    # different content) and the snapshot/elapsed are captured by closure
    # instead of calling the workload a second time.
    captured = {}

    def timed_gateway():
        _, snap, elapsed = asyncio.run(
            run_gateway(make_tenants(), delta_stream(TICKS)))
        captured["snapshot"], captured["elapsed"] = snap, elapsed

    benchmark.pedantic(timed_gateway, rounds=1, iterations=1)
    timing_snapshot = captured["snapshot"]
    gateway_seconds = captured["elapsed"]

    speedup = serial_seconds / gateway_seconds
    payload = timing_snapshot.to_dict()
    payload.update({
        "benchmark": "serving_gateway",
        "num_tenants": NUM_TENANTS,
        "num_nodes": NUM_NODES,
        "burst": BURST,
        "measured_ticks": TICKS,
        "usable_cores": cores,
        "serial_seconds": serial_seconds,
        "gateway_seconds": gateway_seconds,
        "serial_requests_per_second": total_requests / serial_seconds,
        "gateway_requests_per_second": total_requests / gateway_seconds,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
    })
    artifact_dir = Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
    artifact_dir.mkdir(parents=True, exist_ok=True)
    (artifact_dir / ARTIFACT).write_text(json.dumps(payload, indent=2))

    print()
    print(f"{NUM_TENANTS} tenants x {BURST} concurrent req x {TICKS} ticks "
          f"({NUM_NODES} nodes each, {DELTA_ROWS} feature rows/tick)")
    print(f"serial loop (1 execution per request):  {serial_seconds * 1e3:.0f} ms "
          f"({total_requests / serial_seconds:.0f} req/s)")
    print(f"gateway (batched ticks, overlapped):    {gateway_seconds * 1e3:.0f} ms "
          f"({total_requests / gateway_seconds:.0f} req/s)")
    print(f"p50 tick {payload['p50_tick_seconds'] * 1e3:.1f} ms / "
          f"p99 tick {payload['p99_tick_seconds'] * 1e3:.1f} ms; "
          f"{payload['requests']} req in {payload['ticks']} tick(s)")
    print(f"serving speedup: {speedup:.1f}x  -> {artifact_dir / ARTIFACT}")
    assert speedup >= MIN_SPEEDUP, (
        f"gateway must serve the burst workload >= {MIN_SPEEDUP}x faster "
        f"than the request-at-a-time loop (got {speedup:.1f}x)")
