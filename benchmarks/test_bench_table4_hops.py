"""Benchmark: regenerate Table IV (time / resource vs. hops, with OOM).

Paper result: traditional costs grow exponentially with the number of hops and
the nbr10000 configuration runs out of memory at 3 hops, while InferTurbo's
cost grows roughly linearly with the layer count.
"""

import pytest

from repro.experiments import table4_hops


@pytest.mark.paper_artifact("table4")
def test_bench_table4_hops(benchmark):
    result = benchmark.pedantic(lambda: table4_hops.run(num_workers=8),
                                rounds=1, iterations=1)
    print()
    print(table4_hops.format_result(result))
    print(f"nbr10000 growth 1->3 hops: "
          f"{result.growth_ratio('nbr10000', 1, 3):.1f}x; "
          f"ours: {result.growth_ratio('ours', 1, 3):.1f}x")
    assert result.growth_ratio("nbr10000", 1, 3) > result.growth_ratio("ours", 1, 3)
    assert result.by("nbr10000", 3).oom
    assert not result.by("ours", 3).oom
