"""Benchmark: regenerate Table I (dataset summary)."""

import pytest

from repro.experiments import table1_datasets


@pytest.mark.paper_artifact("table1")
def test_bench_table1_dataset_summary(benchmark):
    result = benchmark.pedantic(lambda: table1_datasets.run(size="small"),
                                rounds=1, iterations=1)
    print()
    print(table1_datasets.format_result(result))
    assert len(result.rows) == 4
