"""Benchmark: regenerate Fig. 13 (output IO per instance, shadow-node thresholds).

Paper result: shadow-nodes reduce the tail workers' output IO (~53% in the
paper's setting) by spreading hub out-edges over mirrors; the gain saturates
as the threshold is lowered below the heuristic value.
"""

import pytest

from repro.experiments import fig13_io_shadow


@pytest.mark.paper_artifact("fig13")
def test_bench_fig13_io_shadow(benchmark):
    result = benchmark.pedantic(
        lambda: fig13_io_shadow.run(num_nodes=20_000, avg_degree=12.0, num_workers=16),
        rounds=1, iterations=1)
    print()
    print(fig13_io_shadow.format_result(result))
    heuristic_name = f"threshold={result.heuristic_threshold}"
    assert result.tail_reduction(heuristic_name) > 0.1
    lowest = [name for name in result.series if name != "base"][-1]
    assert result.tail_reduction(lowest) >= result.tail_reduction(heuristic_name) - 0.05
