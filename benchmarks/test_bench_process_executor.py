"""Benchmark: process-per-partition execution vs the serial in-process loop.

The first benchmark in this repository whose speedup comes from real parallel
hardware rather than an algorithmic win: the same ~100k-edge power-law
serving workload runs through ``InferenceConfig(executor="serial")`` (the
historical sequential partition loop) and ``executor="process"`` (one OS
process per partition; partitions/features/layout shipped once via shared
memory, per-superstep message blocks exchanged as pickled numpy bundles, see
``src/repro/cluster/executor.py``).

Scores must be **bit-identical** — the executor is a speed substrate, never a
semantics change — and with 8 workers on a machine with at least
``REQUIRED_CORES`` usable cores the process executor must win by
``>=2x`` wall clock (scaled by ``REPRO_BENCH_MIN_SPEEDUP_SCALE`` like every
CI floor).  On smaller machines the identity check still runs and the timing
assertion is skipped: a single-core runner physically cannot demonstrate a
parallel speedup, and pretending otherwise would only teach the build to
ignore this benchmark.

Timing covers the steady serving state (plan prepared, workers started,
arrays shipped): that is the state a long-lived session or pool serves
traffic from, and exactly what the cost model's measured-wall-clock
validation path (``CostSummary.validation``) prices.
"""

import os
import time

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference import InferenceConfig, InferenceSession, StrategyConfig

from bench_thresholds import min_speedup

NUM_NODES = 25_000
AVG_DEGREE = 4.0          # ~100k edges
FEATURE_DIM = 128         # paper-realistic feature width (datasets: 100-768)
HIDDEN_DIM = 96
NUM_CLASSES = 8
NUM_LAYERS = 2
NUM_WORKERS = 8
HUB_THRESHOLD = 100       # broadcast dedupes hub payloads (shrinks IPC volume)
TIMING_ROUNDS = 3         # best-of to damp scheduler noise on shared runners
REQUIRED_CORES = 4        # below this, assert identity but skip the timing
MIN_SPEEDUP = min_speedup(2.0)


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def make_config(executor: str) -> InferenceConfig:
    return InferenceConfig(
        backend="pregel", num_workers=NUM_WORKERS, executor=executor,
        strategies=StrategyConfig(partial_gather=True, broadcast=True,
                                  hub_threshold_override=HUB_THRESHOLD))


@pytest.fixture(scope="module")
def workload():
    graph = powerlaw_graph(num_nodes=NUM_NODES, avg_degree=AVG_DEGREE,
                           skew="out", feature_dim=FEATURE_DIM,
                           num_classes=NUM_CLASSES, seed=29)
    model = build_model("gcn", FEATURE_DIM, HIDDEN_DIM, NUM_CLASSES,
                        num_layers=NUM_LAYERS, seed=0)
    return graph, model


def _best_of(fn) -> float:
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.paper_artifact("process_executor_microbench")
def test_bench_process_executor(benchmark, workload):
    graph, model = workload
    assert graph.num_edges >= 100_000, "benchmark must cover a >=100k-edge graph"

    serial = InferenceSession(model, make_config("serial"))
    serial.prepare(graph)
    process = InferenceSession(model, make_config("process"))
    process.prepare(graph)
    try:
        # Warm both paths: first process infer starts the workers and ships
        # the partition/feature/layout arrays into shared memory once.
        serial_scores = serial.infer().scores
        process_result = process.infer()

        # The contract before the clock: bit-identical scores.
        np.testing.assert_array_equal(process_result.scores, serial_scores)
        # The run carried real per-process wall measurements for the cost
        # model's validation path.
        assert process_result.cost.validation is not None
        assert process_result.cost.validation.measured_total_seconds > 0

        cores = usable_cores()
        if cores < REQUIRED_CORES:
            pytest.skip(
                f"only {cores} usable core(s); a parallel speedup cannot be "
                f"demonstrated below {REQUIRED_CORES} (identity checks passed)")
        serial_seconds = _best_of(lambda: serial.infer())
        benchmark.pedantic(lambda: process.infer(), rounds=1, iterations=1)
        process_seconds = _best_of(lambda: process.infer())

        speedup = serial_seconds / process_seconds
        print()
        print(f"serial executor,  {NUM_WORKERS} simulated workers: "
              f"{serial_seconds * 1e3:.0f} ms / infer")
        print(f"process executor, {NUM_WORKERS} OS processes:      "
              f"{process_seconds * 1e3:.0f} ms / infer")
        print(f"wall-clock speedup ({cores} usable cores):        "
              f"{speedup:.2f}x")

        assert speedup >= MIN_SPEEDUP, (
            f"process executor must be >= {MIN_SPEEDUP}x faster than the "
            f"serial loop at {NUM_WORKERS} workers on {cores} cores "
            f"(got {speedup:.2f}x)")
    finally:
        serial.close()
        process.close()
