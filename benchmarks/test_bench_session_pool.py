"""Benchmark: multi-tenant SessionPool ticks vs re-preparing every tenant.

The serving scenario the pool exists for: one deployed model scores N tenant
graphs on every tick while each tenant's features drift between ticks.
Without the serving tier, every tick pays — per tenant — a fresh ingest,
strategy plan, shadow rewrite, partitioning and a full-graph execution.
With it, each tenant is planned once, deltas patch the cached plan in place,
and scoring reruns only the delta's k-hop reach.

This benchmark serves 3 tenant graphs (30k nodes / ~120k edges each, all hub
strategies on, 8 workers), refreshes ~0.2% of each tenant's feature rows per
tick, and times

* pooled ticks — ``pool.apply_delta`` + ``pool.infer(mode="incremental")``
  per tenant, all plan-cache hits — against
* re-prepare ticks — the delta applied to the graph, then a fresh
  ``InferenceSession.prepare()+infer()`` per tenant,

asserting the pooled path wins by at least 3x (typical local runs show
~4x; both sides are measured best-of in the same process so a loaded CI
runner degrades them together).  It also asserts the functional acceptance
bar directly: after warm-up the pooled ticks perform **zero** backend
``plan()`` calls (counted by a delegating spy) and the served scores are
bit-identical to a from-scratch plan on the same drifted graph.
"""

import time

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference import (
    GraphDelta,
    InferenceConfig,
    InferenceSession,
    SessionPool,
    StrategyConfig,
)
from repro.inference.delta import apply_delta_to_graph

from bench_thresholds import min_speedup

NUM_TENANTS = 3
NUM_NODES = 30_000
AVG_DEGREE = 4.0
FEATURE_DIM = 16
DELTA_ROWS = 60           # ~0.2% of each tenant's feature rows per tick
TIMING_ROUNDS = 3         # best-of to damp scheduler noise on shared runners
# CI-enforced floor; scale with REPRO_BENCH_MIN_SPEEDUP_SCALE on loaded runners.
MIN_SPEEDUP = min_speedup(3.0)


def make_config() -> InferenceConfig:
    return InferenceConfig(backend="pregel", num_workers=8,
                           strategies=StrategyConfig(partial_gather=True,
                                                     broadcast=True,
                                                     shadow_nodes=True))


class _PlanCounter:
    """Delegating spy counting backend plan() calls."""

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.plan_calls = 0

    def default_cluster(self, num_workers):
        return self._inner.default_cluster(num_workers)

    def plan(self, model, graph, config):
        self.plan_calls += 1
        return self._inner.plan(model, graph, config)

    def execute(self, plan, metrics):
        return self._inner.execute(plan, metrics)

    def apply_delta(self, plan, delta):
        return self._inner.apply_delta(plan, delta)

    def execute_incremental(self, plan, metrics, feature_dirty, topo_dirty):
        return self._inner.execute_incremental(plan, metrics,
                                               feature_dirty, topo_dirty)


@pytest.mark.paper_artifact("session_pool_microbench")
def test_bench_session_pool(benchmark):
    model = build_model("gcn", FEATURE_DIM, 32, 4, num_layers=2, seed=0)
    tenants = [powerlaw_graph(num_nodes=NUM_NODES, avg_degree=AVG_DEGREE,
                              skew="out", feature_dim=FEATURE_DIM,
                              num_classes=4, seed=seed)
               for seed in range(NUM_TENANTS)]
    rng = np.random.default_rng(7)

    def one_delta() -> GraphDelta:
        ids = rng.choice(NUM_NODES, size=DELTA_ROWS, replace=False)
        return GraphDelta(node_ids=ids,
                          node_features=rng.standard_normal((DELTA_ROWS, FEATURE_DIM)))

    # Warm-up: one prepare per tenant, then arm + prime the lazy incremental
    # cache (first delta arms it, the following run fills it).
    pool = SessionPool(model, make_config(), capacity=NUM_TENANTS)
    spies = []
    for graph in tenants:
        pool.infer(graph)
        pool.apply_delta(graph, one_delta())
        pool.infer(graph, mode="incremental")
        spy = _PlanCounter(pool.session_for(graph).backend)
        pool.session_for(graph).backend = spy
        spies.append(spy)
    assert pool.stats.misses == NUM_TENANTS and pool.stats.evictions == 0

    def pooled_tick():
        for graph in tenants:
            pool.apply_delta(graph, one_delta())
            pool.infer(graph, mode="incremental")

    def reprepare_tick():
        for graph in tenants:
            apply_delta_to_graph(graph, one_delta())
            session = InferenceSession(model, make_config())
            session.prepare(graph)
            session.infer()

    pooled_seconds = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        pooled_tick()
        pooled_seconds = min(pooled_seconds, time.perf_counter() - start)
    benchmark.pedantic(pooled_tick, rounds=1, iterations=1)

    reprepare_seconds = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        reprepare_tick()
        reprepare_seconds = min(reprepare_seconds, time.perf_counter() - start)

    # Functional acceptance: every pooled tick was a plan-cache hit...
    assert all(spy.plan_calls == 0 for spy in spies), "pooled tick re-planned"
    assert pool.stats.misses == NUM_TENANTS
    # ...and not just fast — *right*: one more pooled tick on tenant 0 must be
    # bit-identical to a from-scratch plan over the same drifted graph.
    delta = one_delta()
    pool.apply_delta(tenants[0], delta)
    pooled_scores = pool.infer(tenants[0], mode="incremental").scores
    fresh = InferenceSession(model, make_config())
    fresh.prepare(tenants[0])
    np.testing.assert_array_equal(pooled_scores, fresh.infer().scores)

    speedup = reprepare_seconds / pooled_seconds
    edges = tenants[0].num_edges
    print()
    print(f"1 tick = {NUM_TENANTS} tenants x ({NUM_NODES} nodes, ~{edges} edges), "
          f"{DELTA_ROWS} feature rows refreshed per tenant")
    print(f"re-prepare tick (fresh plan + full infer per tenant): "
          f"{reprepare_seconds * 1e3:.0f} ms")
    print(f"pooled tick (cached plan + incremental per tenant):   "
          f"{pooled_seconds * 1e3:.0f} ms   [{pool.stats.describe()}]")
    print(f"multi-tenant serving speedup: {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"pooled serving ticks must be >= {MIN_SPEEDUP}x faster than "
        f"re-preparing every tenant per tick (got {speedup:.1f}x)")
