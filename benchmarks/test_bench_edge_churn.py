"""Benchmark: in-place edge churn vs full re-prepare under shadow nodes.

The PR-10 tentpole scenario: a serving session over a power-law graph with
the shadow-nodes rewrite enabled, fed a steady stream of *edge* deltas whose
hub set never changes.  Position-stable mirror assignment means every such
delta patches the cached plan in place — mirror out-edge slices spliced,
live partitions re-shipped — instead of forcing ``prepare()`` from scratch.

This benchmark builds a ~100k-edge power-law graph (broadcast + shadow-nodes,
8 workers, hub threshold pinned so ~180 hubs exist and survive the churn)
and swaps 1% of the edges per round.  The churn models a hot region of a
streaming graph — a few hundred low-activity nodes rewiring among themselves
(think a burst of interactions inside one community) — which is also the
case the incremental path is built for: the dirty k-hop region stays small
while the hub mirrors, routing tables, and the other 99% of the adjacency
are reused untouched.  It times

* ``apply_delta`` + ``infer(mode="incremental")`` against
* a fresh ``prepare`` + full ``infer`` on the mutated graph,

asserting every delta lands in place (``DeltaOutcome.in_place``), that the
final incremental scores are bit-identical to the fresh plan's, and that the
in-place path wins by at least 3x (typical local runs show ~4x).  The run
dumps ``BENCH_edge_churn.json`` — uploaded as a CI artifact; set
``REPRO_BENCH_ARTIFACT_DIR`` to redirect where it lands (default: CWD).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference import (
    GraphDelta,
    InferenceConfig,
    InferenceSession,
    StrategyConfig,
)

from bench_thresholds import min_speedup

NUM_NODES = 25_000
AVG_DEGREE = 4.0          # ~100k edges
FEATURE_DIM = 32
HIDDEN_DIM = 64
NUM_CLASSES = 8
NUM_WORKERS = 8
CHURN_FRACTION = 0.01     # 1% of the edges swapped per round
HUB_THRESHOLD = 60        # pinned: ~180 hubs on the seed-42 graph
ZONE_SIZE = 400           # hot-region size: low-degree nodes rewiring edges
ZONE_MAX_DEGREE = 3       # zone members start (almost) quiet
ZONE_SEED_EDGES = 1_200   # pre-churn zone-internal edges so removals exist
SOURCE_DEGREE_CAP = 44    # keep every churn source well below the hub bar
TIMING_ROUNDS = 3         # best-of to damp scheduler noise on shared runners
ARTIFACT = "BENCH_edge_churn.json"
# CI-enforced floor; scale with REPRO_BENCH_MIN_SPEEDUP_SCALE on loaded runners.
MIN_SPEEDUP = min_speedup(3.0)


def make_config() -> InferenceConfig:
    return InferenceConfig(
        backend="pregel", num_workers=NUM_WORKERS,
        strategies=StrategyConfig(partial_gather=True, broadcast=True,
                                  shadow_nodes=True,
                                  hub_threshold_override=HUB_THRESHOLD))


def one_churn_delta(graph, zone: np.ndarray, zone_mask: np.ndarray,
                    rng: np.random.Generator) -> GraphDelta:
    """Swap ~1% of the edges inside the hot zone, hub set untouched.

    Adds and removals both stay zone-internal and balance out, so no zone
    node drifts toward the hub threshold and no hub's out-degree (hence no
    mirror-group count) ever moves — every delta must land in place.
    """
    degrees = graph.out_degrees()
    half = max(1, int(graph.num_edges * CHURN_FRACTION) // 2)
    sources = zone[degrees[zone] < SOURCE_DEGREE_CAP]
    added_src = rng.choice(sources, size=half)
    added_dst = rng.choice(zone, size=half)
    internal = np.nonzero(zone_mask[graph.src] & zone_mask[graph.dst])[0]
    removed = rng.choice(internal, size=half, replace=False)
    return GraphDelta(added_src=added_src, added_dst=added_dst,
                      removed_edge_ids=removed)


@pytest.mark.paper_artifact("edge_churn_microbench")
def test_bench_edge_churn(benchmark):
    graph = powerlaw_graph(num_nodes=NUM_NODES, avg_degree=AVG_DEGREE, skew="out",
                           feature_dim=FEATURE_DIM, num_classes=NUM_CLASSES, seed=42)
    degrees = graph.out_degrees()
    assert int((degrees >= HUB_THRESHOLD).sum()) > 0, \
        "benchmark graph must have shadow hubs for the churn to exercise mirrors"
    model = build_model("gcn", FEATURE_DIM, HIDDEN_DIM, NUM_CLASSES,
                        num_layers=2, seed=0)
    rng = np.random.default_rng(7)
    zone = np.nonzero(degrees <= ZONE_MAX_DEGREE)[0][:ZONE_SIZE]
    assert zone.size == ZONE_SIZE
    zone_mask = np.zeros(NUM_NODES, dtype=bool)
    zone_mask[zone] = True

    session = InferenceSession(model, make_config())
    session.prepare(graph)
    session.infer()                      # warm the incremental state cache
    # Seed the hot region (untimed): gives round 1 zone-internal edges to
    # remove, after which the balanced churn keeps the pool replenished.
    session.apply_delta(GraphDelta(added_src=rng.choice(zone, size=ZONE_SEED_EDGES),
                                   added_dst=rng.choice(zone, size=ZONE_SEED_EDGES)))
    session.infer(mode="incremental")

    churn_edges = 2 * max(1, int(graph.num_edges * CHURN_FRACTION) // 2)
    incremental_seconds = float("inf")
    for _ in range(TIMING_ROUNDS):
        delta = one_churn_delta(graph, zone, zone_mask, rng)
        start = time.perf_counter()
        outcome = session.apply_delta(delta)
        session.infer(mode="incremental")
        incremental_seconds = min(incremental_seconds,
                                  time.perf_counter() - start)
        assert outcome.in_place, outcome.reason

    def timed_round():
        outcome = session.apply_delta(one_churn_delta(graph, zone, zone_mask, rng))
        assert outcome.in_place, outcome.reason
        session.infer(mode="incremental")

    benchmark.pedantic(timed_round, rounds=1, iterations=1)
    assert session.num_replans == 0

    # The old path: the same (already mutated) graph through a cold plan.
    full_seconds = float("inf")
    full_scores = None
    for _ in range(TIMING_ROUNDS):
        fresh = InferenceSession(
            build_model("gcn", FEATURE_DIM, HIDDEN_DIM, NUM_CLASSES,
                        num_layers=2, seed=0),
            make_config())
        start = time.perf_counter()
        fresh.prepare(graph)
        full_scores = fresh.infer().scores
        full_seconds = min(full_seconds, time.perf_counter() - start)

    # Not just fast — *right*: the in-place patched plan serves the same
    # graph state the fresh session just planned, bit for bit.
    last_incremental = session.infer(mode="incremental").scores
    np.testing.assert_array_equal(last_incremental, full_scores)

    speedup = full_seconds / incremental_seconds
    payload = {
        "num_nodes": NUM_NODES,
        "num_edges": int(graph.num_edges),
        "churn_edges_per_round": churn_edges,
        "churn_fraction": CHURN_FRACTION,
        "hub_threshold": HUB_THRESHOLD,
        "num_hubs": int((graph.out_degrees() >= HUB_THRESHOLD).sum()),
        "zone_size": ZONE_SIZE,
        "incremental_seconds": incremental_seconds,
        "full_seconds": full_seconds,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "replans": session.num_replans,
    }
    artifact_dir = Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
    artifact_dir.mkdir(parents=True, exist_ok=True)
    (artifact_dir / ARTIFACT).write_text(json.dumps(payload, indent=2))

    print()
    print(f"full re-prepare + infer ({NUM_NODES} nodes, ~{graph.num_edges} edges, "
          f"{payload['num_hubs']} hubs): {full_seconds * 1e3:.1f} ms")
    print(f"in-place edge patch + incremental ({churn_edges} churned edges, "
          f"{CHURN_FRACTION:.0%}): {incremental_seconds * 1e3:.1f} ms")
    print(f"edge-churn speedup: {speedup:.1f}x  -> {artifact_dir / ARTIFACT}")
    assert speedup >= MIN_SPEEDUP, (
        f"in-place edge churn must be >= {MIN_SPEEDUP}x faster than a full "
        f"re-prepare + infer (got {speedup:.1f}x)")
