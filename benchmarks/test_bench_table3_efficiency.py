"""Benchmark: regenerate Table III (time and resource vs. traditional pipelines).

Paper result: InferTurbo is 30–50× faster and uses 40–50× less cpu*min than the
traditional PyG/DGL-style inference pipeline on MAG240M, with the Pregel
backend ahead of the MapReduce backend.
"""

import pytest

from repro.experiments import table3_efficiency


@pytest.mark.paper_artifact("table3")
def test_bench_table3_time_and_resource(benchmark):
    result = benchmark.pedantic(
        lambda: table3_efficiency.run(size="small", num_workers=32,
                                      archs=["sage", "gat"], cost_sample_size=128),
        rounds=1, iterations=1)
    print()
    print(table3_efficiency.format_result(result))
    for arch in ("sage", "gat"):
        for backend in ("pregel", "mapreduce"):
            print(f"{arch}/{backend}: speedup {result.speedup(arch, backend):.1f}x, "
                  f"resource saving {result.resource_saving(arch, backend):.1f}x")
    # Shape assertions: large speedups, Pregel ahead of MapReduce.
    assert result.speedup("sage", "pregel") > 10
    assert result.resource_saving("sage", "pregel") > 10
    assert (result.by("sage", "pregel").wall_clock_minutes
            < result.by("sage", "mapreduce").wall_clock_minutes)
