"""Benchmark: regenerate Fig. 7 (prediction consistency under sampling).

Paper result: with a sampling fanout of 10, ~30% of nodes receive at least two
different predicted classes over 10 runs; even at fanout 1000 about 0.1% still
flip; InferTurbo's full-graph inference is identical at every run.
"""

import pytest

from repro.experiments import fig7_consistency


@pytest.mark.paper_artifact("fig7")
def test_bench_fig7_consistency(benchmark):
    result = benchmark.pedantic(
        lambda: fig7_consistency.run(fanouts=(2, 5, 10, 25), num_runs=10,
                                     num_targets=256, size="tiny", num_epochs=4),
        rounds=1, iterations=1)
    print()
    print(fig7_consistency.format_result(result))
    fractions = [result.unstable_fraction(f) for f in result.fanouts]
    # Smaller fanout -> more unstable predictions; InferTurbo never flips.
    assert fractions[0] > fractions[-1]
    assert result.inferturbo_unstable_fraction() == 0.0
