"""Benchmark: regenerate Table II (prediction performance parity).

The paper's claim is that InferTurbo matches PyG/DGL metrics on every dataset
and architecture because only the execution of inference changes, never the
GNN formula.  The reproduced table therefore shows (near-)identical metrics in
every row across the traditional pipeline and both InferTurbo backends.
"""

import pytest

from repro.experiments import table2_performance


@pytest.mark.paper_artifact("table2")
def test_bench_table2_performance_parity(benchmark):
    result = benchmark.pedantic(
        lambda: table2_performance.run(datasets=["ppi", "products", "mag240m"],
                                       archs=["sage", "gat"], size="tiny",
                                       num_epochs=4, hidden_dim=32, num_workers=4),
        rounds=1, iterations=1)
    print()
    print(table2_performance.format_result(result))
    print(f"max metric gap between pipelines: {result.max_gap():.2e}")
    assert len(result.rows) == 6
    assert result.max_gap() < 1e-6
