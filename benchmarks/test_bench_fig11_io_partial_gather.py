"""Benchmark: regenerate Fig. 11 (input IO per instance, partial-gather).

Paper result: partial-gather reduces total communication by ~25% and the
input IO of the 10% most loaded workers by up to ~73%, because each node
receives at most one (pre-aggregated) message per sending worker.
"""

import pytest

from repro.experiments import fig11_io_partial


@pytest.mark.paper_artifact("fig11")
def test_bench_fig11_io_partial_gather(benchmark):
    result = benchmark.pedantic(
        lambda: fig11_io_partial.run(num_nodes=20_000, avg_degree=12.0, num_workers=16),
        rounds=1, iterations=1)
    print()
    print(fig11_io_partial.format_result(result))
    assert result.total_reduction() > 0.15
    assert result.tail_reduction() > 0.3
