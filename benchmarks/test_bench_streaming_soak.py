"""Benchmark: the streaming soak — steady-state SLO gates under faults.

This is the long-haul companion to ``tests/test_streaming_soak.py``: one
seeded continuous-ingest soak (``$REPRO_SOAK_SECONDS`` simulated seconds,
default 30; ``$REPRO_SOAK_SEED`` reseeds the whole stream) driven through the
async gateway with a generated fault plan mixing worker kills, forced pool
evictions and delta-arrival bursts.  The CI tier-1 matrix runs the default
30-second soak under both executors; the nightly job stretches it to minutes.

Gates, in order of importance:

1. **Deterministic SLOs (always asserted)** — the soak is ``clean`` (every
   tick's scores matched the un-faulted oracle; every injected crash
   recovered), nothing in the logical stream was dropped, zero delta-forced
   re-plans on the stable-hub stream (shadow nodes on — edge deltas must
   patch cached plans in place), and the shm segment census never grew past
   the steady state a short un-faulted run of the same stack establishes
   (the segment-leak ceiling).
2. **Latency SLO (core-gated)** — p99 tick latency stays under a ceiling;
   on starved runners the ceiling is skipped, not the correctness gates.
   ``REPRO_BENCH_MIN_SPEEDUP_SCALE`` relaxes the ceiling the same way it
   relaxes every CI speedup floor (scale 0.5 doubles the allowed p99).

The run dumps ``BENCH_streaming_soak.json`` (full :class:`SoakReport`) —
uploaded as a CI artifact so steady-state serving health is trackable across
commits.  ``REPRO_BENCH_ARTIFACT_DIR`` redirects where it lands (default CWD).
"""

import os

import pytest

from repro.streaming import (
    FaultPlan,
    SoakConfig,
    WorkloadConfig,
    dump_report,
    run_soak,
    soak_seconds_from_env,
    soak_seed_from_env,
)

from bench_thresholds import min_speedup

TENANTS = 2
GRAPH_NODES = 300
FAULT_RATE = 0.15         # ~1 fault per 7 simulated seconds
FAULT_KINDS = ("kill_worker", "delay_deltas", "evict_tenant")
REQUIRED_CORES = 2        # below this, assert the SLOs but skip the latency gate
#: Base p99 ceiling per inference tick (seconds); relaxed by the shared
#: REPRO_BENCH_MIN_SPEEDUP_SCALE knob (scale 0.5 => ceiling doubles).
P99_TICK_CEILING_SECONDS = 0.5 / min_speedup(1.0)


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def soak_config(ticks: int, seed: int, faults) -> SoakConfig:
    return SoakConfig(
        workload=WorkloadConfig(seed=seed, ticks=ticks, tenants=TENANTS,
                                deltas_per_tick=2, infer_every=2,
                                snapshot_every=5, sliding_window=3),
        faults=faults, graph_nodes=GRAPH_NODES, shadow_nodes=True)


@pytest.mark.paper_artifact("streaming_soak")
def test_bench_streaming_soak(benchmark):
    ticks = soak_seconds_from_env(30)
    seed = soak_seed_from_env(0)
    plan = FaultPlan.generate(seed=seed, ticks=ticks, tenants=TENANTS,
                              kinds=FAULT_KINDS, rate=FAULT_RATE)

    # Steady-state shm census from a short un-faulted run of the same stack:
    # the long faulted soak must never exceed it (segment-leak ceiling).
    baseline = run_soak(soak_config(ticks=4, seed=seed, faults=None))
    assert baseline.clean

    captured = {}

    def timed_soak():
        captured["report"] = run_soak(soak_config(ticks, seed, plan))

    benchmark.pedantic(timed_soak, rounds=1, iterations=1)
    report = captured["report"]

    # --- deterministic SLO gates: always asserted, any machine, any leg.
    assert report.clean, (
        f"soak not clean: {report.mismatches} mismatch(es) "
        f"(first at tick {report.first_mismatch_tick}), "
        f"{report.unrecovered} unrecovered crash(es)")
    assert report.recoveries == report.crashes
    assert report.deltas_delivered == report.trace_deltas, (
        "the logical stream dropped deltas")
    assert report.infers_served == report.oracle_checks
    assert report.replans == 0, (
        f"{report.replans} delta-forced re-plan(s) on the stable-hub stream "
        "— edge deltas must patch cached plans in place")
    if report.executor == "process":
        assert baseline.max_shm_segments > 0
        assert report.max_shm_segments <= baseline.max_shm_segments, (
            f"shm census grew past steady state: {report.max_shm_segments} "
            f"vs baseline {baseline.max_shm_segments} — segment leak")

    path = dump_report(report)

    print()
    print(plan.describe())
    print(report.describe())
    print(f"p99 ceiling {P99_TICK_CEILING_SECONDS * 1e3:.0f} ms "
          f"-> {path}")

    # --- latency SLO: core-gated so starved runners skip the clock, not
    # the correctness gates above.
    cores = usable_cores()
    if cores < REQUIRED_CORES:
        pytest.skip(
            f"only {cores} usable core(s); the p99 ceiling needs "
            f"{REQUIRED_CORES} (deterministic SLO gates passed)")
    assert report.p99_tick_seconds <= P99_TICK_CEILING_SECONDS, (
        f"p99 tick latency {report.p99_tick_seconds * 1e3:.1f} ms exceeds "
        f"the {P99_TICK_CEILING_SECONDS * 1e3:.0f} ms SLO")
