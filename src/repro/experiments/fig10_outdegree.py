"""Fig. 10 — variance of per-instance time for the large out-degree strategies.

On a graph whose out-degree follows a power law, the worker owning a hub must
build and send one message per out-edge, so its send time dominates.  The
paper compares Base, Shadow-Nodes (SN), Broadcast (BC) and SN+BC and reports
the variance of per-instance time: both strategies shrink it, BC slightly more
than SN (which pays the duplicated in-edge overhead), and SN+BC is best for
GraphSAGE because its messages are identical across out-edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.registry import Dataset, load_dataset
from repro.experiments.common import run_inference, untrained_model
from repro.experiments.reporting import format_table
from repro.inference import StrategyConfig


@dataclass
class Fig10Result:
    #: configuration name -> per-instance busy seconds
    instance_times: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def variance(self, name: str) -> float:
        values = np.fromiter(self.instance_times[name].values(), dtype=np.float64)
        return float(values.var()) if values.size else 0.0

    def variances(self) -> Dict[str, float]:
        return {name: self.variance(name) for name in self.instance_times}


STRATEGY_CONFIGS = {
    "base": StrategyConfig(partial_gather=False, broadcast=False, shadow_nodes=False),
    "SN": StrategyConfig(partial_gather=False, broadcast=False, shadow_nodes=True),
    "BC": StrategyConfig(partial_gather=False, broadcast=True, shadow_nodes=False),
    "SN+BC": StrategyConfig(partial_gather=False, broadcast=True, shadow_nodes=True),
}


def run(dataset: Optional[Dataset] = None, num_nodes: int = 20_000, avg_degree: float = 12.0,
        num_workers: int = 16, hidden_dim: int = 32, hub_threshold: Optional[int] = None,
        seed: int = 0) -> Fig10Result:
    """Measure per-instance time variance for each strategy combination."""
    dataset = dataset or load_dataset("powerlaw", num_nodes=num_nodes, avg_degree=avg_degree,
                                      skew="out", seed=seed)
    model = untrained_model(dataset, "sage", hidden_dim=hidden_dim, num_layers=2, seed=seed)
    result = Fig10Result()
    for name, base_config in STRATEGY_CONFIGS.items():
        strategies = StrategyConfig(
            partial_gather=base_config.partial_gather,
            broadcast=base_config.broadcast,
            shadow_nodes=base_config.shadow_nodes,
            hub_threshold_override=hub_threshold,
        )
        inference = run_inference(model, dataset, backend="pregel", num_workers=num_workers,
                                  strategies=strategies)
        result.instance_times[name] = inference.cost.instance_times()
    return result


def format_result(result: Fig10Result) -> str:
    headers = ["strategy", "variance of per-instance time"]
    rows = [[name, variance] for name, variance in result.variances().items()]
    return format_table(headers, rows,
                        title="Fig. 10 — time variance for large out-degree strategies")
