"""Fig. 7 — prediction consistency under neighbour sampling.

The traditional pipeline with a sampling fanout produces different predictions
at different runs; the paper counts, over 10 runs, how many distinct classes
each node was assigned and histograms that count for fanouts 10/50/100/1000
(~30% of nodes flip at fanout 10, ~0.1% still flip at 1000).  InferTurbo
performs full-graph inference without sampling, so its predictions are
identical at every run.

The stand-in graph is far denser-relative-to-fanout than MAG240M, so the
fanout values are scaled down (defaults 2/5/10/25); the reproduced shape is
"smaller fanout → more nodes with ≥2 distinct classes; InferTurbo → every node
has exactly 1".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.khop_pipeline import TraditionalConfig, TraditionalPipeline
from repro.datasets.registry import Dataset, load_dataset
from repro.experiments.common import run_inference, train_model
from repro.experiments.reporting import format_table


@dataclass
class ConsistencyResult:
    """Histogram of #distinct predicted classes per node, per fanout."""

    fanouts: List[int]
    num_runs: int
    #: fanout -> {num_distinct_classes: num_nodes}
    histograms: Dict[int, Dict[int, int]] = field(default_factory=dict)
    inferturbo_distinct_classes: Dict[int, int] = field(default_factory=dict)

    def unstable_fraction(self, fanout: int) -> float:
        """Fraction of nodes predicted into ≥2 classes across runs."""
        histogram = self.histograms[fanout]
        total = sum(histogram.values())
        unstable = sum(count for classes, count in histogram.items() if classes >= 2)
        return unstable / max(total, 1)

    def inferturbo_unstable_fraction(self) -> float:
        total = sum(self.inferturbo_distinct_classes.values())
        unstable = sum(count for classes, count in self.inferturbo_distinct_classes.items()
                       if classes >= 2)
        return unstable / max(total, 1)


def _distinct_class_histogram(predictions: np.ndarray) -> Dict[int, int]:
    """predictions: [num_runs, num_nodes] argmax classes → histogram dict."""
    histogram: Dict[int, int] = {}
    for node in range(predictions.shape[1]):
        distinct = int(np.unique(predictions[:, node]).size)
        histogram[distinct] = histogram.get(distinct, 0) + 1
    return histogram


def run(dataset: Optional[Dataset] = None, fanouts: Sequence[int] = (2, 5, 10, 25),
        num_runs: int = 10, num_targets: int = 256, num_workers: int = 4,
        num_epochs: int = 3, hidden_dim: int = 32, size: str = "tiny",
        seed: int = 0) -> ConsistencyResult:
    """Measure per-node prediction stability for sampled vs. full-graph inference."""
    dataset = dataset or load_dataset("mag240m", size=size, seed=seed)
    model, _ = train_model(dataset, "sage", hidden_dim=hidden_dim, num_epochs=num_epochs,
                           seed=seed)
    rng = np.random.default_rng(seed)
    targets = rng.choice(dataset.graph.num_nodes, size=min(num_targets, dataset.graph.num_nodes),
                         replace=False)

    result = ConsistencyResult(fanouts=list(fanouts), num_runs=num_runs)
    for fanout in fanouts:
        predictions = np.zeros((num_runs, targets.size), dtype=np.int64)
        for run_index in range(num_runs):
            config = TraditionalConfig(num_workers=num_workers, fanout=int(fanout),
                                       seed=seed + run_index)
            pipeline = TraditionalPipeline(model, config)
            outcome = pipeline.run(dataset.graph, targets=targets, compute_scores=True,
                                   seed=seed + run_index)
            predictions[run_index] = outcome.scores[targets].argmax(axis=-1)
        result.histograms[int(fanout)] = _distinct_class_histogram(predictions)

    # InferTurbo: two runs are enough to demonstrate bit-identical output, but
    # use the same run count for a like-for-like histogram.
    inferturbo_predictions = np.zeros((num_runs, targets.size), dtype=np.int64)
    for run_index in range(num_runs):
        inference = run_inference(model, dataset, backend="pregel", num_workers=num_workers)
        inferturbo_predictions[run_index] = inference.scores[targets].argmax(axis=-1)
    result.inferturbo_distinct_classes = _distinct_class_histogram(inferturbo_predictions)
    return result


def format_result(result: ConsistencyResult) -> str:
    max_classes = max([max(h) for h in result.histograms.values()]
                      + [max(result.inferturbo_distinct_classes, default=1)])
    headers = ["pipeline"] + [f"{c} classes" for c in range(1, max_classes + 1)] + ["unstable %"]
    rows = []
    for fanout in result.fanouts:
        histogram = result.histograms[fanout]
        rows.append([f"sampling fanout={fanout}"]
                    + [histogram.get(c, 0) for c in range(1, max_classes + 1)]
                    + [100.0 * result.unstable_fraction(fanout)])
    rows.append(["InferTurbo (full graph)"]
                + [result.inferturbo_distinct_classes.get(c, 0) for c in range(1, max_classes + 1)]
                + [100.0 * result.inferturbo_unstable_fraction()])
    return format_table(headers, rows,
                        title=f"Fig. 7 — #classes predicted per node over {result.num_runs} runs")
