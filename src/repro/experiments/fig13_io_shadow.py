"""Fig. 13 — output IO per instance for the shadow-nodes strategy.

Shadow-nodes splits a hub's out-edges across mirrors placed on different
workers, so the hub's sending load is spread instead of compressed.  The paper
plots output bytes against the worker index sorted by output bytes and reports
~53% IO reduction for the tail workers at the heuristic threshold; lowering
the threshold below the heuristic changes little while roughly doubling the
memory overhead (every mirror keeps a copy of the in-edges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.registry import Dataset, load_dataset
from repro.experiments.common import run_inference, untrained_model
from repro.experiments.reporting import format_table
from repro.inference import StrategyConfig
from repro.inference.strategies import hub_threshold


@dataclass
class Fig13Result:
    heuristic_threshold: int
    #: series name -> per-instance output bytes
    series: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def sorted_series(self, name: str) -> List[float]:
        """Output bytes sorted ascending (the paper's x-axis is sorted workers)."""
        return sorted(self.series[name].values())

    def tail_reduction(self, name: str, tail_fraction: float = 0.1) -> float:
        """Reduction of the largest instances' output bytes vs. base."""
        base_sorted = self.sorted_series("base")
        other_sorted = self.sorted_series(name)
        tail = max(1, int(np.ceil(len(base_sorted) * tail_fraction)))
        base_tail = sum(base_sorted[-tail:])
        other_tail = sum(other_sorted[-tail:])
        if base_tail == 0:
            return 0.0
        return 1.0 - other_tail / base_tail


def run(dataset: Optional[Dataset] = None, num_nodes: int = 20_000, avg_degree: float = 12.0,
        num_workers: int = 16, hidden_dim: int = 32,
        thresholds: Optional[Sequence[int]] = None, seed: int = 0) -> Fig13Result:
    """Sweep the shadow-nodes threshold and record per-instance output bytes."""
    dataset = dataset or load_dataset("powerlaw", num_nodes=num_nodes, avg_degree=avg_degree,
                                      skew="out", seed=seed)
    model = untrained_model(dataset, "sage", hidden_dim=hidden_dim, num_layers=2, seed=seed)
    heuristic = hub_threshold(dataset.graph.num_edges, num_workers)
    if thresholds is None:
        thresholds = sorted({max(heuristic // 8, 1), max(heuristic // 4, 1),
                             max(heuristic // 2, 1), heuristic}, reverse=True)

    result = Fig13Result(heuristic_threshold=heuristic)
    base = run_inference(model, dataset, backend="pregel", num_workers=num_workers,
                         strategies=StrategyConfig(partial_gather=False, shadow_nodes=False))
    result.series["base"] = base.metrics.per_instance("bytes_out")
    for threshold in thresholds:
        inference = run_inference(
            model, dataset, backend="pregel", num_workers=num_workers,
            strategies=StrategyConfig(partial_gather=False, shadow_nodes=True,
                                      hub_threshold_override=int(threshold)))
        result.series[f"threshold={int(threshold)}"] = inference.metrics.per_instance("bytes_out")
    return result


def format_result(result: Fig13Result) -> str:
    names = list(result.series)
    headers = ["sorted worker rank"] + [f"{name} out bytes" for name in names]
    length = len(result.sorted_series("base"))
    rows = []
    for rank in range(length):
        row = [rank]
        for name in names:
            ordered = result.sorted_series(name)
            row.append(ordered[rank] if rank < len(ordered) else 0.0)
        rows.append(row)
    table = format_table(headers, rows, title="Fig. 13 — output IO per instance (shadow-nodes)")
    extras = [f"heuristic threshold = {result.heuristic_threshold}"]
    for name in names:
        if name != "base":
            extras.append(f"{name}: tail IO reduced by {100 * result.tail_reduction(name):.1f}%")
    return table + "\n" + "\n".join(extras)
