"""Fig. 11 — input IO per instance with and without partial-gather.

Partial-gather caps the number of messages a node can receive at one per
sending worker, so an instance's input bytes stop growing with its nodes'
in-degrees and drop to a roughly constant level.  The paper reports a ~25%
reduction of total communication and up to ~73% for the 10% most loaded
(tail) workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.datasets.registry import Dataset, load_dataset
from repro.experiments.common import run_inference, tail_mean, untrained_model
from repro.experiments.reporting import format_table
from repro.inference import StrategyConfig


@dataclass
class Fig11Result:
    base_bytes_in: Dict[int, float] = field(default_factory=dict)
    partial_bytes_in: Dict[int, float] = field(default_factory=dict)
    base_records_in: Dict[int, float] = field(default_factory=dict)

    def total_reduction(self) -> float:
        base_total = sum(self.base_bytes_in.values())
        partial_total = sum(self.partial_bytes_in.values())
        if base_total == 0:
            return 0.0
        return 1.0 - partial_total / base_total

    def tail_reduction(self, tail_fraction: float = 0.1) -> float:
        """IO reduction for the most-loaded ``tail_fraction`` of instances."""
        if not self.base_bytes_in:
            return 0.0
        ordered = sorted(self.base_bytes_in, key=self.base_bytes_in.get, reverse=True)
        tail = ordered[:max(1, int(np.ceil(len(ordered) * tail_fraction)))]
        base_tail = sum(self.base_bytes_in[i] for i in tail)
        partial_tail = sum(self.partial_bytes_in.get(i, 0.0) for i in tail)
        if base_tail == 0:
            return 0.0
        return 1.0 - partial_tail / base_tail


def run(dataset: Optional[Dataset] = None, num_nodes: int = 20_000, avg_degree: float = 12.0,
        num_workers: int = 16, hidden_dim: int = 32, seed: int = 0) -> Fig11Result:
    """Measure per-instance input bytes for base vs. partial-gather."""
    dataset = dataset or load_dataset("powerlaw", num_nodes=num_nodes, avg_degree=avg_degree,
                                      skew="in", seed=seed)
    model = untrained_model(dataset, "sage", hidden_dim=hidden_dim, num_layers=2, seed=seed)

    base = run_inference(model, dataset, backend="pregel", num_workers=num_workers,
                         strategies=StrategyConfig(partial_gather=False))
    partial = run_inference(model, dataset, backend="pregel", num_workers=num_workers,
                            strategies=StrategyConfig(partial_gather=True))
    return Fig11Result(
        base_bytes_in=base.metrics.per_instance("bytes_in"),
        partial_bytes_in=partial.metrics.per_instance("bytes_in"),
        base_records_in=base.metrics.per_instance("records_in"),
    )


def format_result(result: Fig11Result) -> str:
    headers = ["instance", "original input records", "base input bytes", "partial-gather input bytes"]
    rows = [[instance,
             result.base_records_in.get(instance, 0.0),
             result.base_bytes_in.get(instance, 0.0),
             result.partial_bytes_in.get(instance, 0.0)]
            for instance in sorted(result.base_bytes_in)]
    table = format_table(headers, rows, title="Fig. 11 — input IO per instance (partial-gather)")
    return (table + f"\ntotal IO reduced by {100 * result.total_reduction():.1f}%, "
                    f"tail (10% most loaded) reduced by {100 * result.tail_reduction():.1f}%")
