"""Table II — prediction performance parity.

The paper's claim is not an absolute accuracy number but *parity*: InferTurbo
changes how inference is executed, not the GNN formula, so its metrics match
the traditional pipeline's (PyG / DGL) on every dataset and architecture.  The
harness trains each model once, scores the test split three ways — traditional
pipeline with full neighbourhoods, InferTurbo on Pregel, InferTurbo on
MapReduce — and reports all three, which should agree closely (full-graph
inference is exact, the traditional full-neighbourhood pass is exact too, so
any gap is floating-point noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.khop_pipeline import TraditionalConfig, TraditionalPipeline
from repro.datasets.registry import load_dataset
from repro.experiments.common import evaluate_scores, run_inference, train_model
from repro.experiments.reporting import format_table


@dataclass
class Table2Row:
    dataset: str
    arch: str
    traditional_metric: float
    pregel_metric: float
    mapreduce_metric: float


@dataclass
class Table2Result:
    rows: List[Table2Row] = field(default_factory=list)

    def max_gap(self) -> float:
        """Largest absolute metric gap between any pipeline pair."""
        gaps = []
        for row in self.rows:
            values = [row.traditional_metric, row.pregel_metric, row.mapreduce_metric]
            gaps.append(max(values) - min(values))
        return max(gaps) if gaps else 0.0


def run(datasets: Optional[Sequence[str]] = None, archs: Optional[Sequence[str]] = None,
        size: str = "tiny", num_epochs: int = 4, hidden_dim: int = 32,
        num_workers: int = 4, max_eval_nodes: int = 512, seed: int = 0) -> Table2Result:
    """Train and score each (dataset, architecture) pair with all pipelines."""
    datasets = list(datasets) if datasets is not None else ["ppi", "products", "mag240m"]
    archs = list(archs) if archs is not None else ["sage", "gat"]
    result = Table2Result()

    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, size=size, seed=seed)
        eval_nodes = dataset.test_nodes[:max_eval_nodes]
        for arch in archs:
            model, _ = train_model(dataset, arch, hidden_dim=hidden_dim,
                                   num_epochs=num_epochs, seed=seed)

            pipeline = TraditionalPipeline(model, TraditionalConfig(num_workers=num_workers,
                                                                    fanout=None, seed=seed))
            traditional = pipeline.run(dataset.graph, targets=eval_nodes, compute_scores=True)
            traditional_metric = evaluate_scores(dataset, traditional.scores, eval_nodes)

            pregel = run_inference(model, dataset, backend="pregel", num_workers=num_workers)
            pregel_metric = evaluate_scores(dataset, pregel.scores, eval_nodes)

            mapreduce = run_inference(model, dataset, backend="mapreduce", num_workers=num_workers)
            mapreduce_metric = evaluate_scores(dataset, mapreduce.scores, eval_nodes)

            result.rows.append(Table2Row(
                dataset=dataset_name, arch=arch,
                traditional_metric=traditional_metric,
                pregel_metric=pregel_metric,
                mapreduce_metric=mapreduce_metric,
            ))
    return result


def format_result(result: Table2Result) -> str:
    headers = ["arch", "dataset", "traditional (PyG/DGL-style)", "ours (Pregel)", "ours (MapReduce)"]
    rows = [[row.arch, row.dataset, row.traditional_metric, row.pregel_metric,
             row.mapreduce_metric] for row in result.rows]
    return format_table(headers, rows, title="Table II — prediction performance (metric parity)")
