"""Table IV — time / resource vs. number of GNN layers (hops).

The paper varies the hop count (1, 2, 3) and compares the traditional pipeline
with neighbour sampling limits of 50 and 10 000 against InferTurbo: the
traditional costs grow exponentially with hops (and nbr10000 runs out of
memory at 3 hops), while InferTurbo grows linearly because every node is
computed exactly once per layer.

The OOM column is reproduced through the cost model's memory check: the
traditional worker's memory budget is scaled down in the same proportion as
the graph (the paper's workers hold 10 GB against a 120 M-node graph; the
default budget here is chosen so that the *ratio* of subgraph-to-memory is
comparable), so the nbr-10000 / 3-hop cell trips the OOM detector just as the
paper's run did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.khop_pipeline import TraditionalConfig, TraditionalPipeline
from repro.cluster.resources import ClusterSpec, WorkerSpec
from repro.datasets.registry import Dataset, load_dataset
from repro.experiments.common import run_inference
from repro.experiments.reporting import format_table
from repro.gnn.model import build_model
from repro.inference import StrategyConfig


@dataclass
class Table4Cell:
    pipeline: str
    hops: int
    wall_clock_minutes: float
    cpu_minutes: float
    oom: bool = False


@dataclass
class Table4Result:
    cells: List[Table4Cell] = field(default_factory=list)

    def by(self, pipeline: str, hops: int) -> Table4Cell:
        for cell in self.cells:
            if cell.pipeline == pipeline and cell.hops == hops:
                return cell
        raise KeyError((pipeline, hops))

    def growth_ratio(self, pipeline: str, from_hops: int = 1, to_hops: int = 2) -> float:
        """Cost growth factor when going from ``from_hops`` to ``to_hops``."""
        return (self.by(pipeline, to_hops).wall_clock_minutes
                / max(self.by(pipeline, from_hops).wall_clock_minutes, 1e-12))


def _default_graph(seed: int) -> Dataset:
    """A sparser MAG240M-like stand-in so 3-hop neighbourhoods don't saturate.

    At laptop scale a dense graph is fully covered by a 2-hop neighbourhood,
    which would hide the exponential growth the paper measures; a lower average
    degree keeps the 1→2→3 hop growth visible.
    """
    from repro.graph.generators import labeled_community_graph
    from repro.datasets.registry import PAPER_STATS

    graph = labeled_community_graph(num_nodes=20_000, num_classes=153, feature_dim=64,
                                    avg_degree=6.0, homophily=0.75, noise=1.5, seed=seed)
    nodes = np.arange(graph.num_nodes)
    return Dataset(name="mag240m_sparse", graph=graph, train_nodes=nodes[:200],
                   val_nodes=nodes[200:400], test_nodes=nodes[400:],
                   paper_stats=PAPER_STATS["mag240m"])


def run(dataset: Optional[Dataset] = None, hops: Sequence[int] = (1, 2, 3),
        small_fanout: int = 5, large_fanout: int = 10_000,
        num_workers: int = 8, hidden_dim: int = 64,
        traditional_memory_bytes: float = 24e6, cost_sample_size: int = 96,
        seed: int = 0) -> Table4Result:
    """Sweep the hop count for nbr-small, nbr-large and InferTurbo.

    ``small_fanout`` plays the paper's nbr50 role scaled to the stand-in
    graph's density; ``large_fanout`` is effectively "no sampling limit", the
    nbr10000 column.  ``traditional_memory_bytes`` is the scaled-down worker
    memory budget used for OOM detection (see module docstring).
    """
    dataset = dataset or _default_graph(seed)
    result = Table4Result()
    cluster = ClusterSpec(num_workers=num_workers,
                          worker=WorkerSpec(cpu_cores=10, memory_bytes=traditional_memory_bytes))

    for num_hops in hops:
        model = build_model("sage", dataset.feature_dim, hidden_dim, dataset.num_classes,
                            num_layers=int(num_hops), seed=seed)

        for pipeline_name, fanout in ((f"nbr{small_fanout}", small_fanout),
                                      (f"nbr{large_fanout}", large_fanout)):
            config = TraditionalConfig(num_workers=num_workers, fanout=fanout, seed=seed,
                                       cluster=cluster)
            baseline = TraditionalPipeline(model, config)
            estimate = baseline.estimate_costs(dataset.graph, sample_size=cost_sample_size,
                                               seed=seed)
            result.cells.append(Table4Cell(
                pipeline=pipeline_name, hops=int(num_hops),
                wall_clock_minutes=estimate.cost.wall_clock_minutes,
                cpu_minutes=estimate.cost.cpu_minutes,
                oom=estimate.cost.oom,
            ))

        inference = run_inference(model, dataset, backend="mapreduce", num_workers=num_workers,
                                  strategies=StrategyConfig(partial_gather=True))
        result.cells.append(Table4Cell(
            pipeline="ours", hops=int(num_hops),
            wall_clock_minutes=inference.cost.wall_clock_minutes,
            cpu_minutes=inference.cost.cpu_minutes,
            oom=inference.cost.oom,
        ))
    return result


def format_result(result: Table4Result) -> str:
    headers = ["pipeline", "hops", "time (simulated min)", "resource (simulated cpu*min)", "OOM"]
    rows = [[cell.pipeline, cell.hops, cell.wall_clock_minutes, cell.cpu_minutes,
             "OOM" if cell.oom else ""] for cell in result.cells]
    return format_table(headers, rows, title="Table IV — time and resource cost vs. hops")
