"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Number = Union[int, float]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Union[str, Number]]],
                 title: str = "") -> str:
    """Render a simple fixed-width text table (the harness' stdout format)."""
    def render(cell: Union[str, Number]) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000 or abs(cell) < 0.01:
                return f"{cell:.3e}"
            return f"{cell:.3f}"
        return str(cell)

    text_rows = [[render(cell) for cell in row] for row in rows]
    widths = [max(len(headers[col]), *(len(row[col]) for row in text_rows)) if text_rows
              else len(headers[col]) for col in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Dict[str, Dict[int, float]], x_label: str, y_label: str,
                  title: str = "") -> str:
    """Render per-instance series (figures) as aligned text columns."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, points in series.items():
        lines.append(f"[{name}]  ({x_label} -> {y_label})")
        for x_value in sorted(points):
            lines.append(f"  {x_value:>12} -> {points[x_value]:.6g}")
    return "\n".join(lines)
