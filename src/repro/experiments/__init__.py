"""Experiment harnesses — one module per table / figure of the paper.

Every module exposes a ``run(...)`` function with laptop-sized defaults that
returns a small result dataclass, plus a ``format_result`` helper that prints
the same rows/series the paper reports.  The benchmarks under ``benchmarks/``
call these functions; EXPERIMENTS.md records paper-vs-measured values.

=====================  =====================================================
module                 paper artefact
=====================  =====================================================
table1_datasets        Table I   — dataset summary
table2_performance     Table II  — accuracy parity (SAGE/GAT × 3 datasets)
table3_efficiency      Table III — time / cpu*min vs traditional pipelines
table4_hops            Table IV  — time / resource vs number of hops
fig7_consistency       Fig. 7    — prediction consistency under sampling
fig8_scalability       Fig. 8    — time / resource vs data scale
fig9_partial_gather    Fig. 9    — per-instance latency vs in-degree skew
fig10_outdegree        Fig. 10   — variance of instance time per strategy
fig11_io_partial       Fig. 11   — input bytes per instance (partial-gather)
fig12_io_broadcast     Fig. 12   — output bytes per instance (broadcast)
fig13_io_shadow        Fig. 13   — output bytes per instance (shadow-nodes)
=====================  =====================================================
"""

from repro.experiments import (  # noqa: F401
    common,
    reporting,
    table1_datasets,
    table2_performance,
    table3_efficiency,
    table4_hops,
    fig7_consistency,
    fig8_scalability,
    fig9_partial_gather,
    fig10_outdegree,
    fig11_io_partial,
    fig12_io_broadcast,
    fig13_io_shadow,
)

__all__ = [
    "common",
    "reporting",
    "table1_datasets",
    "table2_performance",
    "table3_efficiency",
    "table4_hops",
    "fig7_consistency",
    "fig8_scalability",
    "fig9_partial_gather",
    "fig10_outdegree",
    "fig11_io_partial",
    "fig12_io_broadcast",
    "fig13_io_shadow",
]
