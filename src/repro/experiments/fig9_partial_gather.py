"""Fig. 9 — per-instance latency vs. in-degree skew, with and without partial-gather.

On a graph whose in-degree follows a power law, the worker that owns a large
in-degree hub receives (and reduces) far more messages than its peers, so its
latency sits in the long tail.  Enabling partial-gather pre-aggregates the
hub's messages on every sender, flattening both the message count and the
latency.  The figure plots, per instance, latency against the *original*
number of input records (the count the instance would receive without
partial-gather), for the base and partial-gather runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.registry import Dataset, load_dataset
from repro.experiments.common import run_inference, untrained_model
from repro.experiments.reporting import format_table
from repro.inference import StrategyConfig


@dataclass
class InstanceSeries:
    """Per-instance measurements for one configuration."""

    records_in: Dict[int, float] = field(default_factory=dict)
    bytes_in: Dict[int, float] = field(default_factory=dict)
    seconds: Dict[int, float] = field(default_factory=dict)

    def variance_of_time(self) -> float:
        values = np.fromiter(self.seconds.values(), dtype=np.float64)
        return float(values.var()) if values.size else 0.0

    def max_over_mean_time(self) -> float:
        values = np.fromiter(self.seconds.values(), dtype=np.float64)
        if values.size == 0 or values.mean() == 0:
            return 0.0
        return float(values.max() / values.mean())


@dataclass
class Fig9Result:
    base: InstanceSeries
    partial_gather: InstanceSeries

    def tail_latency_reduction(self) -> float:
        """Relative reduction of the slowest instance's latency."""
        base_max = max(self.base.seconds.values(), default=0.0)
        partial_max = max(self.partial_gather.seconds.values(), default=0.0)
        if base_max == 0:
            return 0.0
        return 1.0 - partial_max / base_max


def measure(dataset: Dataset, strategies: StrategyConfig, num_workers: int,
            hidden_dim: int, seed: int) -> InstanceSeries:
    """Run SAGE inference and collect per-instance counters and latencies."""
    model = untrained_model(dataset, "sage", hidden_dim=hidden_dim, num_layers=2, seed=seed)
    inference = run_inference(model, dataset, backend="pregel", num_workers=num_workers,
                              strategies=strategies)
    return InstanceSeries(
        records_in=inference.metrics.per_instance("records_in"),
        bytes_in=inference.metrics.per_instance("bytes_in"),
        seconds=inference.cost.instance_times(),
    )


def run(dataset: Optional[Dataset] = None, num_nodes: int = 20_000, avg_degree: float = 12.0,
        num_workers: int = 16, hidden_dim: int = 32, seed: int = 0) -> Fig9Result:
    """Compare base vs. partial-gather on an in-degree-skewed power-law graph."""
    dataset = dataset or load_dataset("powerlaw", num_nodes=num_nodes, avg_degree=avg_degree,
                                      skew="in", seed=seed)
    base = measure(dataset, StrategyConfig(partial_gather=False), num_workers, hidden_dim, seed)
    partial = measure(dataset, StrategyConfig(partial_gather=True), num_workers, hidden_dim, seed)
    return Fig9Result(base=base, partial_gather=partial)


def format_result(result: Fig9Result) -> str:
    headers = ["instance", "original input records", "base time (s)", "partial-gather time (s)"]
    rows = []
    for instance in sorted(result.base.seconds):
        rows.append([instance,
                     result.base.records_in.get(instance, 0.0),
                     result.base.seconds.get(instance, 0.0),
                     result.partial_gather.seconds.get(instance, 0.0)])
    table = format_table(headers, rows, title="Fig. 9 — per-instance latency vs. in-edge records")
    return (table
            + f"\nvariance base={result.base.variance_of_time():.3e}"
              f" partial-gather={result.partial_gather.variance_of_time():.3e}"
              f"; straggler latency reduced by {100 * result.tail_latency_reduction():.1f}%")
