"""Table I — dataset summary (paper statistics vs. reproduction statistics)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.datasets.registry import PAPER_STATS, list_datasets, load_dataset
from repro.experiments.reporting import format_table


@dataclass
class Table1Result:
    """Per-dataset statistics of the synthetic stand-ins next to the paper's."""

    rows: List[Dict[str, float]] = field(default_factory=list)


def run(size: str = "tiny", seed: int = 0) -> Table1Result:
    """Build every registered dataset and collect Table I statistics."""
    result = Table1Result()
    for name in list_datasets():
        dataset = load_dataset(name, size=size, seed=seed)
        stats = dataset.summary()
        paper = PAPER_STATS[name]
        result.rows.append({
            "dataset": name,
            "paper_nodes": paper["num_nodes"],
            "paper_edges": paper["num_edges"],
            "paper_feature_dim": paper["node_feature_dim"],
            "paper_classes": paper["num_classes"],
            "repro_nodes": stats["num_nodes"],
            "repro_edges": stats["num_edges"],
            "repro_feature_dim": stats["node_feature_dim"],
            "repro_classes": stats["num_classes"],
            "repro_max_out_degree": stats["max_out_degree"],
        })
    return result


def format_result(result: Table1Result) -> str:
    headers = ["dataset", "paper #node", "paper #edge", "paper #feat", "paper #class",
               "repro #node", "repro #edge", "repro #feat", "repro #class"]
    rows = [[row["dataset"], row["paper_nodes"], row["paper_edges"], row["paper_feature_dim"],
             row["paper_classes"], row["repro_nodes"], row["repro_edges"],
             row["repro_feature_dim"], row["repro_classes"]] for row in result.rows]
    return format_table(headers, rows, title="Table I — summary of datasets")
