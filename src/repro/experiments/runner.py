"""Command-line runner for the experiment harnesses.

Usage::

    python -m repro.experiments.runner list
    python -m repro.experiments.runner table3
    python -m repro.experiments.runner fig11 --preset full
    python -m repro.experiments.runner all --preset quick

Each experiment is run with either its ``quick`` preset (small graphs, seconds
per experiment — the configurations used by the unit tests) or its ``full``
preset (the configurations used by the benchmark suite, matching the numbers
in EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Tuple

from repro.experiments import (
    fig7_consistency,
    fig8_scalability,
    fig9_partial_gather,
    fig10_outdegree,
    fig11_io_partial,
    fig12_io_broadcast,
    fig13_io_shadow,
    table1_datasets,
    table2_performance,
    table3_efficiency,
    table4_hops,
)

#: experiment name -> (module, quick kwargs, full kwargs)
EXPERIMENTS: Dict[str, Tuple[object, dict, dict]] = {
    "table1": (table1_datasets, {"size": "tiny"}, {"size": "small"}),
    "table2": (table2_performance,
               {"datasets": ["products"], "archs": ["sage"], "size": "tiny", "num_epochs": 2},
               {"datasets": ["ppi", "products", "mag240m"], "archs": ["sage", "gat"],
                "size": "tiny", "num_epochs": 4}),
    "table3": (table3_efficiency,
               {"size": "tiny", "num_workers": 16, "archs": ["sage"], "cost_sample_size": 64},
               {"size": "small", "num_workers": 32, "archs": ["sage", "gat"]}),
    "table4": (table4_hops,
               {"hops": (1, 2), "num_workers": 4, "cost_sample_size": 48},
               {"num_workers": 8}),
    "fig7": (fig7_consistency,
             {"fanouts": (2, 8), "num_runs": 4, "num_targets": 96, "size": "tiny",
              "num_epochs": 2},
             {"fanouts": (2, 5, 10, 25), "num_runs": 10, "num_targets": 256, "size": "tiny",
              "num_epochs": 4}),
    "fig8": (fig8_scalability,
             {"scales": (1000, 4000), "backend": "pregel", "num_workers": 4},
             {"scales": (2000, 8000, 32000), "backend": "mapreduce", "num_workers": 8}),
    "fig9": (fig9_partial_gather,
             {"num_nodes": 4000, "num_workers": 8, "hidden_dim": 16},
             {"num_nodes": 20000, "num_workers": 16}),
    "fig10": (fig10_outdegree,
              {"num_nodes": 4000, "num_workers": 8, "hidden_dim": 16},
              {"num_nodes": 20000, "num_workers": 16}),
    "fig11": (fig11_io_partial,
              {"num_nodes": 4000, "num_workers": 8, "hidden_dim": 16},
              {"num_nodes": 20000, "num_workers": 16}),
    "fig12": (fig12_io_broadcast,
              {"num_nodes": 4000, "num_workers": 8, "hidden_dim": 16},
              {"num_nodes": 20000, "num_workers": 16}),
    "fig13": (fig13_io_shadow,
              {"num_nodes": 4000, "num_workers": 8, "hidden_dim": 16},
              {"num_nodes": 20000, "num_workers": 16}),
}


def run_experiment(name: str, preset: str = "quick") -> str:
    """Run one experiment by name and return its formatted report."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    if preset not in ("quick", "full"):
        raise ValueError("preset must be 'quick' or 'full'")
    module, quick_kwargs, full_kwargs = EXPERIMENTS[name]
    kwargs = quick_kwargs if preset == "quick" else full_kwargs
    result = module.run(**kwargs)
    return module.format_result(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment", help="experiment name (e.g. table3, fig11), 'all' or 'list'")
    parser.add_argument("--preset", choices=["quick", "full"], default="quick",
                        help="quick = seconds per experiment; full = benchmark configuration")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        # perf_counter, not time.time: interval timing must be monotonic
        # (NTP steps would corrupt the reported duration), and it keeps the
        # runner consistent with every other timing site in the repo.
        started = time.perf_counter()
        try:
            report = run_experiment(name, args.preset)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        print(report)
        print(f"[{name} finished in {time.perf_counter() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
