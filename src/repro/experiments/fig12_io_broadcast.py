"""Fig. 12 — output IO per instance for the broadcast strategy at several thresholds.

Hub nodes with huge out-degrees dominate their worker's output bytes.  The
broadcast strategy publishes each hub payload once per destination worker and
sends only id references per edge, so the hub-owning workers' output shrinks
(the paper reports ~42% for the 10% most loaded workers at the heuristic
threshold, with little further gain from lowering the threshold below the
heuristic value).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.registry import Dataset, load_dataset
from repro.experiments.common import run_inference, untrained_model
from repro.experiments.reporting import format_table
from repro.inference import StrategyConfig
from repro.inference.strategies import hub_threshold


@dataclass
class Fig12Result:
    heuristic_threshold: int
    #: series name ("base" or "threshold=<t>") -> per-instance output bytes
    series: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def tail_reduction(self, name: str, tail_fraction: float = 0.1) -> float:
        base = self.series["base"]
        other = self.series[name]
        ordered = sorted(base, key=base.get, reverse=True)
        tail = ordered[:max(1, int(np.ceil(len(ordered) * tail_fraction)))]
        base_tail = sum(base[i] for i in tail)
        other_tail = sum(other.get(i, 0.0) for i in tail)
        if base_tail == 0:
            return 0.0
        return 1.0 - other_tail / base_tail


def run(dataset: Optional[Dataset] = None, num_nodes: int = 20_000, avg_degree: float = 12.0,
        num_workers: int = 16, hidden_dim: int = 32,
        thresholds: Optional[Sequence[int]] = None, seed: int = 0) -> Fig12Result:
    """Sweep the broadcast hub threshold and record per-instance output bytes."""
    dataset = dataset or load_dataset("powerlaw", num_nodes=num_nodes, avg_degree=avg_degree,
                                      skew="out", seed=seed)
    model = untrained_model(dataset, "sage", hidden_dim=hidden_dim, num_layers=2, seed=seed)
    heuristic = hub_threshold(dataset.graph.num_edges, num_workers)
    if thresholds is None:
        thresholds = sorted({max(heuristic // 8, 1), max(heuristic // 4, 1),
                             max(heuristic // 2, 1), heuristic}, reverse=True)

    result = Fig12Result(heuristic_threshold=heuristic)
    base = run_inference(model, dataset, backend="pregel", num_workers=num_workers,
                         strategies=StrategyConfig(partial_gather=False, broadcast=False))
    result.series["base"] = base.metrics.per_instance("bytes_out")
    for threshold in thresholds:
        inference = run_inference(
            model, dataset, backend="pregel", num_workers=num_workers,
            strategies=StrategyConfig(partial_gather=False, broadcast=True,
                                      hub_threshold_override=int(threshold)))
        result.series[f"threshold={int(threshold)}"] = inference.metrics.per_instance("bytes_out")
    return result


def format_result(result: Fig12Result) -> str:
    names = list(result.series)
    headers = ["instance"] + [f"{name} out bytes" for name in names]
    instances = sorted(result.series["base"])
    rows = [[instance] + [result.series[name].get(instance, 0.0) for name in names]
            for instance in instances]
    table = format_table(headers, rows, title="Fig. 12 — output IO per instance (broadcast)")
    extras = [f"heuristic threshold = {result.heuristic_threshold}"]
    for name in names:
        if name != "base":
            extras.append(f"{name}: tail IO reduced by {100 * result.tail_reduction(name):.1f}%")
    return table + "\n" + "\n".join(extras)
