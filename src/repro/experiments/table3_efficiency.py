"""Table III — time and resource cost: traditional pipelines vs. InferTurbo.

The paper reports, for SAGE and GAT on MAG240M, wall-clock minutes and cpu*min
for PyG, DGL, InferTurbo-on-MapReduce and InferTurbo-on-Pregel, finding a
30–50× speed-up and 40–50× resource saving.  Here both pipelines run over the
same synthetic MAG240M stand-in and the same analytic cost model, so the
absolute numbers are meaningless but the *ratios* are the reproduced result.

The "PyG" and "DGL" columns of the paper are two implementations of the same
traditional k-hop pipeline; this reproduction has one implementation, so the
two columns are produced with the two batch sizes the OGB examples of those
frameworks use (which is also roughly why the paper's two columns differ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.khop_pipeline import TraditionalConfig, TraditionalPipeline
from repro.datasets.registry import Dataset, load_dataset
from repro.experiments.common import run_inference, untrained_model
from repro.experiments.reporting import format_table
from repro.inference import StrategyConfig


@dataclass
class Table3Row:
    arch: str
    pipeline: str
    wall_clock_minutes: float
    cpu_minutes: float


@dataclass
class Table3Result:
    rows: List[Table3Row] = field(default_factory=list)

    def by(self, arch: str, pipeline: str) -> Table3Row:
        for row in self.rows:
            if row.arch == arch and row.pipeline == pipeline:
                return row
        raise KeyError((arch, pipeline))

    def speedup(self, arch: str, ours: str = "pregel", baseline: str = "pyg_like") -> float:
        """Wall-clock speed-up of an InferTurbo backend over a baseline column."""
        return self.by(arch, baseline).wall_clock_minutes / max(
            self.by(arch, ours).wall_clock_minutes, 1e-12)

    def resource_saving(self, arch: str, ours: str = "pregel", baseline: str = "pyg_like") -> float:
        return self.by(arch, baseline).cpu_minutes / max(self.by(arch, ours).cpu_minutes, 1e-12)


def run(dataset: Optional[Dataset] = None, archs: Optional[Sequence[str]] = None,
        num_workers: int = 32, traditional_num_workers: Optional[int] = None,
        hidden_dim: int = 64, num_layers: int = 2,
        fanout: Optional[int] = None, cost_sample_size: int = 128,
        size: str = "small", seed: int = 0) -> Table3Result:
    """Price full-graph inference on all four pipeline columns.

    ``fanout=None`` gives the traditional pipeline its best case (the paper's
    PyG/DGL runs use the OGB example configurations over full neighbourhoods
    for MAG240M's 2-layer models); the redundancy of overlapping k-hop
    neighbourhoods is what drives the gap regardless.

    Following the paper's fairness note ("the total CPU cores of inference
    workers are equal to our system"), the traditional pipeline gets
    ``num_workers * 2 / 10`` of its 10-core workers by default so total cores
    match InferTurbo's 2-core instances.
    """
    dataset = dataset or load_dataset("mag240m", size=size, seed=seed)
    archs = list(archs) if archs is not None else ["sage", "gat"]
    if traditional_num_workers is None:
        traditional_num_workers = max(1, (num_workers * 2) // 10)
    result = Table3Result()

    for arch in archs:
        model = untrained_model(dataset, arch, hidden_dim=hidden_dim, num_layers=num_layers,
                                seed=seed)

        # Traditional pipeline, two "framework" flavours differing in batch size.
        for pipeline_name, batch_size in (("pyg_like", 64), ("dgl_like", 128)):
            config = TraditionalConfig(num_workers=traditional_num_workers, batch_size=batch_size,
                                       fanout=fanout, seed=seed)
            baseline = TraditionalPipeline(model, config)
            estimate = baseline.estimate_costs(dataset.graph, sample_size=cost_sample_size,
                                               seed=seed)
            result.rows.append(Table3Row(
                arch=arch, pipeline=pipeline_name,
                wall_clock_minutes=estimate.cost.wall_clock_minutes,
                cpu_minutes=estimate.cost.cpu_minutes,
            ))

        # InferTurbo on both backends (partial-gather on, hub strategies default).
        for backend in ("mapreduce", "pregel"):
            inference = run_inference(model, dataset, backend=backend, num_workers=num_workers,
                                      strategies=StrategyConfig(partial_gather=True))
            result.rows.append(Table3Row(
                arch=arch, pipeline=backend,
                wall_clock_minutes=inference.cost.wall_clock_minutes,
                cpu_minutes=inference.cost.cpu_minutes,
            ))
    return result


def format_result(result: Table3Result) -> str:
    headers = ["arch", "pipeline", "time (simulated min)", "resource (simulated cpu*min)"]
    rows = [[row.arch, row.pipeline, row.wall_clock_minutes, row.cpu_minutes]
            for row in result.rows]
    return format_table(headers, rows,
                        title="Table III — time and resource usage on different systems")
