"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.datasets.registry import Dataset, load_dataset
from repro.gnn.model import GNNModel, build_model
from repro.inference import InferenceConfig, InferenceSession, StrategyConfig
from repro.inference.session import InferenceResult
from repro.training.trainer import TrainConfig, Trainer


def train_model(dataset: Dataset, arch: str, hidden_dim: int = 64, num_layers: int = 2,
                num_epochs: int = 5, fanout: Optional[int] = 10, seed: int = 0,
                learning_rate: float = 0.01) -> Tuple[GNNModel, Trainer]:
    """Train a model on a dataset's training split with small defaults."""
    model = build_model(arch, dataset.feature_dim, hidden_dim, dataset.num_classes,
                        num_layers=num_layers, seed=seed)
    config = TrainConfig(num_epochs=num_epochs, batch_size=64, learning_rate=learning_rate,
                         fanout=fanout, multilabel=dataset.multilabel, seed=seed)
    trainer = Trainer(model, dataset.graph, config)
    trainer.fit(dataset.train_nodes)
    return model, trainer


def untrained_model(dataset: Dataset, arch: str, hidden_dim: int = 64, num_layers: int = 2,
                    seed: int = 0) -> GNNModel:
    """A freshly initialised model (cost experiments do not need training)."""
    return build_model(arch, dataset.feature_dim, hidden_dim, dataset.num_classes,
                       num_layers=num_layers, seed=seed)


def run_inference(model: GNNModel, dataset: Dataset, backend: str = "pregel",
                  num_workers: int = 8, strategies: Optional[StrategyConfig] = None,
                  collect_embeddings: bool = False) -> InferenceResult:
    """One-shot inference through any registered backend via a session.

    ``backend`` accepts every registered name (``"pregel"``, ``"mapreduce"``,
    ``"khop"``, ...), so an experiment can sweep all substrates through this
    single entry point.
    """
    config = InferenceConfig(backend=backend, num_workers=num_workers,
                             strategies=strategies or StrategyConfig(),
                             collect_embeddings=collect_embeddings)
    session = InferenceSession(model, config)
    session.prepare(dataset.graph)
    return session.infer()


#: backwards-compatible alias used by the pre-session experiment harnesses.
run_inferturbo = run_inference


def evaluate_scores(dataset: Dataset, scores: np.ndarray, nodes: np.ndarray) -> float:
    """Task-appropriate metric (accuracy or micro-F1) on the given node split."""
    from repro.tensor.losses import accuracy, micro_f1

    labels = dataset.graph.labels[nodes]
    if dataset.multilabel:
        return micro_f1(scores[nodes], labels)
    return accuracy(scores[nodes], labels)


def tail_mean(values: Dict[int, float], tail_fraction: float = 0.1) -> float:
    """Mean of the largest ``tail_fraction`` of the values (straggler tail)."""
    if not values:
        return 0.0
    ordered = np.sort(np.fromiter(values.values(), dtype=np.float64))
    tail = max(1, int(np.ceil(ordered.size * tail_fraction)))
    return float(ordered[-tail:].mean())
