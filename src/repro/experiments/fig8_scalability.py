"""Fig. 8 — resource and time cost vs. data scale (scalability).

The paper runs a 2-layer GAT (embedding 64) over Power-Law graphs spanning
three orders of magnitude (10^8 → 10^10 nodes) on the MapReduce backend and
finds that both wall-clock time and cpu*min grow nearly linearly with the data
scale.  The reproduction sweeps three graph sizes (growth factor configurable)
and fits the log–log slope, which should be ≈ 1 for linear scalability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.datasets.registry import load_dataset
from repro.experiments.common import run_inference, untrained_model
from repro.experiments.reporting import format_table
from repro.inference import StrategyConfig


@dataclass
class ScalePoint:
    num_nodes: int
    num_edges: int
    wall_clock_minutes: float
    cpu_minutes: float


@dataclass
class ScalabilityResult:
    backend: str
    points: List[ScalePoint] = field(default_factory=list)

    def loglog_slope(self, field_name: str = "cpu_minutes") -> float:
        """Slope of log(cost) vs log(num_edges); ≈1 means linear scalability."""
        if len(self.points) < 2:
            return float("nan")
        x = np.log([p.num_edges for p in self.points])
        y = np.log([max(getattr(p, field_name), 1e-12) for p in self.points])
        slope, _ = np.polyfit(x, y, 1)
        return float(slope)


def run(scales: Sequence[int] = (2_000, 8_000, 32_000), avg_degree: float = 10.0,
        backend: str = "mapreduce", num_workers: int = 8, hidden_dim: int = 64,
        heads: int = 4, seed: int = 0) -> ScalabilityResult:
    """Price a 2-layer GAT full-graph inference at increasing graph scales."""
    result = ScalabilityResult(backend=backend)
    for num_nodes in scales:
        dataset = load_dataset("powerlaw", num_nodes=int(num_nodes), avg_degree=avg_degree,
                               skew="both", seed=seed)
        model = untrained_model(dataset, "gat", hidden_dim=hidden_dim, num_layers=2, seed=seed)
        inference = run_inference(model, dataset, backend=backend, num_workers=num_workers,
                                  strategies=StrategyConfig(partial_gather=True))
        result.points.append(ScalePoint(
            num_nodes=dataset.graph.num_nodes,
            num_edges=dataset.graph.num_edges,
            wall_clock_minutes=inference.cost.wall_clock_minutes,
            cpu_minutes=inference.cost.cpu_minutes,
        ))
    return result


def format_result(result: ScalabilityResult) -> str:
    headers = ["#nodes", "#edges", "time (simulated min)", "resource (simulated cpu*min)"]
    rows = [[p.num_nodes, p.num_edges, p.wall_clock_minutes, p.cpu_minutes]
            for p in result.points]
    table = format_table(headers, rows,
                         title=f"Fig. 8 — cost vs. data scale ({result.backend} backend)")
    slope_time = result.loglog_slope("wall_clock_minutes")
    slope_cpu = result.loglog_slope("cpu_minutes")
    return table + f"\nlog-log slope: time={slope_time:.2f}, resource={slope_cpu:.2f} (1.0 = linear)"
