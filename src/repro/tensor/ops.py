"""Dense and segment operations used by message-passing GNNs.

The segment operations (`segment_sum`, `segment_mean`, `segment_max`,
`segment_softmax`) are the numerical core of the GAS abstraction: gathering a
node's in-edge messages is a *segment reduction* keyed by the destination node
index, and GAT's attention normalisation is a *segment softmax*.

All functions accept and return :class:`~repro.tensor.tensor.Tensor` objects
and are differentiable so the same code path is used during mini-batch
training and full-graph inference.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.tensor.tensor import Tensor, concatenate, stack  # noqa: F401 (re-export)


def _as_index(index) -> np.ndarray:
    if isinstance(index, Tensor):
        index = index.data
    return np.asarray(index, dtype=np.int64)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix multiply two tensors."""
    return a @ b


def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    return x.leaky_relu(negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def exp(x: Tensor) -> Tensor:
    return x.exp()


def log(x: Tensor) -> Tensor:
    return x.log()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exped = shifted.exp()
    return exped / exped.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def gather_rows(x: Tensor, index) -> Tensor:
    """Select rows of ``x`` by integer index (differentiable)."""
    return x[_as_index(index)]


# --------------------------------------------------------------------------- #
# segment reductions
# --------------------------------------------------------------------------- #
def segment_sum(values: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Sum ``values`` rows into ``num_segments`` buckets keyed by ``segment_ids``.

    This is the commutative/associative reduction the paper's *aggregate* stage
    and *partial-gather* strategy rely on.
    """
    values = values if isinstance(values, Tensor) else Tensor(values)
    ids = _as_index(segment_ids)
    out_shape = (num_segments,) + values.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, ids, values.data)

    def backward_fn(grad: np.ndarray) -> None:
        values._accumulate(grad[ids])

    return Tensor._make(out_data, (values,), backward_fn)


def segment_count(segment_ids, num_segments: int) -> np.ndarray:
    """Return the number of rows mapped into each segment."""
    ids = _as_index(segment_ids)
    counts = np.zeros(num_segments, dtype=np.int64)
    np.add.at(counts, ids, 1)
    return counts


def segment_mean(values: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Mean-reduce ``values`` rows per segment (empty segments yield zeros)."""
    ids = _as_index(segment_ids)
    counts = segment_count(ids, num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    summed = segment_sum(values, ids, num_segments)
    scale = Tensor(1.0 / counts.reshape((num_segments,) + (1,) * (summed.ndim - 1)))
    return summed * scale


def segment_max(values: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Max-reduce ``values`` rows per segment (empty segments yield zeros)."""
    values = values if isinstance(values, Tensor) else Tensor(values)
    ids = _as_index(segment_ids)
    out_shape = (num_segments,) + values.shape[1:]
    out_data = np.full(out_shape, -np.inf, dtype=np.float64)
    np.maximum.at(out_data, ids, values.data)
    empty = ~np.isin(np.arange(num_segments), ids)
    out_data[empty] = 0.0

    def backward_fn(grad: np.ndarray) -> None:
        mask = (values.data == out_data[ids]).astype(np.float64)
        values._accumulate(grad[ids] * mask)

    return Tensor._make(out_data, (values,), backward_fn)


def segment_softmax(values: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Softmax over rows that share a segment id (GAT attention normaliser)."""
    values = values if isinstance(values, Tensor) else Tensor(values)
    ids = _as_index(segment_ids)
    # Stable: subtract per-segment max (constant w.r.t. gradient shape).
    seg_max = np.full((num_segments,) + values.shape[1:], -np.inf)
    np.maximum.at(seg_max, ids, values.data)
    seg_max[~np.isfinite(seg_max)] = 0.0
    shifted = values - Tensor(seg_max[ids])
    exped = shifted.exp()
    denom = segment_sum(exped, ids, num_segments)
    denom_safe = denom + Tensor(np.where(denom.data == 0.0, 1.0, 0.0))
    return exped / denom_safe[ids]


def spmm(dst_index, src_index, values: Optional[np.ndarray], node_state: Tensor,
         num_nodes: int) -> Tensor:
    """Generalised sparse-dense matmul: ``A @ node_state``.

    ``A`` is the sparse adjacency defined by COO ``(dst_index, src_index)`` with
    optional per-edge ``values`` (defaults to 1.0).  This is the fused
    ``scatter_and_gather`` used by GraphSAGE in the paper's Fig. 3.
    """
    dst = _as_index(dst_index)
    src = _as_index(src_index)
    messages = gather_rows(node_state, src)
    if values is not None:
        weights = values.reshape(-1, *([1] * (messages.ndim - 1)))
        messages = messages * Tensor(weights)
    return segment_sum(messages, dst, num_nodes)


def dropout(x: Tensor, rate: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0.

    Training-mode calls must hand in an explicitly seeded generator: the
    compute layers promise replayable runs, so an entropy-seeded fallback
    here would make training silently non-reproducible (the ``nn.Dropout``
    module owns a seeded generator and always passes it).
    """
    if not training or rate <= 0.0:
        return x
    if rng is None:
        raise ValueError(
            "dropout in training mode requires an explicitly seeded "
            "np.random.Generator; use nn.Dropout (which owns one) or pass "
            "rng=np.random.default_rng(seed)")
    mask = (rng.random(x.shape) >= rate).astype(np.float64) / (1.0 - rate)
    return x * Tensor(mask)
