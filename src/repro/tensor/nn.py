"""Neural-network module system: parameters, modules, linear layers.

A deliberately small imitation of ``torch.nn`` — just what the GAS GNN layers
need: parameter registration, recursive parameter collection, train/eval mode,
and state-dict (de)serialisation so well-trained models can be exported to the
inference backends (the paper's "signature file" mechanism).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor
from repro.tensor import ops


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for optimisation and
    serialisation.
    """

    def __init__(self) -> None:
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # parameter / module traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for attr_name, attr_value in vars(self).items():
            full_name = f"{prefix}{attr_name}"
            if isinstance(attr_value, Parameter):
                yield full_name, attr_value
            elif isinstance(attr_value, Module):
                yield from attr_value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(attr_value, (list, tuple)):
                for index, element in enumerate(attr_value):
                    if isinstance(element, Parameter):
                        yield f"{full_name}.{index}", element
                    elif isinstance(element, Module):
                        yield from element.named_parameters(prefix=f"{full_name}.{index}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def children(self) -> Iterator["Module"]:
        for attr_value in vars(self).values():
            if isinstance(attr_value, Module):
                yield attr_value
            elif isinstance(attr_value, (list, tuple)):
                for element in attr_value:
                    if isinstance(element, Module):
                        yield element

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self.children():
            yield from child.modules()

    # ------------------------------------------------------------------ #
    # train / eval, grads
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter name → numpy array (copied)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters from :meth:`state_dict` output (strict by name)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            param = own[name]
            values = np.asarray(values, dtype=np.float64)
            if param.data.shape != values.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs {values.shape}"
                )
            param.data = values.copy()

    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialiser."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout layer (identity in eval mode)."""

    def __init__(self, rate: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.rate, self.training, self._rng)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
