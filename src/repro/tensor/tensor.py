"""A small reverse-mode autodiff tensor on top of numpy.

The design mirrors the familiar PyTorch surface (``Tensor``, ``.backward()``,
``requires_grad``) but keeps the implementation compact: every differentiable
operation records a closure that propagates the incoming gradient to its
parents.  The graph is topologically sorted at ``backward()`` time.

Only the features needed by the GNN layers in :mod:`repro.gnn` are provided;
that keeps the substrate auditable while still being a real training engine
(Table II models are trained with it).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

# Per-thread, like torch: the serving tier runs inference (always wrapped in
# no_grad by the backend adaptors) on worker threads concurrently with other
# threads; a process-wide flag would let interleaved save/restore pairs leave
# gradient tracking disabled for everyone.
_grad_state = threading.local()


def _grad_enabled() -> bool:
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking (inference mode).

    The flag is thread-local: disabling gradients on one thread never
    affects tensors built concurrently on another.
    """
    previous = _grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether gradient recording is active on this thread."""
    return _grad_enabled()


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A dense ndarray with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` unless an integer dtype
        is passed explicitly through ``dtype``.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype=np.float64,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=dtype)
        self.requires_grad: bool = bool(requires_grad) and _grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = ()
        self._backward_fn: Optional[Callable[[np.ndarray], None]] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # pickling (process-executor shipping)
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        """Pickle as a leaf: data, grad and flags travel, the graph does not.

        Backward closures capture process-local state and cannot cross a
        process boundary; shipping a model to an executor worker only needs
        the weights, and inference never builds a graph anyway (``no_grad``).
        """
        return {"data": self.data, "grad": self.grad,
                "requires_grad": self.requires_grad, "name": self.name}

    def __setstate__(self, state) -> None:
        self.data = state["data"]
        self.grad = state.get("grad")
        self.requires_grad = bool(state.get("requires_grad", False))
        self.name = state.get("name")
        self._parents = ()
        self._backward_fn = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward_fn: Optional[Callable[[np.ndarray], None]],
    ) -> "Tensor":
        parents = tuple(parents)
        requires = _grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward_fn = backward_fn
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=self.data.dtype if np.issubdtype(self.data.dtype, np.floating) else np.float64)
        if self.grad is None:
            self.grad = np.zeros_like(self.data, dtype=np.float64)
        self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient; defaults to ones (and must be provided for
            non-scalar outputs only if a non-default seed is wanted).
        """
        if grad is None:
            grad = np.ones_like(self.data, dtype=np.float64)
        else:
            grad = _as_array(grad)

        # Topological order over the subgraph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward_fn is None or node.grad is None:
                continue
            node._backward_fn(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data + other_t.data

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward_fn)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(out_data, (self,), backward_fn)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data - other_t.data

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(-grad, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward_fn)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data * other_t.data

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward_fn)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data / other_t.data

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            other_t._accumulate(
                _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape)
            )

        return Tensor._make(out_data, (self, other_t), backward_fn)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward_fn)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data @ other_t.data

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad @ other_t.data.T, self.shape))
            other_t._accumulate(_unbroadcast(self.data.T @ grad, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward_fn)

    # ------------------------------------------------------------------ #
    # shaping / indexing
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward_fn)

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return Tensor._make(out_data, (self,), backward_fn)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data
        if isinstance(index, np.ndarray) and index.dtype != bool:
            index = index.astype(np.int64)
        out_data = self.data[index]
        shape = self.shape

        def backward_fn(grad: np.ndarray) -> None:
            full = np.zeros(shape, dtype=np.float64)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward_fn)

    def concat(self, other: "Tensor", axis: int = -1) -> "Tensor":
        """Concatenate ``self`` and ``other`` along ``axis``."""
        return concatenate([self, other], axis=axis)

    # ------------------------------------------------------------------ #
    # reductions & elementwise functions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward_fn(grad: np.ndarray) -> None:
            grad_arr = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(grad_arr, shape)
            else:
                if not keepdims:
                    grad_arr = np.expand_dims(grad_arr, axis=axis)
                expanded = np.broadcast_to(grad_arr, shape)
            self._accumulate(expanded.astype(np.float64))

        return Tensor._make(out_data, (self,), backward_fn)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward_fn(grad: np.ndarray) -> None:
            grad_arr = np.asarray(grad)
            if axis is None:
                mask = (self.data == self.data.max()).astype(np.float64)
                mask /= mask.sum()
                self._accumulate(mask * grad_arr)
            else:
                expanded_max = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded_max).astype(np.float64)
                mask /= mask.sum(axis=axis, keepdims=True)
                if not keepdims:
                    grad_arr = np.expand_dims(grad_arr, axis=axis)
                self._accumulate(mask * np.broadcast_to(grad_arr, shape))

        return Tensor._make(out_data, (self,), backward_fn)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward_fn)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward_fn)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0.0))

        return Tensor._make(out_data, (self,), backward_fn)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        out_data = np.where(self.data > 0.0, self.data, negative_slope * self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(self.data > 0.0, 1.0, negative_slope))

        return Tensor._make(out_data, (self,), backward_fn)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward_fn)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward_fn)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward_fn(grad: np.ndarray) -> None:
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, end)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward_fn)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(grad: np.ndarray) -> None:
        split = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, split):
            tensor._accumulate(piece)

    return Tensor._make(out_data, tensors, backward_fn)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
