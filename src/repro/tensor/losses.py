"""Loss functions and evaluation metrics for node classification.

``softmax_cross_entropy`` covers single-label tasks (Products, MAG240M-style),
``binary_cross_entropy_with_logits`` covers multi-label tasks (PPI-style,
121 binary labels per node).
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor
from repro.tensor import ops


def softmax_cross_entropy(logits: Tensor, labels) -> Tensor:
    """Mean cross-entropy between ``logits`` [N, C] and integer ``labels`` [N]."""
    labels = np.asarray(labels.data if isinstance(labels, Tensor) else labels, dtype=np.int64)
    num_rows = logits.shape[0]
    log_probs = ops.log_softmax(logits, axis=-1)
    onehot = np.zeros(logits.shape, dtype=np.float64)
    onehot[np.arange(num_rows), labels] = 1.0
    picked = log_probs * Tensor(onehot)
    return -(picked.sum() * (1.0 / num_rows))


def binary_cross_entropy_with_logits(logits: Tensor, targets) -> Tensor:
    """Mean element-wise binary cross-entropy for multi-label targets in {0, 1}.

    Uses the sigmoid/log formulation ``-t*log(p) - (1-t)*log(1-p)`` with the
    probabilities clipped away from 0/1 for numerical stability.
    """
    targets_arr = np.asarray(targets.data if isinstance(targets, Tensor) else targets,
                             dtype=np.float64)
    targets_t = Tensor(targets_arr)
    probs = logits.sigmoid()
    eps = 1e-7
    probs_clipped = probs * (1.0 - 2 * eps) + eps
    ones = Tensor(np.ones(logits.shape))
    loss = -(targets_t * probs_clipped.log() + (ones - targets_t) * (ones - probs_clipped).log())
    return loss.mean()


def accuracy(logits, labels) -> float:
    """Single-label accuracy given logits [N, C] and integer labels [N]."""
    logits_arr = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    labels_arr = np.asarray(labels.data if isinstance(labels, Tensor) else labels)
    predictions = logits_arr.argmax(axis=-1)
    return float((predictions == labels_arr).mean())


def micro_f1(logits, targets, threshold: float = 0.0) -> float:
    """Micro-averaged F1 for multi-label prediction (logits thresholded at 0)."""
    logits_arr = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    targets_arr = np.asarray(targets.data if isinstance(targets, Tensor) else targets)
    predictions = (logits_arr > threshold).astype(np.int64)
    targets_bin = (targets_arr > 0.5).astype(np.int64)
    true_pos = int((predictions * targets_bin).sum())
    false_pos = int((predictions * (1 - targets_bin)).sum())
    false_neg = int(((1 - predictions) * targets_bin).sum())
    if true_pos == 0:
        return 0.0
    precision = true_pos / (true_pos + false_pos)
    recall = true_pos / (true_pos + false_neg)
    return float(2 * precision * recall / (precision + recall))
