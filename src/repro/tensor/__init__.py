"""Minimal numpy-backed tensor and neural-network substrate.

The paper's GNN models are written against TensorFlow; this package provides
the small slice of a deep-learning framework that GNN training and inference
actually need:

* :class:`~repro.tensor.tensor.Tensor` — a dense array with reverse-mode
  automatic differentiation.
* :mod:`~repro.tensor.ops` — dense math (matmul, elementwise, reductions) and
  the *segment* operations (``segment_sum`` / ``segment_mean`` / ``segment_max``
  and ``segment_softmax``) that message-passing GNNs are built from.
* :mod:`~repro.tensor.nn` — ``Module`` / ``Parameter`` / ``Linear`` and friends.
* :mod:`~repro.tensor.optim` — SGD and Adam.
* :mod:`~repro.tensor.losses` — cross-entropy and binary cross-entropy.
"""

from repro.tensor.tensor import Tensor, no_grad
from repro.tensor import ops
from repro.tensor import nn
from repro.tensor import optim
from repro.tensor import losses

__all__ = ["Tensor", "no_grad", "ops", "nn", "optim", "losses"]
