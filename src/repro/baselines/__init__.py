"""Traditional (PyG/DGL-style) inference pipeline used as the paper's baseline.

The baseline imitates how current graph learning systems run inference: a
distributed graph store serves (sampled) k-hop neighbourhoods, inference
workers pull one batch of target nodes at a time, materialise the
neighbourhood locally and run the full localized forward pass.  This pipeline
exhibits the three problems the paper attacks — redundant computation across
overlapping neighbourhoods, stochastic predictions when sampling is used, and
memory blow-ups for deep hops / large fanouts — and the experiments measure
all three against InferTurbo.
"""

from repro.baselines.graph_store import DistributedGraphStore
from repro.baselines.khop_pipeline import (
    TraditionalConfig,
    TraditionalPipeline,
    TraditionalResult,
)

__all__ = [
    "DistributedGraphStore",
    "TraditionalConfig",
    "TraditionalPipeline",
    "TraditionalResult",
]
