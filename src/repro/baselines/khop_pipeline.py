"""Traditional k-hop mini-batch inference pipeline (the PyG/DGL-style baseline).

For every batch of target nodes the pipeline pulls the (optionally sampled)
k-hop neighbourhood from the distributed graph store, runs the model's
localized forward pass over the whole subgraph, and keeps only the targets'
logits.  Every node inside the neighbourhood is therefore recomputed at every
layer for every batch it appears in — the redundant-computation problem — and
when a fanout is set, predictions change between runs — the consistency
problem.  Both effects are measured by the experiments against InferTurbo.

Two execution modes:

* :meth:`TraditionalPipeline.run` — actually computes logits (used for the
  accuracy-parity and consistency experiments);
* :meth:`TraditionalPipeline.estimate_costs` — samples a subset of targets,
  measures their neighbourhood sizes, extrapolates the compute / bytes /
  memory counters to the full target set, and prices them with the cost
  model.  This is how the Table III / Table IV scale experiments stay
  laptop-sized while preserving the relative shape of the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.graph_store import DistributedGraphStore
from repro.cluster.cost_model import CostModel, CostSummary, gnn_layer_compute_units
from repro.cluster.metrics import MetricsCollector, tensor_bytes
from repro.cluster.resources import ClusterSpec
from repro.gnn.gasconv import LayerMode
from repro.gnn.model import GNNModel
from repro.graph.graph import Graph
from repro.graph.khop import KHopSubgraph
from repro.graph.sampling import FullNeighborSampler, NeighborSampler, UniformNeighborSampler
from repro.tensor.tensor import Tensor, no_grad


@dataclass
class TraditionalConfig:
    """Configuration of the traditional inference pipeline."""

    num_workers: int = 8
    batch_size: int = 64
    fanout: Optional[int] = None          # neighbours sampled per hop; None = full
    num_store_workers: int = 4
    seed: int = 0
    cluster: Optional[ClusterSpec] = None

    def __post_init__(self) -> None:
        if self.cluster is None:
            self.cluster = ClusterSpec.traditional_default(self.num_workers)

    def sampler(self, rng: np.random.Generator) -> NeighborSampler:
        if self.fanout is None:
            return FullNeighborSampler()
        return UniformNeighborSampler(self.fanout)


@dataclass
class TraditionalResult:
    """Outcome of a traditional-pipeline inference run."""

    scores: Optional[np.ndarray]
    cost: Optional[CostSummary]
    metrics: MetricsCollector
    num_batches: int
    total_subgraph_nodes: int = 0
    total_subgraph_edges: int = 0

    def redundancy_factor(self, graph: Graph) -> float:
        """How many times the average node was recomputed vs. exactly once."""
        if graph.num_nodes == 0:
            return 0.0
        return self.total_subgraph_nodes / graph.num_nodes


class TraditionalPipeline:
    """Mini-batch k-hop inference over a simulated distributed deployment."""

    def __init__(self, model: GNNModel, config: Optional[TraditionalConfig] = None) -> None:
        self.model = model
        self.config = config or TraditionalConfig()

    # ------------------------------------------------------------------ #
    def _batch_costs(self, subgraph: KHopSubgraph) -> Dict[str, float]:
        """Compute / memory cost of one localized forward over a subgraph."""
        compute = 0.0
        state_width = self.model.encoder.out_features
        compute += subgraph.num_nodes * self.model.encoder.in_features * state_width
        for layer in self.model.layers:
            compute += gnn_layer_compute_units(
                num_messages=subgraph.num_edges, message_dim=layer.message_dim,
                num_nodes=subgraph.num_nodes, in_dim=layer.in_dim,
                out_dim=getattr(layer, "output_dim", layer.out_dim))
            compute += subgraph.num_edges * layer.message_dim
        if self.model.head is not None:
            compute += subgraph.num_nodes * self.model.head.in_features * self.model.head.out_features
        feature_bytes = 0.0 if subgraph.node_features is None else float(subgraph.node_features.nbytes)
        memory = (feature_bytes
                  + tensor_bytes((subgraph.num_nodes, state_width)) * (self.model.num_layers + 1)
                  + tensor_bytes((subgraph.num_edges, max(l.message_dim for l in self.model.layers))))
        return {"compute": compute, "memory": memory}

    # ------------------------------------------------------------------ #
    def run(self, graph: Graph, targets: Optional[Sequence[int]] = None,
            compute_scores: bool = True, seed: Optional[int] = None,
            check_memory: bool = False,
            metrics: Optional[MetricsCollector] = None,
            compute_cost: bool = True) -> TraditionalResult:
        """Run batched k-hop inference over ``targets`` (default: every node).

        ``metrics`` lets a caller (the ``"khop"`` inference backend) supply its
        own collector so the run's counters land in the session's report;
        such callers price the metrics themselves and pass
        ``compute_cost=False`` to skip the internal roll-up (``result.cost``
        is then None).
        """
        config = self.config
        rng = np.random.default_rng(config.seed if seed is None else seed)
        sampler = config.sampler(rng)
        if targets is None:
            targets = np.arange(graph.num_nodes, dtype=np.int64)
        else:
            targets = np.asarray(list(targets), dtype=np.int64)

        if metrics is None:
            metrics = MetricsCollector()
        store = DistributedGraphStore(graph, config.num_store_workers, metrics)
        scores = np.zeros((graph.num_nodes, self.model.output_dim)) if compute_scores else None

        self.model.eval()
        total_nodes = 0
        total_edges = 0
        num_batches = 0
        for start in range(0, targets.size, config.batch_size):
            seeds = targets[start:start + config.batch_size]
            worker_id = num_batches % config.num_workers
            subgraph = store.query_khop(seeds, self.model.num_layers, sampler=sampler, rng=rng,
                                        requester_id=worker_id, phase="graph_store")
            costs = self._batch_costs(subgraph)
            metrics.record(
                "inference", worker_id,
                compute_units=costs["compute"],
                bytes_in=store.subgraph_bytes(subgraph),
                records_in=subgraph.num_nodes,
                peak_memory_bytes=costs["memory"],
            )
            total_nodes += subgraph.num_nodes
            total_edges += subgraph.num_edges
            num_batches += 1

            if compute_scores:
                with no_grad():
                    logits = self.model.forward(
                        Tensor(subgraph.node_features), subgraph.src, subgraph.dst,
                        edge_features=None if subgraph.edge_features is None
                        else Tensor(subgraph.edge_features),
                        num_nodes=subgraph.num_nodes, mode=LayerMode.PREDICT)
                scores[seeds] = logits.data[subgraph.target_positions]

        cost = (CostModel(config.cluster).summarize(metrics, check_memory=check_memory)
                if compute_cost else None)
        return TraditionalResult(
            scores=scores, cost=cost, metrics=metrics, num_batches=num_batches,
            total_subgraph_nodes=total_nodes, total_subgraph_edges=total_edges,
        )

    # ------------------------------------------------------------------ #
    def estimate_costs(self, graph: Graph, targets: Optional[Sequence[int]] = None,
                       sample_size: int = 64, seed: Optional[int] = None) -> TraditionalResult:
        """Extrapolated cost of inferring ``targets`` without running them all.

        A random sample of target batches is materialised to measure average
        per-batch subgraph sizes; those averages are extrapolated to the full
        batch count and charged round-robin to the inference workers.  No
        logits are produced.
        """
        config = self.config
        rng = np.random.default_rng(config.seed if seed is None else seed)
        sampler = config.sampler(rng)
        if targets is None:
            targets = np.arange(graph.num_nodes, dtype=np.int64)
        else:
            targets = np.asarray(list(targets), dtype=np.int64)

        num_batches = int(np.ceil(targets.size / config.batch_size))
        sample_batches = max(1, min(int(np.ceil(sample_size / config.batch_size)), num_batches))
        sampled_targets = rng.choice(targets, size=min(sample_batches * config.batch_size,
                                                       targets.size), replace=False)

        probe_metrics = MetricsCollector()
        probe_store = DistributedGraphStore(graph, config.num_store_workers, probe_metrics)
        compute_total = 0.0
        bytes_total = 0.0
        memory_peak = 0.0
        nodes_total = 0
        edges_total = 0
        for start in range(0, sampled_targets.size, config.batch_size):
            seeds = sampled_targets[start:start + config.batch_size]
            subgraph = probe_store.query_khop(seeds, self.model.num_layers, sampler=sampler, rng=rng)
            costs = self._batch_costs(subgraph)
            compute_total += costs["compute"]
            memory_peak = max(memory_peak, costs["memory"])
            bytes_total += probe_store.subgraph_bytes(subgraph)
            nodes_total += subgraph.num_nodes
            edges_total += subgraph.num_edges

        scale = num_batches / sample_batches
        per_batch_compute = compute_total / sample_batches
        per_batch_bytes = bytes_total / sample_batches

        metrics = MetricsCollector()
        for batch_index in range(num_batches):
            worker_id = batch_index % config.num_workers
            metrics.record("inference", worker_id,
                           compute_units=per_batch_compute,
                           bytes_in=per_batch_bytes,
                           peak_memory_bytes=memory_peak)
        per_store = per_batch_bytes * num_batches / config.num_store_workers
        for store_worker in range(config.num_store_workers):
            metrics.record("graph_store", store_worker, bytes_out=per_store)

        cost = CostModel(config.cluster).summarize(metrics)
        return TraditionalResult(
            scores=None, cost=cost, metrics=metrics, num_batches=num_batches,
            total_subgraph_nodes=int(nodes_total * scale),
            total_subgraph_edges=int(edges_total * scale),
        )
