"""Simulated distributed in-memory graph store.

In the traditional pipeline (the paper's Table III setting: "a distributed
graph store (20 workers) to maintain the graph data and 200 workers for
inference tasks"), every k-hop neighbourhood query crosses the network from
the store to the inference worker.  This class serves those queries from an
in-process :class:`~repro.graph.graph.Graph` while accounting for the bytes a
real deployment would move: node features, edge indices and edge features of
the returned subgraph.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cluster.metrics import ID_BYTES, MetricsCollector
from repro.graph.graph import Graph
from repro.graph.khop import KHopSubgraph, khop_neighborhood
from repro.graph.sampling import NeighborSampler


class DistributedGraphStore:
    """Serves k-hop neighbourhood queries and accounts their transfer cost."""

    def __init__(self, graph: Graph, num_store_workers: int = 4,
                 metrics: Optional[MetricsCollector] = None) -> None:
        if num_store_workers <= 0:
            raise ValueError("num_store_workers must be positive")
        self.graph = graph
        self.num_store_workers = int(num_store_workers)
        self.metrics = metrics or MetricsCollector()
        self._query_count = 0

    # ------------------------------------------------------------------ #
    @property
    def num_queries(self) -> int:
        return self._query_count

    @staticmethod
    def subgraph_bytes(subgraph: KHopSubgraph) -> float:
        """Wire size of one materialised k-hop neighbourhood."""
        total = 2.0 * subgraph.num_edges * ID_BYTES          # src + dst ids
        total += float(subgraph.num_nodes) * ID_BYTES        # node id remap
        if subgraph.node_features is not None:
            total += float(subgraph.node_features.nbytes)
        if subgraph.edge_features is not None:
            total += float(subgraph.edge_features.nbytes)
        return total

    def query_khop(self, targets: Sequence[int], num_hops: int,
                   sampler: Optional[NeighborSampler] = None,
                   rng: Optional[np.random.Generator] = None,
                   requester_id: int = 0, phase: str = "graph_store") -> KHopSubgraph:
        """Materialise the (sampled) k-hop neighbourhood of ``targets``.

        The transferred bytes are charged to the store workers (spread evenly,
        as a hash-partitioned store would) as ``bytes_out`` and to the
        requesting inference worker as ``bytes_in`` under its own phase.
        """
        subgraph = khop_neighborhood(self.graph, targets, num_hops, sampler=sampler, rng=rng)
        transferred = self.subgraph_bytes(subgraph)
        per_store_worker = transferred / self.num_store_workers
        for store_worker in range(self.num_store_workers):
            self.metrics.record(phase, store_worker, bytes_out=per_store_worker,
                                records_out=subgraph.num_nodes)
        self._query_count += 1
        return subgraph
