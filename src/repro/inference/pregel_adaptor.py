"""InferTurbo adaptor for the Pregel-like graph processing backend.

One superstep per GNN layer plus an initialisation superstep:

* superstep 0 — encode raw features into the layer-0 input state and scatter
  the first messages along out-edges;
* superstep s (1 ≤ s < L) — gather the messages produced in superstep s-1, run
  layer s-1's ``apply_node``, then scatter layer s's messages;
* superstep L — final gather/apply_node and the prediction head; no scatter.

Node state, out-edges and features stay in partition memory across supersteps
(the defining property of this backend); messages travel as packed
:class:`~repro.pregel.vertex.MessageBlock`s so every stage stays vectorised.
The hub-node strategies plug in here: partial-gather through the per-superstep
combiner, broadcast through :class:`~repro.inference.strategies.BroadcastMessageBlock`,
shadow-nodes through destination expansion against the replica map.

Incremental inference
---------------------

A session that applied a :class:`~repro.inference.delta.GraphDelta` in place
can rerun just the delta's reach: full runs cache every superstep's state
per partition (``h_history``); an incremental run walks a per-superstep dirty
frontier (:func:`~repro.inference.delta.expand_frontier`), sends only messages
bound for next-frontier destinations, recomputes only frontier rows, and
splices them into the cached states.  Bit-identity with a fresh full run is
preserved by two rules:

* per-destination message *sets and order* are unchanged — filtering keeps
  all of a frontier destination's rows and drops whole destinations, so the
  order-sensitive segment reductions accumulate identical bits;
* matmul stages (``encode`` / ``apply_edge`` with projections /
  ``apply_node`` / ``predict``) always run at full matrix shape before rows
  are sliced — BLAS kernels are not bit-stable across differing shapes, so
  subset-shaped matmuls would drift in the last ulp.  Layers whose
  ``apply_edge`` is the identity skip the full-shape pass entirely (a row
  gather is exact at any shape), which is the common GCN/SAGE serving case.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.cost_model import gnn_layer_compute_units
from repro.cluster.layout import ClusterLayout
from repro.cluster.metrics import MetricsCollector, tensor_bytes
from repro.gnn.model import GNNModel
from repro.graph.graph import Graph
from repro.inference.config import InferenceConfig
from repro.inference.delta import expand_frontier
from repro.inference.shadow import ShadowNodePlan
from repro.inference.strategies import (
    BroadcastMessageBlock,
    StrategyPlan,
    split_hub_edges,
)
from repro.pregel.combiners import MessageCombiner
from repro.pregel.engine import PregelEngine, PregelPartition
from repro.pregel.vertex import BlockVertexProgram, MessageBlock, PartitionContext
from repro.tensor.tensor import Tensor, no_grad

_EMPTY_ROWS = np.empty(0, dtype=np.int64)


class GNNInferenceProgram(BlockVertexProgram):
    """Block vertex program that runs a GAS GNN model layer by layer.

    ``cache_states=True`` makes a full run record every superstep's state (and
    the final logits) in partition ``block_state`` — the warm cache
    incremental runs splice into.  ``incremental=True`` runs against that
    cache: ``context.frontier_rows`` names the local rows to recompute and
    ``edge_rows[(partition_id, superstep)]`` the out-edge rows whose messages
    must still be sent (everything bound for a next-frontier destination).
    """

    def __init__(self, model: GNNModel, plan: StrategyPlan,
                 shadow_plan: Optional[ShadowNodePlan] = None,
                 cache_states: bool = False, incremental: bool = False,
                 edge_rows: Optional[Dict[Tuple[int, int], np.ndarray]] = None,
                 collect_embeddings: bool = False) -> None:
        self.model = model
        self.plan = plan
        self.shadow_plan = shadow_plan
        self.num_layers = model.num_layers
        self.incremental = bool(incremental)
        self.cache_states = bool(cache_states) or self.incremental
        self.edge_rows = edge_rows if edge_rows is not None else {}
        self.collect_embeddings = bool(collect_embeddings)

    # ------------------------------------------------------------------ #
    @property
    def block_state_ship_keys(self) -> Tuple[str, ...]:
        """Process-executor shipping manifest: what this run reads.

        Incremental runs splice into the cached superstep states of the last
        full run; full runs reset every per-run entry in
        :meth:`setup_partition`, so nothing needs to travel to the workers.
        """
        return ("h_history", "output") if self.incremental else ()

    @property
    def block_state_return_keys(self) -> Tuple[str, ...]:
        """What this run leaves behind for the parent to keep.

        ``output`` feeds score collection; ``h`` only matters when the caller
        collects embeddings; ``h_history`` is the warm cache a later
        incremental run splices into (kept only when this run maintains it).
        """
        keys = ["output"]
        if self.collect_embeddings:
            keys.append("h")
        if self.cache_states:
            keys.extend(("h", "h_history"))
        return tuple(dict.fromkeys(keys))

    # ------------------------------------------------------------------ #
    def max_supersteps(self) -> int:
        return self.num_layers + 1

    def combiner_for_superstep(self, superstep: int) -> Optional[MessageCombiner]:
        """Partial-gather: the consuming layer's combiner (or None)."""
        if superstep >= self.num_layers:
            return None
        return self.plan.layer(superstep).combiner

    def setup_partition(self, partition: PregelPartition) -> None:
        """Reset per-run state; reuse the layout-derived out-edge index.

        ``out_src_local`` depends only on the partition layout, so an engine
        prepared once (see :func:`build_pregel_engine`) keeps it across runs;
        a fresh engine computes it here on first use.  An incremental run
        keeps the cached ``h_history``/``output`` (that cache *is* its input);
        a full run resets them.
        """
        if "out_src_local" not in partition.block_state:
            partition.block_state["out_src_local"] = partition.local_indices(partition.out_src)
        partition.block_state["h"] = None
        if self.incremental:
            if not has_cached_run(partition, self.num_layers):
                raise RuntimeError(
                    "incremental inference requires cached superstep states "
                    "from a previous full run on this plan")
            return
        partition.block_state["output"] = None
        if self.cache_states:
            partition.block_state["h_history"] = [None] * (self.num_layers + 1)
        else:
            partition.block_state.pop("h_history", None)

    # ------------------------------------------------------------------ #
    def _assemble_messages(self, partition: PregelPartition,
                           incoming: List[MessageBlock],
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenate incoming blocks into (local_dst, payload, counts)."""
        if not incoming:
            width = 0
            return (np.empty(0, dtype=np.int64), np.zeros((0, width)), np.empty(0, dtype=np.int64))
        dst = np.concatenate([block.dst_ids for block in incoming])
        payload = np.concatenate([block.dense_payload() for block in incoming], axis=0)
        counts = np.concatenate([block.counts for block in incoming])
        local_dst = partition.local_indices(dst)
        return local_dst, payload, counts

    def _scatter_messages(self, context: PartitionContext, partition: PregelPartition,
                          state: np.ndarray, superstep: int) -> None:
        """Build and send this superstep's out-edge messages.

        An incremental run restricts the scatter to the precomputed out-edge
        rows bound for next-frontier destinations.  The restriction is
        all-or-nothing per destination, so every surviving destination still
        receives its complete in-message set in the full run's order.
        """
        if partition.num_out_edges == 0:
            return
        next_layer = self.model.layers[superstep]
        layer_strategy = self.plan.layer(superstep)
        src_local = partition.block_state["out_src_local"]
        edge_features = partition.out_edge_features
        edge_tensor = None if edge_features is None else Tensor(edge_features)

        if self.incremental:
            edge_rows = self.edge_rows.get((partition.partition_id, superstep),
                                           _EMPTY_ROWS)
            if edge_rows.size == 0:
                return
            if next_layer.apply_edge_is_identity(edge_tensor is not None):
                # Identity messages: a row gather is exact at any subset size.
                messages = state[src_local[edge_rows]]
            else:
                # Projecting layers run apply_edge at full edge-table shape
                # and slice after — subset-shaped matmuls are not bit-stable.
                messages = next_layer.apply_edge(
                    Tensor(state[src_local]), edge_tensor).data[edge_rows]
            dst_ids = partition.out_dst[edge_rows]
            source_ids = partition.out_src[edge_rows]
        else:
            messages = next_layer.apply_edge(Tensor(state[src_local]), edge_tensor).data
            dst_ids = partition.out_dst
            source_ids = partition.out_src
        counts = np.ones(dst_ids.shape[0], dtype=np.int64)

        # apply_edge cost: one pass over every outgoing message element (the
        # per-edge projections some layers perform are folded into this rate).
        context.add_compute(messages.shape[0] * messages.shape[1])

        if layer_strategy.broadcast and self.plan.out_degree_hubs.size:
            hub_rows, plain_rows = split_hub_edges(source_ids, self.plan.out_degree_hubs)
        else:
            hub_rows = np.empty(0, dtype=np.int64)
            plain_rows = np.arange(dst_ids.shape[0])

        if plain_rows.size:
            plain_dst, plain_payload, plain_counts = self._expand(
                dst_ids[plain_rows], messages[plain_rows], counts[plain_rows])
            context.send_block(MessageBlock(dst_ids=plain_dst, payload=plain_payload,
                                            counts=plain_counts))

        if hub_rows.size:
            # Each hub source appears on many rows with the same payload: keep
            # one copy per hub and reference it per edge.
            hub_sources = source_ids[hub_rows]
            unique_sources, first_rows, refs = np.unique(hub_sources, return_index=True,
                                                         return_inverse=True)
            unique_payloads = messages[hub_rows][first_rows]
            hub_dst, hub_refs, hub_counts = self._expand(
                dst_ids[hub_rows], refs.reshape(-1, 1).astype(np.float64), counts[hub_rows])
            context.send_block(BroadcastMessageBlock(
                dst_ids=hub_dst,
                payload_refs=hub_refs.reshape(-1).astype(np.int64),
                unique_payloads=unique_payloads,
                counts=hub_counts,
            ))

    def _expand(self, dst_ids: np.ndarray, payload: np.ndarray, counts: np.ndarray,
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply shadow-node destination expansion when the strategy is active."""
        if self.shadow_plan is None or not self.shadow_plan.has_mirrors:
            return dst_ids, payload, counts
        return self.shadow_plan.expand_destinations(dst_ids, payload, counts)

    # ------------------------------------------------------------------ #
    def _compute_state_full(self, context: PartitionContext,
                            partition: PregelPartition,
                            incoming: List[MessageBlock], superstep: int) -> np.ndarray:
        """One full superstep: encode (step 0) or gather + apply_node."""
        state = partition.block_state["h"]
        if superstep == 0:
            if partition.num_nodes:
                features = Tensor(partition.node_features)
                state = self.model.encode(features).data
            else:
                state = np.zeros((0, self.model.encoder.out_features))
            context.add_compute(
                partition.num_nodes * self.model.encoder.in_features
                * self.model.encoder.out_features)
            return state
        layer = self.model.layers[superstep - 1]
        local_dst, payload, counts = self._assemble_messages(partition, incoming)
        if payload.shape[1] == 0:
            payload = np.zeros((0, layer.message_dim))
        aggr = layer.gather(Tensor(payload), local_dst, partition.num_nodes, counts)
        new_state = layer.apply_node(Tensor(state), aggr)
        context.add_compute(gnn_layer_compute_units(
            num_messages=payload.shape[0], message_dim=layer.message_dim,
            num_nodes=partition.num_nodes, in_dim=layer.in_dim,
            out_dim=getattr(layer, "output_dim", layer.out_dim)))
        return new_state.data

    def _compute_state_incremental(self, context: PartitionContext,
                                   partition: PregelPartition,
                                   incoming: List[MessageBlock],
                                   superstep: int) -> np.ndarray:
        """Recompute only the frontier rows; splice them into the cached state.

        All matmul stages run at full matrix shape (their recomputed rows are
        then bit-identical to a fresh full run's), while the incoming message
        set — and therefore every segment reduction — is already restricted
        to frontier destinations by the senders.  Rows outside the frontier
        keep the cached bits, which a fresh run would reproduce exactly.
        """
        rows = context.frontier_rows if context.frontier_rows is not None else _EMPTY_ROWS
        history = partition.block_state["h_history"]
        if rows.size == 0 or not partition.num_nodes:
            return history[superstep]
        if superstep == 0:
            full = self.model.encode(Tensor(partition.node_features)).data
            context.add_compute(rows.size * self.model.encoder.in_features
                                * self.model.encoder.out_features)
        else:
            layer = self.model.layers[superstep - 1]
            local_dst, payload, counts = self._assemble_messages(partition, incoming)
            if payload.shape[1] == 0:
                payload = np.zeros((0, layer.message_dim))
            aggr = layer.gather(Tensor(payload), local_dst, partition.num_nodes, counts)
            full = layer.apply_node(Tensor(partition.block_state["h"]), aggr).data
            # Modeled cost: what a production kernel recomputing just the
            # frontier would pay (the full-shape pass is a bit-exactness
            # artefact of simulating on BLAS).
            context.add_compute(gnn_layer_compute_units(
                num_messages=payload.shape[0], message_dim=layer.message_dim,
                num_nodes=rows.size, in_dim=layer.in_dim,
                out_dim=getattr(layer, "output_dim", layer.out_dim)))
        state = history[superstep].copy()
        state[rows] = full[rows]
        return state

    def compute_partition(self, context: PartitionContext,
                          incoming: List[MessageBlock]) -> None:
        partition: PregelPartition = context.partition
        superstep = context.superstep

        with no_grad():
            if self.incremental:
                state = self._compute_state_incremental(context, partition,
                                                        incoming, superstep)
            else:
                state = self._compute_state_full(context, partition, incoming, superstep)

            partition.block_state["h"] = state
            if self.cache_states:
                partition.block_state["h_history"][superstep] = state

            if superstep < self.num_layers:
                self._scatter_messages(context, partition, state, superstep)
            elif self.incremental:
                rows = (context.frontier_rows
                        if context.frontier_rows is not None else _EMPTY_ROWS)
                if rows.size and partition.num_nodes:
                    logits = self.model.predict(Tensor(state)).data
                    output = partition.block_state["output"].copy()
                    output[rows] = logits[rows]
                    partition.block_state["output"] = output
                    context.add_compute(rows.size * state.shape[1]
                                        * max(output.shape[1], 1))
            else:
                logits = self.model.predict(Tensor(state)).data if partition.num_nodes else \
                    np.zeros((0, self.model.output_dim))
                partition.block_state["output"] = logits
                context.add_compute(partition.num_nodes * state.shape[1] * max(logits.shape[1], 1)
                                    if partition.num_nodes else 0)

        # Peak memory: resident state + features + incoming messages (+ the
        # cached superstep states an incremental-capable session keeps warm).
        resident = tensor_bytes(state.shape)
        if partition.node_features is not None:
            resident += float(partition.node_features.nbytes)
        resident += sum(block.nbytes() for block in incoming)
        resident += float(partition.out_src.nbytes + partition.out_dst.nbytes)
        if self.cache_states:
            # Earlier supersteps' cached states; the current one is already
            # counted as the resident state above.
            resident += sum(float(h.nbytes)
                            for h in partition.block_state["h_history"][:superstep]
                            if h is not None)
        context.observe_memory(resident)


def build_pregel_engine(working_graph: Graph, config: InferenceConfig,
                        metrics: Optional[MetricsCollector] = None,
                        layout: Optional[ClusterLayout] = None) -> PregelEngine:
    """Partition the (possibly shadow-expanded) graph into a reusable engine.

    Partitioning is the expensive part of Pregel preparation; a session builds
    the engine once at ``prepare()`` time and swaps in a fresh metrics
    collector per execution.  A :class:`~repro.cluster.layout.ClusterLayout`
    already computed for this graph (the execution plan caches one) is reused
    instead of rebuilt, and the layout-derived local index of every
    partition's out-edge sources is precomputed here too, so executions reuse
    both instead of recomputing them per run.
    """
    engine = PregelEngine(working_graph, num_workers=config.num_workers,
                          metrics=metrics, layout=layout,
                          executor=config.executor)
    for partition in engine.partitions:
        partition.block_state["out_src_local"] = partition.local_indices(partition.out_src)
    return engine


def has_cached_run(partition: PregelPartition, num_layers: int) -> bool:
    """Whether a partition carries a complete state cache from a full run."""
    history = partition.block_state.get("h_history")
    return (history is not None
            and len(history) == num_layers + 1
            and all(h is not None for h in history)
            and partition.block_state.get("output") is not None)


def _collect_outputs(partitions: List[PregelPartition], model: GNNModel,
                     config: InferenceConfig,
                     original_num_nodes: int) -> Dict[str, np.ndarray]:
    """Assemble per-partition outputs into dense score/embedding matrices."""
    scores = np.zeros((original_num_nodes, model.output_dim))
    embeddings = None
    if config.collect_embeddings:
        last_width = getattr(model.layers[-1], "output_dim", model.layers[-1].out_dim)
        embeddings = np.zeros((original_num_nodes, last_width))
    for partition in partitions:
        output = partition.block_state.get("output")
        if output is None:
            continue
        keep = partition.node_ids < original_num_nodes
        scores[partition.node_ids[keep]] = output[keep]
        if embeddings is not None:
            embeddings[partition.node_ids[keep]] = partition.block_state["h"][keep]
    payload: Dict[str, np.ndarray] = {"scores": scores}
    if embeddings is not None:
        payload["embeddings"] = embeddings
    return payload


def run_pregel_inference(model: GNNModel, graph: Graph, config: InferenceConfig,
                         plan: StrategyPlan, shadow_plan: Optional[ShadowNodePlan],
                         metrics: MetricsCollector,
                         engine: Optional[PregelEngine] = None,
                         cache_states: bool = False) -> Dict[str, np.ndarray]:
    """Execute full-graph inference on the Pregel backend.

    Returns a dict with ``scores`` [N, C] (original nodes only) and, when
    requested, ``embeddings`` (the last layer's state before the head).
    ``engine`` may carry a pre-partitioned engine from a previous ``plan``
    step; the program's ``setup_partition`` resets all per-run block state, so
    reuse is safe and repeated runs stay bit-identical.  ``cache_states``
    keeps every superstep's state in partition memory, priming the cache
    incremental runs splice into.
    """
    working_graph = shadow_plan.graph if shadow_plan is not None else graph
    original_num_nodes = shadow_plan.original_num_nodes if shadow_plan is not None else graph.num_nodes

    program = GNNInferenceProgram(model, plan, shadow_plan, cache_states=cache_states,
                                  collect_embeddings=config.collect_embeddings)
    if engine is None:
        engine = build_pregel_engine(working_graph, config, metrics)
    else:
        engine.metrics = metrics
    model.eval()
    result = engine.run(program)
    return _collect_outputs(result.partitions, model, config, original_num_nodes)


def run_pregel_inference_incremental(
        model: GNNModel, graph: Graph, config: InferenceConfig,
        plan: StrategyPlan, shadow_plan: Optional[ShadowNodePlan],
        metrics: MetricsCollector, engine: PregelEngine,
        feature_dirty: np.ndarray,
        topo_dirty: np.ndarray) -> Optional[Dict[str, np.ndarray]]:
    """Rerun only the dirty k-hop region against a warm engine.

    ``feature_dirty``/``topo_dirty`` are working-graph node ids (replica-
    closed) from the session's accumulated deltas.  Returns None when the
    engine has no complete cached run to splice into (the caller then falls
    back to a full execution), otherwise the same output dict as
    :func:`run_pregel_inference` — bit-identical to a fresh full run.
    """
    if not all(has_cached_run(p, model.num_layers) for p in engine.partitions):
        return None
    working_graph = shadow_plan.graph if shadow_plan is not None else graph
    original_num_nodes = (shadow_plan.original_num_nodes if shadow_plan is not None
                          else graph.num_nodes)
    num_supersteps = model.num_layers + 1
    frontiers = expand_frontier(working_graph, feature_dirty, topo_dirty,
                                num_supersteps, shadow_plan)

    # Per-superstep, per-partition local frontier rows (one grouped pass each).
    layout = engine.layout
    schedule: List[Dict[int, np.ndarray]] = []
    for frontier in frontiers:
        per_partition: Dict[int, np.ndarray] = {}
        if frontier.size:
            local = layout.local_indices(frontier)
            per_partition = {pid: local[rows]
                             for pid, rows in layout.group_by_owner(frontier)
                             if rows.size}
        schedule.append(per_partition)

    # Out-edge rows each partition must still scatter at superstep s: every
    # edge bound for a superstep-(s+1) frontier destination.  Frontiers are
    # replica-closed, so testing the pre-expansion destination id suffices;
    # they are also sorted unique, so membership is one searchsorted pass.
    edge_rows: Dict[Tuple[int, int], np.ndarray] = {}
    for partition in engine.partitions:
        for superstep in range(model.num_layers):
            nxt = frontiers[superstep + 1]
            if nxt.size and partition.out_dst.size:
                pos = np.minimum(np.searchsorted(nxt, partition.out_dst),
                                 nxt.size - 1)
                rows = np.nonzero(nxt[pos] == partition.out_dst)[0]
            else:
                rows = _EMPTY_ROWS
            edge_rows[(partition.partition_id, superstep)] = rows

    program = GNNInferenceProgram(model, plan, shadow_plan, incremental=True,
                                  edge_rows=edge_rows,
                                  collect_embeddings=config.collect_embeddings)
    engine.metrics = metrics
    model.eval()
    result = engine.run(program, frontier=schedule)
    return _collect_outputs(result.partitions, model, config, original_num_nodes)
