"""InferTurbo adaptor for the Pregel-like graph processing backend.

One superstep per GNN layer plus an initialisation superstep:

* superstep 0 — encode raw features into the layer-0 input state and scatter
  the first messages along out-edges;
* superstep s (1 ≤ s < L) — gather the messages produced in superstep s-1, run
  layer s-1's ``apply_node``, then scatter layer s's messages;
* superstep L — final gather/apply_node and the prediction head; no scatter.

Node state, out-edges and features stay in partition memory across supersteps
(the defining property of this backend); messages travel as packed
:class:`~repro.pregel.vertex.MessageBlock`s so every stage stays vectorised.
The hub-node strategies plug in here: partial-gather through the per-superstep
combiner, broadcast through :class:`~repro.inference.strategies.BroadcastMessageBlock`,
shadow-nodes through destination expansion against the replica map.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cluster.cost_model import gnn_layer_compute_units
from repro.cluster.layout import ClusterLayout
from repro.cluster.metrics import MetricsCollector, tensor_bytes
from repro.gnn.model import GNNModel
from repro.graph.graph import Graph
from repro.inference.config import InferenceConfig
from repro.inference.shadow import ShadowNodePlan
from repro.inference.strategies import (
    BroadcastMessageBlock,
    StrategyPlan,
    split_hub_edges,
)
from repro.pregel.combiners import MessageCombiner
from repro.pregel.engine import PregelEngine, PregelPartition
from repro.pregel.vertex import BlockVertexProgram, MessageBlock, PartitionContext
from repro.tensor.tensor import Tensor, no_grad


class GNNInferenceProgram(BlockVertexProgram):
    """Block vertex program that runs a GAS GNN model layer by layer."""

    def __init__(self, model: GNNModel, plan: StrategyPlan,
                 shadow_plan: Optional[ShadowNodePlan] = None) -> None:
        self.model = model
        self.plan = plan
        self.shadow_plan = shadow_plan
        self.num_layers = model.num_layers

    # ------------------------------------------------------------------ #
    def max_supersteps(self) -> int:
        return self.num_layers + 1

    def combiner_for_superstep(self, superstep: int) -> Optional[MessageCombiner]:
        """Partial-gather: the consuming layer's combiner (or None)."""
        if superstep >= self.num_layers:
            return None
        return self.plan.layer(superstep).combiner

    def setup_partition(self, partition: PregelPartition) -> None:
        """Reset per-run state; reuse the layout-derived out-edge index.

        ``out_src_local`` depends only on the partition layout, so an engine
        prepared once (see :func:`build_pregel_engine`) keeps it across runs;
        a fresh engine computes it here on first use.
        """
        if "out_src_local" not in partition.block_state:
            partition.block_state["out_src_local"] = partition.local_indices(partition.out_src)
        partition.block_state["h"] = None
        partition.block_state["output"] = None

    # ------------------------------------------------------------------ #
    def _assemble_messages(self, partition: PregelPartition,
                           incoming: List[MessageBlock]) -> tuple:
        """Concatenate incoming blocks into (local_dst, payload, counts)."""
        if not incoming:
            width = 0
            return (np.empty(0, dtype=np.int64), np.zeros((0, width)), np.empty(0, dtype=np.int64))
        dst = np.concatenate([block.dst_ids for block in incoming])
        payload = np.concatenate([block.dense_payload() for block in incoming], axis=0)
        counts = np.concatenate([block.counts for block in incoming])
        local_dst = partition.local_indices(dst)
        return local_dst, payload, counts

    def _scatter_messages(self, context: PartitionContext, partition: PregelPartition,
                          state: np.ndarray, superstep: int) -> None:
        """Build and send this superstep's out-edge messages."""
        if partition.num_out_edges == 0:
            return
        next_layer = self.model.layers[superstep]
        layer_strategy = self.plan.layer(superstep)
        src_local = partition.block_state["out_src_local"]
        edge_features = partition.out_edge_features
        edge_tensor = None if edge_features is None else Tensor(edge_features)

        messages = next_layer.apply_edge(Tensor(state[src_local]), edge_tensor).data
        dst_ids = partition.out_dst
        source_ids = partition.out_src
        counts = np.ones(dst_ids.shape[0], dtype=np.int64)

        # apply_edge cost: one pass over every outgoing message element (the
        # per-edge projections some layers perform are folded into this rate).
        context.add_compute(messages.shape[0] * messages.shape[1])

        if layer_strategy.broadcast and self.plan.hub_set:
            hub_rows, plain_rows = split_hub_edges(source_ids, self.plan.hub_set)
        else:
            hub_rows = np.empty(0, dtype=np.int64)
            plain_rows = np.arange(dst_ids.shape[0])

        if plain_rows.size:
            plain_dst, plain_payload, plain_counts = self._expand(
                dst_ids[plain_rows], messages[plain_rows], counts[plain_rows])
            context.send_block(MessageBlock(dst_ids=plain_dst, payload=plain_payload,
                                            counts=plain_counts))

        if hub_rows.size:
            # Each hub source appears on many rows with the same payload: keep
            # one copy per hub and reference it per edge.
            hub_sources = source_ids[hub_rows]
            unique_sources, first_rows, refs = np.unique(hub_sources, return_index=True,
                                                         return_inverse=True)
            unique_payloads = messages[hub_rows][first_rows]
            hub_dst, hub_refs, hub_counts = self._expand(
                dst_ids[hub_rows], refs.reshape(-1, 1).astype(np.float64), counts[hub_rows])
            context.send_block(BroadcastMessageBlock(
                dst_ids=hub_dst,
                payload_refs=hub_refs.reshape(-1).astype(np.int64),
                unique_payloads=unique_payloads,
                counts=hub_counts,
            ))

    def _expand(self, dst_ids: np.ndarray, payload: np.ndarray, counts: np.ndarray) -> tuple:
        """Apply shadow-node destination expansion when the strategy is active."""
        if self.shadow_plan is None or not self.shadow_plan.has_mirrors:
            return dst_ids, payload, counts
        return self.shadow_plan.expand_destinations(dst_ids, payload, counts)

    # ------------------------------------------------------------------ #
    def compute_partition(self, context: PartitionContext,
                          incoming: List[MessageBlock]) -> None:
        partition: PregelPartition = context.partition
        superstep = context.superstep
        state = partition.block_state["h"]

        with no_grad():
            if superstep == 0:
                if partition.num_nodes:
                    features = Tensor(partition.node_features)
                    state = self.model.encode(features).data
                else:
                    state = np.zeros((0, self.model.encoder.out_features))
                context.add_compute(
                    partition.num_nodes * self.model.encoder.in_features
                    * self.model.encoder.out_features)
            else:
                layer = self.model.layers[superstep - 1]
                local_dst, payload, counts = self._assemble_messages(partition, incoming)
                if payload.shape[1] == 0:
                    payload = np.zeros((0, layer.message_dim))
                aggr = layer.gather(Tensor(payload), local_dst, partition.num_nodes, counts)
                new_state = layer.apply_node(Tensor(state), aggr)
                context.add_compute(gnn_layer_compute_units(
                    num_messages=payload.shape[0], message_dim=layer.message_dim,
                    num_nodes=partition.num_nodes, in_dim=layer.in_dim,
                    out_dim=getattr(layer, "output_dim", layer.out_dim)))
                state = new_state.data

            partition.block_state["h"] = state

            if superstep < self.num_layers:
                self._scatter_messages(context, partition, state, superstep)
            else:
                logits = self.model.predict(Tensor(state)).data if partition.num_nodes else \
                    np.zeros((0, self.model.output_dim))
                partition.block_state["output"] = logits
                context.add_compute(partition.num_nodes * state.shape[1] * max(logits.shape[1], 1)
                                    if partition.num_nodes else 0)

        # Peak memory: resident state + features + incoming messages.
        resident = tensor_bytes(state.shape)
        if partition.node_features is not None:
            resident += float(partition.node_features.nbytes)
        resident += sum(block.nbytes() for block in incoming)
        resident += float(partition.out_src.nbytes + partition.out_dst.nbytes)
        context.observe_memory(resident)


def build_pregel_engine(working_graph: Graph, config: InferenceConfig,
                        metrics: Optional[MetricsCollector] = None,
                        layout: Optional[ClusterLayout] = None) -> PregelEngine:
    """Partition the (possibly shadow-expanded) graph into a reusable engine.

    Partitioning is the expensive part of Pregel preparation; a session builds
    the engine once at ``prepare()`` time and swaps in a fresh metrics
    collector per execution.  A :class:`~repro.cluster.layout.ClusterLayout`
    already computed for this graph (the execution plan caches one) is reused
    instead of rebuilt, and the layout-derived local index of every
    partition's out-edge sources is precomputed here too, so executions reuse
    both instead of recomputing them per run.
    """
    engine = PregelEngine(working_graph, num_workers=config.num_workers,
                          metrics=metrics, layout=layout)
    for partition in engine.partitions:
        partition.block_state["out_src_local"] = partition.local_indices(partition.out_src)
    return engine


def run_pregel_inference(model: GNNModel, graph: Graph, config: InferenceConfig,
                         plan: StrategyPlan, shadow_plan: Optional[ShadowNodePlan],
                         metrics: MetricsCollector,
                         engine: Optional[PregelEngine] = None) -> Dict[str, np.ndarray]:
    """Execute full-graph inference on the Pregel backend.

    Returns a dict with ``scores`` [N, C] (original nodes only) and, when
    requested, ``embeddings`` (the last layer's state before the head).
    ``engine`` may carry a pre-partitioned engine from a previous ``plan``
    step; the program's ``setup_partition`` resets all per-run block state, so
    reuse is safe and repeated runs stay bit-identical.
    """
    working_graph = shadow_plan.graph if shadow_plan is not None else graph
    original_num_nodes = shadow_plan.original_num_nodes if shadow_plan is not None else graph.num_nodes

    program = GNNInferenceProgram(model, plan, shadow_plan)
    if engine is None:
        engine = build_pregel_engine(working_graph, config, metrics)
    else:
        engine.metrics = metrics
    model.eval()
    result = engine.run(program)

    scores = np.zeros((original_num_nodes, model.output_dim))
    embeddings = None
    if config.collect_embeddings:
        last_width = getattr(model.layers[-1], "output_dim", model.layers[-1].out_dim)
        embeddings = np.zeros((original_num_nodes, last_width))
    for partition in result.partitions:
        output = partition.block_state.get("output")
        if output is None:
            continue
        keep = partition.node_ids < original_num_nodes
        scores[partition.node_ids[keep]] = output[keep]
        if embeddings is not None:
            embeddings[partition.node_ids[keep]] = partition.block_state["h"][keep]
    payload: Dict[str, np.ndarray] = {"scores": scores}
    if embeddings is not None:
        payload["embeddings"] = embeddings
    return payload
