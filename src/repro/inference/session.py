"""Serving-oriented inference sessions: plan once, infer many.

:class:`InferenceSession` splits the old monolithic ``InferTurbo.run()`` into

* :meth:`~InferenceSession.prepare` — table ingest, strategy planning, the
  shadow-node graph rewrite and the backend's partition/ingest work, computed
  once and cached as an :class:`~repro.inference.backends.ExecutionPlan`;
* :meth:`~InferenceSession.infer` / :meth:`~InferenceSession.infer_many` —
  repeatable executions that reuse the cached plan, each returning a full
  :class:`InferenceResult`;
* :meth:`~InferenceSession.report` — a structured :class:`RunReport`
  aggregating scores, costs and the plan description across the session.

Every strategy is lossless, so every ``infer()`` on a session is bit-identical
to a fresh one-shot run — the session only removes the repeated planning work.

Serving graphs change between runs, so the session enforces a **staleness
contract**: the plan fingerprints the graph at :meth:`~InferenceSession.prepare`
time, every :meth:`~InferenceSession.infer` re-checks it, and an out-of-band
in-place mutation raises :class:`~repro.inference.delta.StalePlanError`
instead of silently serving yesterday's scores.  In-band changes travel as a
:class:`~repro.inference.delta.GraphDelta` through
:meth:`~InferenceSession.apply_delta`; afterwards
``infer(mode="incremental")`` recomputes only the delta's k-hop reach on
backends that support it (bit-identical to a fresh full run), and plain
``infer()`` runs fully against the patched plan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.lockgraph import RLockLike, note_slow_call, tracked_rlock
from repro.cluster.cost_model import CostModel, CostSummary
from repro.cluster.metrics import MetricsCollector
from repro.gnn.model import GNNModel
from repro.gnn.signature import ModelSignature
from repro.graph.graph import Graph
from repro.graph.tables import EdgeTable, NodeTable, tables_to_graph
from repro.inference.backends import Backend, ExecutionPlan, get_backend
from repro.inference.config import InferenceConfig
from repro.inference.delta import (
    DeltaBuffer,
    DeltaOutcome,
    GraphDelta,
    StalePlanError,
    apply_delta_to_graph,
    graph_fingerprint,
    validate_delta_against_graph,
)
from repro.inference.strategies import StrategyPlan

_EMPTY_IDS = np.empty(0, dtype=np.int64)

GraphLike = Union[Graph, Tuple[Any, ...]]


@dataclass
class InferenceResult:
    """Outcome of one full-graph inference execution."""

    scores: np.ndarray
    cost: CostSummary
    metrics: MetricsCollector
    plan: StrategyPlan
    embeddings: Optional[np.ndarray] = None
    num_supersteps: int = 0
    #: Real wall-clock seconds this ``infer()`` call took once it held the
    #: execution lock (deferred-delta flush included, queueing behind another
    #: thread's run excluded) — the per-request latency sample serving tiers
    #: aggregate into percentiles, measured here so every consumer shares one
    #: source of truth instead of wrapping its own timer around the call.
    elapsed_seconds: float = 0.0

    def predicted_classes(self) -> np.ndarray:
        """Hard argmax predictions (single-label tasks)."""
        return self.scores.argmax(axis=-1)


@dataclass
class RunReport:
    """Structured summary of everything a session has executed so far."""

    backend: str
    plan_description: str
    num_runs: int
    num_supersteps: int
    scores: Optional[np.ndarray]
    cost: Optional[CostSummary]
    metrics: Optional[MetricsCollector]
    total_wall_clock_seconds: float
    total_cpu_minutes: float
    total_bytes: float
    #: Real (measured, not simulated) wall-clock seconds summed over every
    #: ``infer()`` the session executed, and the latest single sample — the
    #: serving tier's latency source of truth.
    total_elapsed_seconds: float = 0.0
    last_elapsed_seconds: float = 0.0

    @property
    def mean_elapsed_seconds(self) -> float:
        """Mean measured seconds per ``infer()`` (0 before the first run)."""
        return self.total_elapsed_seconds / self.num_runs if self.num_runs else 0.0

    def describe(self) -> str:
        return (f"{self.backend}: {self.num_runs} run(s), "
                f"{self.total_wall_clock_seconds:.3f}s simulated wall-clock total, "
                f"{self.total_elapsed_seconds:.3f}s measured, "
                f"{self.total_cpu_minutes:.4f} cpu*min, "
                f"{self.total_bytes / 1e6:.1f} MB moved  [{self.plan_description}]")


class InferenceSession:
    """A reusable inference context bound to one model and one backend.

    Parameters
    ----------
    model:
        Either a live :class:`~repro.gnn.model.GNNModel` or a
        :class:`~repro.gnn.signature.ModelSignature` previously exported —
        the deployment artefact the paper's pipeline ships to the cluster.
    config:
        Backend name, worker count, cluster spec and strategy switches; the
        backend is resolved through the plugin registry, so any registered
        name works.

    Typical serving flow::

        session = InferenceSession(signature, InferenceConfig(backend="pregel"))
        session.prepare(graph)            # plan once (ingest, strategies, layout)
        result = session.infer()          # run many times against the cached plan
        nightly = session.infer_many(7)

        # the graph changed? describe it, don't mutate in place:
        session.apply_delta(GraphDelta(node_ids=ids, node_features=rows))
        fresh = session.infer(mode="incremental")   # only the dirty k-hop region

        # many small deltas between ticks? defer and coalesce:
        for delta in deltas:
            session.apply_delta(delta, defer=True)  # buffered, not applied
        tick = session.infer()                      # ONE merged patch, then run
        print(session.report().describe())

    Serving many graphs from one model?  Use
    :class:`~repro.inference.pool.SessionPool`, which caches one prepared
    session per graph content.
    """

    def __init__(self, model: Union[GNNModel, ModelSignature],
                 config: Optional[InferenceConfig] = None) -> None:
        if isinstance(model, ModelSignature):
            self.model = model.build_model()
        else:
            self.model = model
        self.config = config or InferenceConfig()
        self.backend: Backend = get_backend(self.config.backend)
        self._plan: Optional[ExecutionPlan] = None
        self._source: Optional[GraphLike] = None
        # Working-graph ids dirtied by apply_delta since the last execution;
        # they seed the next incremental run's frontier.
        self._feature_dirty: np.ndarray = _EMPTY_IDS
        self._topo_dirty: np.ndarray = _EMPTY_IDS
        # Deferred deltas (apply_delta(defer=True)) awaiting one merged flush.
        self._pending: Optional[DeltaBuffer] = None
        # Concurrency contract (the async serving gateway drives sessions from
        # worker threads):
        #   * ``_exec_lock`` serialises everything that mutates or executes
        #     the plan — prepare, eager apply_delta, flush, infer, close — so
        #     two threads can never run or rebuild one plan at once;
        #   * ``_mutate_lock`` covers only the *mutation* phases (flush /
        #     prepare / eager apply) plus deferred buffering, so
        #     ``apply_delta(defer=True)`` may safely overlap a long backend
        #     execution (which only reads the graph) but never a flush
        #     (which rewrites it).
        # Lock order is always _exec_lock -> _mutate_lock; the deferred path
        # takes _mutate_lock alone, so no cycle exists.  Under
        # REPRO_LOCK_TRACK=1 the lockgraph tracker records every acquisition
        # ordering and fails the run if a refactor ever closes a cycle.
        self._exec_lock = tracked_rlock("InferenceSession._exec_lock")
        self._mutate_lock = tracked_rlock("InferenceSession._mutate_lock")
        # True while a batch holds the staleness check it already performed,
        # so infer_many() fingerprints the graph once, not once per run.
        self._staleness_checked = False
        # Only the latest result plus running totals are retained, so a
        # long-lived serving session does not accumulate score matrices.
        self._last_result: Optional[InferenceResult] = None
        self._num_runs = 0
        self._num_replans = 0
        self._total_wall_clock_seconds = 0.0
        self._total_cpu_minutes = 0.0
        self._total_bytes = 0.0
        self._total_elapsed_seconds = 0.0

    # ------------------------------------------------------------------ #
    @property
    def plan(self) -> Optional[ExecutionPlan]:
        """The cached execution plan (None until :meth:`prepare` runs)."""
        return self._plan

    @property
    def is_prepared(self) -> bool:
        return self._plan is not None

    @property
    def num_runs(self) -> int:
        return self._num_runs

    @property
    def num_pending_deltas(self) -> int:
        """Deferred deltas buffered since the last flush (0 when none)."""
        return 0 if self._pending is None else self._pending.num_pending

    @property
    def num_replans(self) -> int:
        """How many deltas invalidated the cached plan and forced a full
        re-``prepare()`` (explicit ``prepare()`` calls are not counted).
        The streaming soak harness aggregates this across a pool to assert
        that stable-hub edge churn never re-plans.
        """
        return self._num_replans

    # ------------------------------------------------------------------ #
    @staticmethod
    def _ingest(graph: GraphLike) -> Graph:
        """Accept an in-memory graph or a (NodeTable, EdgeTable) pair."""
        if isinstance(graph, tuple):
            node_table, edge_table = graph
            if not isinstance(node_table, NodeTable) or not isinstance(edge_table, EdgeTable):
                raise TypeError("expected a (NodeTable, EdgeTable) pair")
            graph = tables_to_graph(node_table, edge_table)
        return graph

    @staticmethod
    def _release_plan_resources(plan: Optional[ExecutionPlan]) -> None:
        """Shut down backend state that owns OS resources (worker processes,
        shared-memory segments).  Backend-agnostic: anything in ``plan.state``
        exposing a ``shutdown()`` — a partitioned Pregel engine, a plan-cached
        process executor — is released; the plan itself stays usable and lazily
        respawns workers on its next execution.
        """
        if plan is None:
            return
        for value in plan.state.values():
            shutdown = getattr(value, "shutdown", None)
            if callable(shutdown):
                shutdown()

    def close(self) -> None:
        """Release worker processes / shared memory held by the cached plan.

        Only meaningful when the session runs on the ``"process"`` executor
        (serial plans hold no OS resources); safe to call repeatedly, and the
        session remains usable — the next execution respawns its workers.
        :class:`~repro.inference.pool.SessionPool` calls this on eviction.
        An ``infer()`` in flight on another thread finishes first — workers
        are never torn down under a running execution.
        """
        note_slow_call("close")
        with self._exec_lock:
            self._release_plan_resources(self._plan)

    def prepare(self, graph: GraphLike) -> ExecutionPlan:
        """Build and cache the execution plan for ``graph``.

        Runs table ingest, strategy planning, the shadow-node rewrite, the
        :class:`~repro.cluster.layout.ClusterLayout` routing-table build and
        the backend's own preparation (Pregel partitioning / MapReduce record
        ingest / k-hop pipeline setup).  Subsequent :meth:`infer` /
        :meth:`infer_many` calls reuse the returned plan — including the
        cached layout, which is never recomputed per run.

        Re-planning while deferred deltas are pending would silently discard
        them, so it raises; call :meth:`flush_deltas` (to apply them) or
        :meth:`discard_pending_deltas` first.
        """
        note_slow_call("prepare")
        with self._exec_lock, self._mutate_lock:
            if self._pending is not None and not self._pending.is_empty:
                raise RuntimeError(
                    f"{self._pending.num_pending} deferred delta(s) are pending; "
                    "call flush_deltas() to apply them or discard_pending_deltas() "
                    "before re-planning")
            # The replaced plan's backend state may own worker processes and
            # shared-memory segments; release them eagerly rather than waiting
            # for garbage collection.
            self._release_plan_resources(self._plan)
            self._plan = self.backend.plan(self.model, self._ingest(graph), self.config)
            self._plan.fingerprint = graph_fingerprint(self._plan.graph)
            self._source = graph
            self._feature_dirty = _EMPTY_IDS
            self._topo_dirty = _EMPTY_IDS
            return self._plan

    def _is_prepared_for(self, graph: GraphLike) -> bool:
        """True when the cached plan covers ``graph``.

        Matches either the object originally passed to :meth:`prepare` (so a
        (NodeTable, EdgeTable) pair is not re-ingested on every call) or the
        ingested graph the plan was built over.
        """
        return self._plan is not None and (graph is self._source
                                           or graph is self._plan.graph)

    def _check_staleness(self, force: bool = False) -> None:
        """Raise :class:`StalePlanError` if the prepared graph was mutated.

        The fingerprint covers edge arrays and feature buffers; it is updated
        by :meth:`prepare` and :meth:`apply_delta`, so any mismatch means an
        out-of-band in-place mutation the plan cannot know about.  ``force``
        ignores ``config.staleness_check``: :meth:`apply_delta` must never
        launder a foreign mutation into a fresh fingerprint, even when the
        per-``infer()`` hot-path check is switched off.
        """
        plan = self._plan
        if plan is None or plan.fingerprint is None:
            return
        if not force and (not self.config.staleness_check or self._staleness_checked):
            return
        if graph_fingerprint(plan.graph) != plan.fingerprint:
            raise StalePlanError(
                "the graph was mutated in place after prepare(); the cached plan "
                "would serve stale scores.  Describe the change as a GraphDelta "
                "and call session.apply_delta(delta), or call "
                "session.prepare(graph) to re-plan from scratch")

    def delta_route_lock(self, defer: bool = False) -> RLockLike:
        """The lock a delta *router* holds to pair :meth:`apply_delta` with
        its own bookkeeping — mirroring the delta onto a tenant handle,
        re-keying a cache entry — atomically per session.

        :class:`~repro.inference.pool.SessionPool` holds this across its
        patch→mirror→re-key sequence so concurrent deltas to one session
        apply to the private copy and the caller's graph in the same order.
        Both locks are reentrant, so the guarded ``apply_delta(delta,
        defer=...)`` call (which takes the matching lock itself) is safe.
        ``defer=True`` returns the mutate lock — held only for the buffer
        merge, so deferred routing may overlap this session's in-flight
        execution; eager routing returns the execution lock and serialises
        with any running ``infer()``, exactly as the eager apply itself does.
        """
        return self._mutate_lock if defer else self._exec_lock

    def apply_delta(self, delta: GraphDelta, defer: bool = False) -> DeltaOutcome:
        """Fold a :class:`~repro.inference.delta.GraphDelta` into the session.

        Backends exposing an ``apply_delta`` hook (pregel, mapreduce) patch
        the cached plan in place — feature rows are scattered into the
        partitions / cached input records through the cluster layout, shadow
        mirror copies refreshed, hub thresholds re-checked — and the dirty
        region accumulates until the next :meth:`infer`.  When the delta
        invalidates the plan (hub set changed, mirror-group counts moved) or
        the backend has no hook (khop), the delta still lands on the graph
        and the session transparently re-plans — the full-recompute default.
        Either way the fingerprint is refreshed, so a following :meth:`infer`
        serves *current* scores.

        ``defer=True`` buffers the delta instead of applying it: the next
        :meth:`infer` (or an explicit :meth:`flush_deltas`) folds every
        buffered delta into **one** merged delta — one plan scatter and one
        frontier expansion per tick instead of one per delta — with results
        bit-identical to applying them eagerly one by one.  The returned
        outcome then has ``deferred=True`` and reports nothing about plan
        validity; the flush's outcome does.
        """
        if defer:
            # Deferred buffering takes only the mutate lock, so a serving
            # gateway may coalesce next-tick deltas *while* the current tick
            # executes on another thread (execution only reads the graph); a
            # concurrent flush/prepare — which rewrites it — is excluded.
            with self._mutate_lock:
                if self._plan is None:
                    raise RuntimeError(
                        "session is not prepared; call prepare(graph) first")
                # A delta describes a change to the *prepared* state: if the
                # graph was already mutated out of band, patching on top would
                # silently absorb the unknown mutation into a fresh
                # fingerprint — the exact stale-answer bug this contract
                # exists to prevent.  Fail loudly, even when the per-infer()
                # check is disabled.
                self._check_staleness(force=True)
                # delta_seen stays unarmed until the flush actually applies
                # something: a discarded or fully-cancelled buffer must not
                # make the session start paying for incremental state caches.
                buffer = self._pending or DeltaBuffer(self._plan.graph)
                # add() validates before mutating, so a rejected delta leaves
                # an existing buffer consistent — and a fresh buffer is only
                # committed to the session after its first successful add, or
                # a failed first defer would pin an empty buffer to a stale
                # edge-list snapshot.
                buffer.add(delta)
                self._pending = buffer
                return DeltaOutcome(
                    in_place=True, deferred=True,
                    reason=f"buffered ({self._pending.num_pending} pending); "
                           "applied at the next infer()/flush_deltas()")
        note_slow_call("apply_delta")
        with self._exec_lock:
            if self._plan is None:
                raise RuntimeError("session is not prepared; call prepare(graph) first")
            self._check_staleness(force=True)
            if self._pending is not None and not self._pending.is_empty:
                # An eager delta describes the state *after* the buffered ones:
                # preserve sequence semantics by flushing them first.
                self.flush_deltas()
            if delta.is_empty:
                return DeltaOutcome(in_place=True)
            # Validate at the API boundary (same checks the deferred path's
            # DeltaBuffer.add performs): a malformed delta — wrong edge-feature
            # width, out-of-range ids — fails here with the graph, the plan and
            # the backend caches all untouched.
            validate_delta_against_graph(self._plan.graph, delta)
            return self._apply_delta_now(delta)

    def flush_deltas(self) -> DeltaOutcome:
        """Apply every deferred delta as one merged delta (no-op when none).

        Called automatically at the start of :meth:`infer`, so a serving loop
        only needs it to control *when* the plan patch happens (e.g. off the
        request path).
        """
        with self._exec_lock, self._mutate_lock:
            buffer, self._pending = self._pending, None
            if buffer is None or buffer.is_empty:
                return DeltaOutcome(in_place=True, reason="no pending deltas")
            # The buffered deltas describe changes to the *prepared* state; if
            # the graph was mutated out of band since they were deferred,
            # applying the merged delta would launder that mutation into a
            # fresh fingerprint — the same loud failure the eager path
            # enforces.
            self._check_staleness(force=True)
            merged = buffer.merge()
            if merged.is_empty:
                # Deltas can cancel out (every append later removed);
                # nothing to do.
                return DeltaOutcome(in_place=True,
                                    reason="pending deltas cancelled out")
            return self._apply_delta_now(merged)

    def discard_pending_deltas(self) -> int:
        """Drop the deferred-delta buffer; returns how many deltas it held."""
        with self._mutate_lock:
            buffer, self._pending = self._pending, None
            return 0 if buffer is None else buffer.num_pending

    def _apply_delta_now(self, delta: GraphDelta) -> DeltaOutcome:
        """Eagerly fold a (possibly merged) delta into the plan or re-plan.

        Callers hold ``_exec_lock``; the mutate lock is taken here so deferred
        buffering on other threads is excluded while the plan and graph
        arrays are rewritten.
        """
        self._exec_lock.acquire()
        self._mutate_lock.acquire()
        try:
            return self._apply_delta_now_locked(delta)
        finally:
            self._mutate_lock.release()
            self._exec_lock.release()

    def _apply_delta_now_locked(self, delta: GraphDelta) -> DeltaOutcome:
        self._plan.delta_seen = True
        hook = getattr(self.backend, "apply_delta", None)
        if hook is not None:
            outcome = hook(self._plan, delta)
            if outcome.in_place:
                self._feature_dirty = np.union1d(self._feature_dirty,
                                                 outcome.feature_dirty)
                self._topo_dirty = np.union1d(self._topo_dirty, outcome.topo_dirty)
                self._plan.fingerprint = graph_fingerprint(self._plan.graph)
                return outcome
        else:
            apply_delta_to_graph(self._plan.graph, delta)
            outcome = DeltaOutcome(in_place=False,
                                   reason=f"backend {self.backend.name!r} has no "
                                          "delta hook; re-planned")
        # Full-recompute default: the delta is already on the graph; rebuild
        # the plan over it.  Keep the original source object (e.g. the
        # (NodeTable, EdgeTable) pair this session was prepared from) valid as
        # an ``infer(source)`` target — re-ingesting it would resurrect the
        # pre-delta edge arrays.
        self._num_replans += 1
        source = self._source
        self.prepare(self._plan.graph)
        self._plan.delta_seen = True     # the session serves a drifting graph
        if source is not None:
            self._source = source
        return outcome

    def infer(self, graph: Optional[GraphLike] = None,
              check_memory: bool = False, mode: str = "full") -> InferenceResult:
        """Execute one inference run against the cached plan.

        ``graph`` is only needed on the first call (or to re-target the
        session): passing the graph the session is already prepared for reuses
        the cached plan; passing a different graph re-plans.  The plan
        snapshots the graph at :meth:`prepare` time; in-place mutations must
        arrive as :meth:`apply_delta` calls — an out-of-band mutation raises
        :class:`~repro.inference.delta.StalePlanError` here instead of
        silently serving stale scores.

        ``mode="incremental"`` reruns only the dirty k-hop region accumulated
        by :meth:`apply_delta` on backends that support it, bit-identical to
        a full run; it falls back to a full execution when the backend has no
        incremental hook or no warm state cache yet.  The per-superstep state
        cache incremental runs splice into is **lazy**: it only starts filling
        once the session has seen a delta (see
        :attr:`InferenceConfig.incremental_state_cache`), so the first
        post-delta incremental request is served by one full run that primes
        it.  Deltas buffered with ``apply_delta(..., defer=True)`` are flushed
        (one merged application) before the run.
        ``check_memory=True`` makes the cost model raise
        :class:`~repro.cluster.resources.OutOfMemoryError` if any simulated
        instance exceeds its memory budget.
        """
        if mode not in ("full", "incremental"):
            raise ValueError(f"mode must be 'full' or 'incremental', got {mode!r}")
        note_slow_call("infer")
        with self._exec_lock:
            # Clock starts *after* the execution lock is acquired: a caller
            # queued behind another thread's run would otherwise record lock
            # wait as inference latency, inflating serving percentiles and
            # retry-after estimates exactly when contention makes them matter.
            started = time.perf_counter()
            if graph is not None and not self._is_prepared_for(graph):
                self.prepare(graph)
            if self._plan is None:
                raise RuntimeError(
                    "session is not prepared; call prepare(graph) first "
                    "(or pass a graph to infer())")
            if self._pending is not None and not self._pending.is_empty:
                self.flush_deltas()
            self._check_staleness()

            plan = self._plan
            metrics = MetricsCollector()
            outputs = None
            if mode == "incremental":
                hook = getattr(self.backend, "execute_incremental", None)
                if hook is not None:
                    outputs = hook(plan, metrics, self._feature_dirty, self._topo_dirty)
                    if outputs is None:
                        metrics = MetricsCollector()   # discard the aborted attempt
            if outputs is None:
                outputs = self.backend.execute(plan, metrics)
            # Either path leaves the backend's caches describing the current
            # graph, so the dirty region is consumed.
            self._feature_dirty = _EMPTY_IDS
            self._topo_dirty = _EMPTY_IDS
            cost = CostModel(self.config.cluster).summarize(metrics, check_memory=check_memory)
            elapsed = time.perf_counter() - started
            result = InferenceResult(
                scores=outputs["scores"],
                embeddings=outputs.get("embeddings"),
                cost=cost,
                metrics=metrics,
                plan=plan.strategy_plan,
                num_supersteps=plan.num_supersteps,
                elapsed_seconds=elapsed,
            )
            self._last_result = result
            self._num_runs += 1
            self._total_wall_clock_seconds += cost.wall_clock_seconds
            self._total_cpu_minutes += cost.cpu_minutes
            self._total_bytes += cost.total_bytes
            self._total_elapsed_seconds += elapsed
            return result

    def infer_many(self, n: int, check_memory: bool = False) -> List[InferenceResult]:
        """Run ``n`` repeated executions against the cached plan.

        ``n`` must be a true integer: a float like ``0.5`` used to slip past
        the positivity guard and silently return an empty list without
        running anything.
        """
        if isinstance(n, bool) or not isinstance(n, (int, np.integer)):
            raise TypeError(f"n must be an integer number of runs, "
                            f"got {type(n).__name__} ({n!r})")
        if n <= 0:
            raise ValueError("n must be positive")
        # One staleness check covers the whole single-threaded batch: nothing
        # between iterations can mutate the graph.
        self._check_staleness()
        self._staleness_checked = self.is_prepared
        try:
            return [self.infer(check_memory=check_memory) for _ in range(int(n))]
        finally:
            self._staleness_checked = False

    # ------------------------------------------------------------------ #
    def report(self) -> RunReport:
        """Aggregate what the session has done into a structured report."""
        last = self._last_result
        return RunReport(
            backend=self.backend.name,
            plan_description=self._plan.describe() if self._plan is not None else "<unprepared>",
            num_runs=self._num_runs,
            num_supersteps=last.num_supersteps if last is not None else 0,
            scores=last.scores if last is not None else None,
            cost=last.cost if last is not None else None,
            metrics=last.metrics if last is not None else None,
            total_wall_clock_seconds=self._total_wall_clock_seconds,
            total_cpu_minutes=self._total_cpu_minutes,
            total_bytes=self._total_bytes,
            total_elapsed_seconds=self._total_elapsed_seconds,
            last_elapsed_seconds=last.elapsed_seconds if last is not None else 0.0,
        )
