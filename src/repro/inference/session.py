"""Serving-oriented inference sessions: plan once, infer many.

:class:`InferenceSession` splits the old monolithic ``InferTurbo.run()`` into

* :meth:`~InferenceSession.prepare` — table ingest, strategy planning, the
  shadow-node graph rewrite and the backend's partition/ingest work, computed
  once and cached as an :class:`~repro.inference.backends.ExecutionPlan`;
* :meth:`~InferenceSession.infer` / :meth:`~InferenceSession.infer_many` —
  repeatable executions that reuse the cached plan, each returning a full
  :class:`InferenceResult`;
* :meth:`~InferenceSession.report` — a structured :class:`RunReport`
  aggregating scores, costs and the plan description across the session.

Every strategy is lossless, so every ``infer()`` on a session is bit-identical
to a fresh one-shot run — the session only removes the repeated planning work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.cluster.cost_model import CostModel, CostSummary
from repro.cluster.metrics import MetricsCollector
from repro.gnn.model import GNNModel
from repro.gnn.signature import ModelSignature
from repro.graph.graph import Graph
from repro.graph.tables import EdgeTable, NodeTable, tables_to_graph
from repro.inference.backends import Backend, ExecutionPlan, get_backend
from repro.inference.config import InferenceConfig
from repro.inference.strategies import StrategyPlan

GraphLike = Union[Graph, tuple]


@dataclass
class InferenceResult:
    """Outcome of one full-graph inference execution."""

    scores: np.ndarray
    cost: CostSummary
    metrics: MetricsCollector
    plan: StrategyPlan
    embeddings: Optional[np.ndarray] = None
    num_supersteps: int = 0

    def predicted_classes(self) -> np.ndarray:
        """Hard argmax predictions (single-label tasks)."""
        return self.scores.argmax(axis=-1)


@dataclass
class RunReport:
    """Structured summary of everything a session has executed so far."""

    backend: str
    plan_description: str
    num_runs: int
    num_supersteps: int
    scores: Optional[np.ndarray]
    cost: Optional[CostSummary]
    metrics: Optional[MetricsCollector]
    total_wall_clock_seconds: float
    total_cpu_minutes: float
    total_bytes: float

    def describe(self) -> str:
        return (f"{self.backend}: {self.num_runs} run(s), "
                f"{self.total_wall_clock_seconds:.3f}s simulated wall-clock total, "
                f"{self.total_cpu_minutes:.4f} cpu*min, "
                f"{self.total_bytes / 1e6:.1f} MB moved  [{self.plan_description}]")


class InferenceSession:
    """A reusable inference context bound to one model and one backend.

    Parameters
    ----------
    model:
        Either a live :class:`~repro.gnn.model.GNNModel` or a
        :class:`~repro.gnn.signature.ModelSignature` previously exported —
        the deployment artefact the paper's pipeline ships to the cluster.
    config:
        Backend name, worker count, cluster spec and strategy switches; the
        backend is resolved through the plugin registry, so any registered
        name works.

    Typical serving flow::

        session = InferenceSession(signature, InferenceConfig(backend="pregel"))
        session.prepare(graph)            # plan once (ingest, strategies, layout)
        result = session.infer()          # run many times against the cached plan
        nightly = session.infer_many(7)
        print(session.report().describe())
    """

    def __init__(self, model: Union[GNNModel, ModelSignature],
                 config: Optional[InferenceConfig] = None) -> None:
        if isinstance(model, ModelSignature):
            self.model = model.build_model()
        else:
            self.model = model
        self.config = config or InferenceConfig()
        self.backend: Backend = get_backend(self.config.backend)
        self._plan: Optional[ExecutionPlan] = None
        self._source: Optional[GraphLike] = None
        # Only the latest result plus running totals are retained, so a
        # long-lived serving session does not accumulate score matrices.
        self._last_result: Optional[InferenceResult] = None
        self._num_runs = 0
        self._total_wall_clock_seconds = 0.0
        self._total_cpu_minutes = 0.0
        self._total_bytes = 0.0

    # ------------------------------------------------------------------ #
    @property
    def plan(self) -> Optional[ExecutionPlan]:
        """The cached execution plan (None until :meth:`prepare` runs)."""
        return self._plan

    @property
    def is_prepared(self) -> bool:
        return self._plan is not None

    @property
    def num_runs(self) -> int:
        return self._num_runs

    # ------------------------------------------------------------------ #
    @staticmethod
    def _ingest(graph: GraphLike) -> Graph:
        """Accept an in-memory graph or a (NodeTable, EdgeTable) pair."""
        if isinstance(graph, tuple):
            node_table, edge_table = graph
            if not isinstance(node_table, NodeTable) or not isinstance(edge_table, EdgeTable):
                raise TypeError("expected a (NodeTable, EdgeTable) pair")
            graph = tables_to_graph(node_table, edge_table)
        return graph

    def prepare(self, graph: GraphLike) -> ExecutionPlan:
        """Build and cache the execution plan for ``graph``.

        Runs table ingest, strategy planning, the shadow-node rewrite, the
        :class:`~repro.cluster.layout.ClusterLayout` routing-table build and
        the backend's own preparation (Pregel partitioning / MapReduce record
        ingest / k-hop pipeline setup).  Subsequent :meth:`infer` /
        :meth:`infer_many` calls reuse the returned plan — including the
        cached layout, which is never recomputed per run.
        """
        self._plan = self.backend.plan(self.model, self._ingest(graph), self.config)
        self._source = graph
        return self._plan

    def _is_prepared_for(self, graph: GraphLike) -> bool:
        """True when the cached plan covers ``graph``.

        Matches either the object originally passed to :meth:`prepare` (so a
        (NodeTable, EdgeTable) pair is not re-ingested on every call) or the
        ingested graph the plan was built over.
        """
        return self._plan is not None and (graph is self._source
                                           or graph is self._plan.graph)

    def infer(self, graph: Optional[GraphLike] = None,
              check_memory: bool = False) -> InferenceResult:
        """Execute one inference run against the cached plan.

        ``graph`` is only needed on the first call (or to re-target the
        session): passing the graph the session is already prepared for reuses
        the cached plan; passing a different graph re-plans.  The plan
        snapshots the graph at :meth:`prepare` time — after mutating a graph
        in place (e.g. refreshing node features), call :meth:`prepare` again
        to pick up the changes.
        ``check_memory=True`` makes the cost model raise
        :class:`~repro.cluster.resources.OutOfMemoryError` if any simulated
        instance exceeds its memory budget.
        """
        if graph is not None and not self._is_prepared_for(graph):
            self.prepare(graph)
        if self._plan is None:
            raise RuntimeError(
                "session is not prepared; call prepare(graph) first "
                "(or pass a graph to infer())")

        plan = self._plan
        metrics = MetricsCollector()
        outputs = self.backend.execute(plan, metrics)
        cost = CostModel(self.config.cluster).summarize(metrics, check_memory=check_memory)
        result = InferenceResult(
            scores=outputs["scores"],
            embeddings=outputs.get("embeddings"),
            cost=cost,
            metrics=metrics,
            plan=plan.strategy_plan,
            num_supersteps=plan.num_supersteps,
        )
        self._last_result = result
        self._num_runs += 1
        self._total_wall_clock_seconds += cost.wall_clock_seconds
        self._total_cpu_minutes += cost.cpu_minutes
        self._total_bytes += cost.total_bytes
        return result

    def infer_many(self, n: int, check_memory: bool = False) -> List[InferenceResult]:
        """Run ``n`` repeated executions against the cached plan."""
        if n <= 0:
            raise ValueError("n must be positive")
        return [self.infer(check_memory=check_memory) for _ in range(int(n))]

    # ------------------------------------------------------------------ #
    def report(self) -> RunReport:
        """Aggregate what the session has done into a structured report."""
        last = self._last_result
        return RunReport(
            backend=self.backend.name,
            plan_description=self._plan.describe() if self._plan is not None else "<unprepared>",
            num_runs=self._num_runs,
            num_supersteps=last.num_supersteps if last is not None else 0,
            scores=last.scores if last is not None else None,
            cost=last.cost if last is not None else None,
            metrics=last.metrics if last is not None else None,
            total_wall_clock_seconds=self._total_wall_clock_seconds,
            total_cpu_minutes=self._total_cpu_minutes,
            total_bytes=self._total_bytes,
        )
