"""Shadow-nodes preprocessing.

A node whose out-degree exceeds the hub threshold is duplicated into mirrors;
each mirror keeps **all** the in-edges (senders deliver every in-message to
every mirror, which is the documented overhead of the strategy) and a slice of
the out-edges, so the sending load of the hub spreads over several workers.
Because every mirror sees exactly the in-messages of the original node, it
computes exactly the original node's state, and the union of the mirrors'
out-edges equals the original out-edge set — results are unchanged.

The transformation is applied to the graph before partitioning; the returned
plan carries the replica map the adaptors use to fan in-messages out to the
mirrors and to read final predictions only from original node ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.graph.graph import Graph


@dataclass
class ShadowNodePlan:
    """Result of shadow-node preprocessing."""

    graph: Graph
    original_num_nodes: int
    #: original node id -> array of ids its in-messages must be delivered to
    #: (the original id itself plus its mirrors); nodes without mirrors are
    #: absent from the map.
    replica_map: Dict[int, np.ndarray] = field(default_factory=dict)
    #: mirror id -> original node id
    mirror_origin: Dict[int, int] = field(default_factory=dict)

    @property
    def num_mirrors(self) -> int:
        return len(self.mirror_origin)

    def expand_destinations(self, dst_ids: np.ndarray, payload: np.ndarray,
                            counts: Optional[np.ndarray] = None) -> tuple:
        """Duplicate message rows whose destination has mirrors.

        Returns expanded ``(dst_ids, payload, counts)`` arrays.  Rows whose
        destination is not replicated are passed through untouched, so the
        common case costs one vectorised membership test.
        """
        if not self.replica_map:
            return dst_ids, payload, counts
        dst_ids = np.asarray(dst_ids, dtype=np.int64)
        if counts is None:
            counts = np.ones(dst_ids.shape[0], dtype=np.int64)
        replicated_ids = np.fromiter(self.replica_map.keys(), dtype=np.int64,
                                     count=len(self.replica_map))
        needs_expand = np.isin(dst_ids, replicated_ids)
        if not needs_expand.any():
            return dst_ids, payload, counts

        keep_rows = np.nonzero(~needs_expand)[0]
        expand_rows = np.nonzero(needs_expand)[0]
        out_dst: List[np.ndarray] = [dst_ids[keep_rows]]
        out_payload: List[np.ndarray] = [payload[keep_rows]]
        out_counts: List[np.ndarray] = [counts[keep_rows]]
        for row in expand_rows:
            replicas = self.replica_map[int(dst_ids[row])]
            out_dst.append(replicas)
            out_payload.append(np.repeat(payload[row][None, :], replicas.size, axis=0))
            out_counts.append(np.full(replicas.size, counts[row], dtype=np.int64))
        return (np.concatenate(out_dst),
                np.concatenate(out_payload, axis=0),
                np.concatenate(out_counts))


def apply_shadow_nodes(graph: Graph, threshold: int, num_workers: int,
                       max_mirrors: Optional[int] = None) -> ShadowNodePlan:
    """Split hub out-edges across mirror nodes.

    The number of mirrors for a hub with out-degree ``d`` is
    ``ceil(d / threshold)`` capped at ``num_workers`` (one mirror per worker is
    the most the strategy can ever use).  Mirror ids are allocated past the
    original id range; mirror features/labels are copies of the original's.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    out_degrees = graph.out_degrees()
    hubs = np.nonzero(out_degrees > threshold)[0]
    if hubs.size == 0:
        return ShadowNodePlan(graph=graph, original_num_nodes=graph.num_nodes)

    cap = max_mirrors if max_mirrors is not None else num_workers
    new_src = graph.src.copy()
    replica_map: Dict[int, np.ndarray] = {}
    mirror_origin: Dict[int, int] = {}
    extra_features: List[np.ndarray] = []
    extra_labels: List[np.ndarray] = []
    next_id = graph.num_nodes

    for hub in hubs:
        hub = int(hub)
        edge_positions = graph.out_edge_ids(hub)
        degree = edge_positions.size
        num_groups = min(int(np.ceil(degree / threshold)), max(cap, 1))
        if num_groups <= 1:
            continue
        groups = np.array_split(edge_positions, num_groups)
        replica_ids = [hub]
        # Group 0 stays with the original node; groups 1.. go to fresh mirrors.
        for group in groups[1:]:
            mirror_id = next_id
            next_id += 1
            new_src[group] = mirror_id
            replica_ids.append(mirror_id)
            mirror_origin[mirror_id] = hub
            if graph.node_features is not None:
                extra_features.append(graph.node_features[hub])
            if graph.labels is not None:
                extra_labels.append(np.asarray(graph.labels[hub]))
        replica_map[hub] = np.asarray(replica_ids, dtype=np.int64)

    if not mirror_origin:
        return ShadowNodePlan(graph=graph, original_num_nodes=graph.num_nodes)

    node_features = graph.node_features
    if node_features is not None:
        node_features = np.concatenate([node_features, np.stack(extra_features)], axis=0)
    labels = graph.labels
    if labels is not None:
        labels = np.concatenate([labels, np.stack(extra_labels)], axis=0)

    expanded = Graph(
        src=new_src,
        dst=graph.dst.copy(),
        node_features=node_features,
        edge_features=graph.edge_features,
        labels=labels,
        num_nodes=next_id,
    )
    return ShadowNodePlan(
        graph=expanded,
        original_num_nodes=graph.num_nodes,
        replica_map=replica_map,
        mirror_origin=mirror_origin,
    )
