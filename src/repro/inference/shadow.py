"""Shadow-nodes preprocessing.

A node whose out-degree exceeds the hub threshold is duplicated into mirrors;
each mirror keeps **all** the in-edges (senders deliver every in-message to
every mirror, which is the documented overhead of the strategy) and a slice of
the out-edges, so the sending load of the hub spreads over several workers.
Because every mirror sees exactly the in-messages of the original node, it
computes exactly the original node's state, and the union of the mirrors'
out-edges equals the original out-edge set — results are unchanged.

The transformation is applied to the graph before partitioning; the returned
plan carries the replica map the adaptors use to fan in-messages out to the
mirrors and to read final predictions only from original node ids.  The map
is stored as flat CSR arrays (``replica_indptr`` / ``replica_ids``) over the
expanded id space, so destination expansion is a pure repeat/gather pass with
no per-row Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.layout import csr_gather
from repro.graph.graph import Graph
from repro.inference.strategies import select_hubs


@dataclass
class ShadowNodePlan:
    """Result of shadow-node preprocessing.

    ``replica_indptr``/``replica_ids`` form a CSR over the expanded graph's id
    space: ``replica_ids[replica_indptr[g]:replica_indptr[g + 1]]`` lists
    every node id the in-messages of ``g`` must be delivered to — ``g`` itself
    first, then its mirrors; non-replicated nodes map to just themselves.
    Both arrays are ``None`` when no node has mirrors.
    """

    graph: Graph
    original_num_nodes: int
    #: CSR offsets, ``int64 [expanded_num_nodes + 1]`` (None when no mirrors).
    replica_indptr: Optional[np.ndarray] = None
    #: CSR targets, ``int64`` flat (None when no mirrors).
    replica_ids: Optional[np.ndarray] = None
    #: mirror id -> original node id
    mirror_origin: Dict[int, int] = field(default_factory=dict)
    #: lazily derived dense working id -> original id table (:attr:`origin_of`).
    _origin_of: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def num_mirrors(self) -> int:
        return len(self.mirror_origin)

    @property
    def has_mirrors(self) -> bool:
        return self.replica_indptr is not None

    @property
    def replica_map(self) -> Dict[int, np.ndarray]:
        """Legacy dict view: original node id -> its replica id array.

        Only nodes that actually have mirrors appear, exactly as the old
        ``Dict[int, np.ndarray]`` storage behaved.  Materialised on demand
        from the CSR arrays (hub counts are tiny); the CSR arrays remain the
        source of truth on the routing path.
        """
        if self.replica_indptr is None:
            return {}
        counts = np.diff(self.replica_indptr)
        replicated = np.nonzero(counts > 1)[0]
        return {int(node): self.replica_ids[
                    int(self.replica_indptr[node]):int(self.replica_indptr[node + 1])]
                for node in replicated}

    @property
    def origin_of(self) -> np.ndarray:
        """Dense ``working id -> original id`` table (identity for non-mirrors)."""
        if self._origin_of is None:
            size = self.graph.num_nodes
            origin = np.arange(size, dtype=np.int64)
            for mirror, orig in self.mirror_origin.items():
                origin[int(mirror)] = int(orig)
            self._origin_of = origin
        return self._origin_of

    def replicas_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Replica closure of ``node_ids``: every id plus all its co-replicas.

        Mirrors map back to their origin first, then the origin's full replica
        group fans out through the CSR arrays, so the result is closed under
        "computes the same state as" — the invariant incremental frontiers
        maintain.  Returns sorted unique working-graph ids.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if self.replica_indptr is None or node_ids.size == 0:
            return np.unique(node_ids)
        origins = np.unique(self.origin_of[node_ids])
        return np.unique(csr_gather(self.replica_indptr, self.replica_ids, origins))

    def refresh_mirror_features(self, base_graph: Graph,
                                changed_ids: np.ndarray) -> np.ndarray:
        """Propagate updated feature rows of ``changed_ids`` into the rewrite.

        Mirror features are copies of their origin's row, taken at rewrite
        time; after a feature delta the copies (and the expanded graph's rows
        for the originals, which live in a *separate* concatenated buffer)
        must be refreshed.  Returns every working-graph id whose feature row
        was touched — the replica closure of ``changed_ids``.
        """
        replicas = self.replicas_of(changed_ids)
        if self.graph is not base_graph and self.graph.node_features is not None:
            self.graph.node_features[replicas] = \
                base_graph.node_features[self.origin_of[replicas]]
        return replicas

    # ------------------------------------------------------------------ #
    def expand_destinations(self, dst_ids: np.ndarray, payload: np.ndarray,
                            counts: Optional[np.ndarray] = None,
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Duplicate message rows whose destination has mirrors.

        Returns expanded ``(dst_ids, payload, counts)`` arrays: rows whose
        destination is not replicated come first (in their original order),
        followed by the replica fan-out of the replicated rows — one
        repeat/gather pass over the CSR arrays, no per-row Python.
        """
        dst_ids = np.asarray(dst_ids, dtype=np.int64)
        if counts is None:
            counts = np.ones(dst_ids.shape[0], dtype=np.int64)
        if self.replica_indptr is None:
            return dst_ids, payload, counts
        reps = self.replica_indptr[dst_ids + 1] - self.replica_indptr[dst_ids]
        needs_expand = reps > 1
        if not needs_expand.any():
            return dst_ids, payload, counts

        keep_rows = np.nonzero(~needs_expand)[0]
        expand_rows = np.nonzero(needs_expand)[0]
        row_index, expanded_dst = self._fan_out(dst_ids[expand_rows], reps[expand_rows])
        source_rows = expand_rows[row_index]
        return (np.concatenate([dst_ids[keep_rows], expanded_dst]),
                np.concatenate([payload[keep_rows], payload[source_rows]], axis=0),
                np.concatenate([counts[keep_rows], counts[source_rows]]))

    def expand_rows(self, dst_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """In-place destination expansion for record-oriented shuffles.

        Returns ``(row_index, expanded_dst)`` where every input row appears at
        its original position, replicated rows expanding inline (row i's
        replicas are contiguous where row i was) — the ordering the MapReduce
        scatter emits records in.  ``row_index[j]`` names the input row that
        produced ``expanded_dst[j]``.
        """
        dst_ids = np.asarray(dst_ids, dtype=np.int64)
        if self.replica_indptr is None or dst_ids.size == 0:
            return np.arange(dst_ids.size, dtype=np.int64), dst_ids
        reps = self.replica_indptr[dst_ids + 1] - self.replica_indptr[dst_ids]
        if not (reps > 1).any():
            return np.arange(dst_ids.size, dtype=np.int64), dst_ids
        return self._fan_out(dst_ids, reps)

    def _fan_out(self, dst_ids: np.ndarray,
                 reps: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Expand every ``dst_ids[i]`` to its ``reps[i]`` replica ids inline."""
        row_index = np.repeat(np.arange(dst_ids.size, dtype=np.int64), reps)
        return row_index, csr_gather(self.replica_indptr, self.replica_ids, dst_ids)


def _build_replica_csr(num_nodes: int,
                       replica_lists: Dict[int, np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten per-hub replica lists into dense CSR over all node ids."""
    counts = np.ones(num_nodes, dtype=np.int64)
    for node, replicas in replica_lists.items():
        counts[node] = replicas.size
    indptr = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
    flat = np.empty(int(indptr[-1]), dtype=np.int64)
    identity = np.nonzero(counts == 1)[0]
    flat[indptr[identity]] = identity
    for node, replicas in replica_lists.items():
        flat[int(indptr[node]):int(indptr[node + 1])] = replicas
    return indptr, flat


def apply_shadow_nodes(graph: Graph, threshold: int, num_workers: int,
                       max_mirrors: Optional[int] = None) -> ShadowNodePlan:
    """Split hub out-edges across mirror nodes.

    The number of mirrors for a hub with out-degree ``d`` is
    ``ceil(d / threshold)`` capped at ``num_workers`` (one mirror per worker is
    the most the strategy can ever use).  Mirror ids are allocated past the
    original id range; mirror features/labels are copies of the original's.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    # Same >= rule as build_strategy_plan, so tie-degree nodes are hubs for
    # every strategy.  A hub whose degree is exactly the threshold still gets
    # no mirrors (one out-edge group suffices), but it is *considered* here.
    hubs = select_hubs(graph.out_degrees(), threshold)
    if hubs.size == 0:
        return ShadowNodePlan(graph=graph, original_num_nodes=graph.num_nodes)

    cap = max_mirrors if max_mirrors is not None else num_workers
    new_src = graph.src.copy()
    replica_lists: Dict[int, np.ndarray] = {}
    mirror_origin: Dict[int, int] = {}
    extra_features: List[np.ndarray] = []
    extra_labels: List[np.ndarray] = []
    next_id = graph.num_nodes

    for hub in hubs:
        hub = int(hub)
        edge_positions = graph.out_edge_ids(hub)
        degree = edge_positions.size
        num_groups = min(int(np.ceil(degree / threshold)), max(cap, 1))
        if num_groups <= 1:
            continue
        groups = np.array_split(edge_positions, num_groups)
        replica_ids = [hub]
        # Group 0 stays with the original node; groups 1.. go to fresh mirrors.
        for group in groups[1:]:
            mirror_id = next_id
            next_id += 1
            new_src[group] = mirror_id
            replica_ids.append(mirror_id)
            mirror_origin[mirror_id] = hub
            if graph.node_features is not None:
                extra_features.append(graph.node_features[hub])
            if graph.labels is not None:
                extra_labels.append(np.asarray(graph.labels[hub]))
        replica_lists[hub] = np.asarray(replica_ids, dtype=np.int64)

    if not mirror_origin:
        return ShadowNodePlan(graph=graph, original_num_nodes=graph.num_nodes)

    node_features = graph.node_features
    if node_features is not None:
        node_features = np.concatenate([node_features, np.stack(extra_features)], axis=0)
    labels = graph.labels
    if labels is not None:
        labels = np.concatenate([labels, np.stack(extra_labels)], axis=0)

    expanded = Graph(
        src=new_src,
        dst=graph.dst.copy(),
        node_features=node_features,
        edge_features=graph.edge_features,
        labels=labels,
        num_nodes=next_id,
    )
    replica_indptr, replica_ids = _build_replica_csr(next_id, replica_lists)
    return ShadowNodePlan(
        graph=expanded,
        original_num_nodes=graph.num_nodes,
        replica_indptr=replica_indptr,
        replica_ids=replica_ids,
        mirror_origin=mirror_origin,
    )
