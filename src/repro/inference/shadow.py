"""Shadow-nodes preprocessing.

A node whose out-degree exceeds the hub threshold is duplicated into mirrors;
each mirror keeps **all** the in-edges (senders deliver every in-message to
every mirror, which is the documented overhead of the strategy) and a slice of
the out-edges, so the sending load of the hub spreads over several workers.
Because every mirror sees exactly the in-messages of the original node, it
computes exactly the original node's state, and the union of the mirrors'
out-edges equals the original out-edge set — results are unchanged.

The transformation is applied to the graph before partitioning; the returned
plan carries the replica map the adaptors use to fan in-messages out to the
mirrors and to read final predictions only from original node ids.  The map
is stored as flat CSR arrays (``replica_indptr`` / ``replica_ids``) over the
expanded id space, so destination expansion is a pure repeat/gather pass with
no per-row Python.

**Position-stable slices.**  A hub's out-edges are assigned to mirror slots
by :func:`_mirror_slot` — a pure hash of the edge's endpoints — rather than
by their positions in ``src``/``dst``.  A fresh rewrite and an in-place patch
(:meth:`ShadowNodePlan.patch_edge_delta`) therefore give every edge the same
mirror, so an edge delta whose hub set and per-hub group counts survive the
threshold re-check (:meth:`ShadowNodePlan.mirror_groups_stable`) extends and
shrinks mirror slices without moving any surviving edge — the invariant that
lets the backends patch live partitions instead of re-planning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.layout import csr_gather
from repro.graph.graph import Graph
from repro.inference.delta import GraphDelta
from repro.inference.strategies import select_hubs

_EMPTY_IDS = np.empty(0, dtype=np.int64)


def _mirror_slot(src_ids: np.ndarray, dst_ids: np.ndarray,
                 num_groups: np.ndarray) -> np.ndarray:
    """Position-stable mirror slot of each hub out-edge.

    A splitmix64-style mix of the edge's endpoints, reduced modulo the hub's
    group count: slot 0 is the original node, slots 1.. its mirrors.  Being a
    pure per-edge function — never a function of where the edge sits in the
    arrays — is what makes a fresh :func:`apply_shadow_nodes` and an in-place
    :meth:`ShadowNodePlan.patch_edge_delta` agree byte-for-byte: appends land
    on the same mirror a rewrite would pick, and removals never move a
    surviving edge to a different mirror.
    """
    src_u, dst_u, groups_u = np.broadcast_arrays(
        np.asarray(src_ids, dtype=np.uint64),
        np.asarray(dst_ids, dtype=np.uint64),
        np.asarray(num_groups, dtype=np.uint64))
    x = dst_u + np.uint64(0x9E3779B97F4A7C15) * (src_u + np.uint64(1))
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    x = x ^ (x >> np.uint64(31))
    return (x % groups_u).astype(np.int64)


def _group_count(degree: np.ndarray, threshold: int, cap: int) -> np.ndarray:
    """``min(ceil(degree / threshold), max(cap, 1))`` in pure integers."""
    degree = np.asarray(degree, dtype=np.int64)
    return np.minimum(-(-degree // threshold), max(cap, 1))


@dataclass
class ShadowNodePlan:
    """Result of shadow-node preprocessing.

    ``replica_indptr``/``replica_ids`` form a CSR over the expanded graph's id
    space: ``replica_ids[replica_indptr[g]:replica_indptr[g + 1]]`` lists
    every node id the in-messages of ``g`` must be delivered to — ``g`` itself
    first, then its mirrors; non-replicated nodes map to just themselves.
    Both arrays are ``None`` when no node has mirrors.
    """

    graph: Graph
    original_num_nodes: int
    #: CSR offsets, ``int64 [expanded_num_nodes + 1]`` (None when no mirrors).
    replica_indptr: Optional[np.ndarray] = None
    #: CSR targets, ``int64`` flat (None when no mirrors).
    replica_ids: Optional[np.ndarray] = None
    #: mirror id -> original node id
    mirror_origin: Dict[int, int] = field(default_factory=dict)
    #: lazily derived dense working id -> original id table (:attr:`origin_of`).
    _origin_of: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def num_mirrors(self) -> int:
        return len(self.mirror_origin)

    @property
    def has_mirrors(self) -> bool:
        return self.replica_indptr is not None

    @property
    def replica_map(self) -> Dict[int, np.ndarray]:
        """Legacy dict view: original node id -> its replica id array.

        Only nodes that actually have mirrors appear, exactly as the old
        ``Dict[int, np.ndarray]`` storage behaved.  Materialised on demand
        from the CSR arrays (hub counts are tiny); the CSR arrays remain the
        source of truth on the routing path.
        """
        if self.replica_indptr is None:
            return {}
        counts = np.diff(self.replica_indptr)
        replicated = np.nonzero(counts > 1)[0]
        return {int(node): self.replica_ids[
                    int(self.replica_indptr[node]):int(self.replica_indptr[node + 1])]
                for node in replicated}

    @property
    def origin_of(self) -> np.ndarray:
        """Dense ``working id -> original id`` table (identity for non-mirrors)."""
        if self._origin_of is None:
            size = self.graph.num_nodes
            origin = np.arange(size, dtype=np.int64)
            for mirror, orig in self.mirror_origin.items():
                origin[int(mirror)] = int(orig)
            self._origin_of = origin
        return self._origin_of

    def replicas_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Replica closure of ``node_ids``: every id plus all its co-replicas.

        Mirrors map back to their origin first, then the origin's full replica
        group fans out through the CSR arrays, so the result is closed under
        "computes the same state as" — the invariant incremental frontiers
        maintain.  Returns sorted unique working-graph ids.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if self.replica_indptr is None or node_ids.size == 0:
            return np.unique(node_ids)
        origins = np.unique(self.origin_of[node_ids])
        return np.unique(csr_gather(self.replica_indptr, self.replica_ids, origins))

    def refresh_mirror_features(self, base_graph: Graph,
                                changed_ids: np.ndarray) -> np.ndarray:
        """Propagate updated feature rows of ``changed_ids`` into the rewrite.

        Mirror features are copies of their origin's row, taken at rewrite
        time; after a feature delta the copies (and the expanded graph's rows
        for the originals, which live in a *separate* concatenated buffer)
        must be refreshed.  Returns every working-graph id whose feature row
        was touched — the replica closure of ``changed_ids``.
        """
        replicas = self.replicas_of(changed_ids)
        if self.graph is not base_graph and self.graph.node_features is not None:
            self.graph.node_features[replicas] = \
                base_graph.node_features[self.origin_of[replicas]]
        return replicas

    # ------------------------------------------------------------------ #
    # in-place edge deltas
    # ------------------------------------------------------------------ #
    def mirror_groups_stable(self, out_degrees: np.ndarray, threshold: int,
                             num_workers: int,
                             max_mirrors: Optional[int] = None) -> bool:
        """Whether a fresh rewrite would reproduce this plan's mirror layout.

        ``out_degrees`` are the *base* graph's post-delta out-degrees.  The
        mirror allocation (which nodes get mirrors, how many, which ids) only
        depends on the hub set and each hub's group count, so an edge delta
        keeps the plan valid iff every original node's recomputed group count
        matches the replica CSR's current one — the hub set itself is checked
        by the caller against the strategy plan.
        """
        expected = np.ones(self.original_num_nodes, dtype=np.int64)
        hubs = select_hubs(out_degrees, threshold)
        if hubs.size:
            degrees = np.asarray(out_degrees, dtype=np.int64)[hubs]
            cap = max_mirrors if max_mirrors is not None else num_workers
            expected[hubs] = np.maximum(_group_count(degrees, threshold, cap), 1)
        if self.replica_indptr is None:
            return bool((expected == 1).all())
        current = np.diff(self.replica_indptr)[:self.original_num_nodes]
        return bool(np.array_equal(expected, current))

    def assign_sources(self, src_ids: np.ndarray,
                       dst_ids: np.ndarray) -> np.ndarray:
        """Working-graph source id of each ``(src, dst)`` edge under this plan.

        Non-replicated sources map to themselves; a replicated hub's edges go
        to ``replica_ids[indptr[hub] + slot]`` with the position-stable
        :func:`_mirror_slot` — exactly the id a fresh rewrite would assign.
        """
        src_ids = np.asarray(src_ids, dtype=np.int64)
        if self.replica_indptr is None or src_ids.size == 0:
            return src_ids.copy()
        counts = self.replica_indptr[src_ids + 1] - self.replica_indptr[src_ids]
        assigned = src_ids.copy()
        replicated = counts > 1
        if replicated.any():
            rows = np.nonzero(replicated)[0]
            slots = _mirror_slot(src_ids[rows],
                                 np.asarray(dst_ids, dtype=np.int64)[rows],
                                 counts[rows])
            assigned[rows] = self.replica_ids[
                self.replica_indptr[src_ids[rows]] + slots]
        return assigned

    def patch_edge_delta(self, base_graph: Graph,
                         delta: GraphDelta) -> np.ndarray:
        """Splice ``delta``'s edge changes into the expanded working graph.

        The caller has already landed ``delta`` on ``base_graph`` and verified
        the hub set and :meth:`mirror_groups_stable`.  The expanded graph
        keeps base edge *order* (only hub sources are rewritten to mirror
        ids), so the delta's removal positions apply one-to-one; appends get
        their position-stable mirror assignment.  The result is byte-identical
        to a fresh :func:`apply_shadow_nodes` over the post-delta base graph.
        Returns the working-graph source id assigned to each appended edge.
        """
        added = (delta.added_src is not None and delta.added_src.size > 0)
        assigned = (self.assign_sources(delta.added_src, delta.added_dst)
                    if added else _EMPTY_IDS)
        if self.graph is base_graph:
            # No mirrors: the working graph IS the base graph, and the delta
            # already landed there.
            return assigned
        src, dst = self.graph.src, self.graph.dst
        if delta.removed_edge_ids is not None and delta.removed_edge_ids.size:
            keep = np.ones(src.size, dtype=bool)
            keep[delta.removed_edge_ids] = False
            src, dst = src[keep], dst[keep]
        if added:
            src = np.concatenate([src, assigned])
            dst = np.concatenate([dst, delta.added_dst])
        self.graph.src, self.graph.dst = src, dst
        # The expanded graph shares the base edge-feature buffer; the base
        # application swapped it for a patched array, so re-point the share.
        self.graph.edge_features = base_graph.edge_features
        self.graph.invalidate_adjacency()
        return assigned

    # ------------------------------------------------------------------ #
    def expand_destinations(self, dst_ids: np.ndarray, payload: np.ndarray,
                            counts: Optional[np.ndarray] = None,
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Duplicate message rows whose destination has mirrors.

        Returns expanded ``(dst_ids, payload, counts)`` arrays: rows whose
        destination is not replicated come first (in their original order),
        followed by the replica fan-out of the replicated rows — one
        repeat/gather pass over the CSR arrays, no per-row Python.
        """
        dst_ids = np.asarray(dst_ids, dtype=np.int64)
        if counts is None:
            counts = np.ones(dst_ids.shape[0], dtype=np.int64)
        if self.replica_indptr is None:
            return dst_ids, payload, counts
        reps = self.replica_indptr[dst_ids + 1] - self.replica_indptr[dst_ids]
        needs_expand = reps > 1
        if not needs_expand.any():
            return dst_ids, payload, counts

        keep_rows = np.nonzero(~needs_expand)[0]
        expand_rows = np.nonzero(needs_expand)[0]
        row_index, expanded_dst = self._fan_out(dst_ids[expand_rows], reps[expand_rows])
        source_rows = expand_rows[row_index]
        return (np.concatenate([dst_ids[keep_rows], expanded_dst]),
                np.concatenate([payload[keep_rows], payload[source_rows]], axis=0),
                np.concatenate([counts[keep_rows], counts[source_rows]]))

    def expand_rows(self, dst_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """In-place destination expansion for record-oriented shuffles.

        Returns ``(row_index, expanded_dst)`` where every input row appears at
        its original position, replicated rows expanding inline (row i's
        replicas are contiguous where row i was) — the ordering the MapReduce
        scatter emits records in.  ``row_index[j]`` names the input row that
        produced ``expanded_dst[j]``.
        """
        dst_ids = np.asarray(dst_ids, dtype=np.int64)
        if self.replica_indptr is None or dst_ids.size == 0:
            return np.arange(dst_ids.size, dtype=np.int64), dst_ids
        reps = self.replica_indptr[dst_ids + 1] - self.replica_indptr[dst_ids]
        if not (reps > 1).any():
            return np.arange(dst_ids.size, dtype=np.int64), dst_ids
        return self._fan_out(dst_ids, reps)

    def _fan_out(self, dst_ids: np.ndarray,
                 reps: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Expand every ``dst_ids[i]`` to its ``reps[i]`` replica ids inline."""
        row_index = np.repeat(np.arange(dst_ids.size, dtype=np.int64), reps)
        return row_index, csr_gather(self.replica_indptr, self.replica_ids, dst_ids)


def _build_replica_csr(num_nodes: int,
                       replica_lists: Dict[int, np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten per-hub replica lists into dense CSR over all node ids."""
    counts = np.ones(num_nodes, dtype=np.int64)
    for node, replicas in replica_lists.items():
        counts[node] = replicas.size
    indptr = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
    flat = np.empty(int(indptr[-1]), dtype=np.int64)
    identity = np.nonzero(counts == 1)[0]
    flat[indptr[identity]] = identity
    for node, replicas in replica_lists.items():
        flat[int(indptr[node]):int(indptr[node + 1])] = replicas
    return indptr, flat


def apply_shadow_nodes(graph: Graph, threshold: int, num_workers: int,
                       max_mirrors: Optional[int] = None) -> ShadowNodePlan:
    """Split hub out-edges across mirror nodes.

    The number of mirrors for a hub with out-degree ``d`` is
    ``ceil(d / threshold)`` capped at ``num_workers`` (one mirror per worker is
    the most the strategy can ever use).  Mirror ids are allocated past the
    original id range; mirror features/labels are copies of the original's.

    Each out-edge's slot is the position-stable :func:`_mirror_slot` hash of
    its endpoints, so the slices stay balanced in expectation while an edge
    delta (:meth:`ShadowNodePlan.patch_edge_delta`) can extend or shrink them
    without reshuffling survivors.  Every slot's mirror is allocated even
    when the hash leaves it momentarily empty — mirror ids must be a function
    of the hub set and group counts alone, never of slot occupancy.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    # Same >= rule as build_strategy_plan, so tie-degree nodes are hubs for
    # every strategy.  A hub whose degree is exactly the threshold still gets
    # no mirrors (one out-edge group suffices), but it is *considered* here.
    hubs = select_hubs(graph.out_degrees(), threshold)
    if hubs.size == 0:
        return ShadowNodePlan(graph=graph, original_num_nodes=graph.num_nodes)

    cap = max_mirrors if max_mirrors is not None else num_workers
    new_src = graph.src.copy()
    replica_lists: Dict[int, np.ndarray] = {}
    mirror_origin: Dict[int, int] = {}
    extra_features: List[np.ndarray] = []
    extra_labels: List[np.ndarray] = []
    next_id = graph.num_nodes

    for hub in hubs:
        hub = int(hub)
        edge_positions = graph.out_edge_ids(hub)
        degree = edge_positions.size
        num_groups = int(_group_count(degree, threshold, cap))
        if num_groups <= 1:
            continue
        slots = _mirror_slot(np.full(degree, hub, dtype=np.int64),
                             graph.dst[edge_positions], num_groups)
        replica_ids = [hub]
        # Slot 0 stays with the original node; slots 1.. go to fresh mirrors.
        for slot in range(1, num_groups):
            mirror_id = next_id
            next_id += 1
            new_src[edge_positions[slots == slot]] = mirror_id
            replica_ids.append(mirror_id)
            mirror_origin[mirror_id] = hub
            if graph.node_features is not None:
                extra_features.append(graph.node_features[hub])
            if graph.labels is not None:
                extra_labels.append(np.asarray(graph.labels[hub]))
        replica_lists[hub] = np.asarray(replica_ids, dtype=np.int64)

    if not mirror_origin:
        return ShadowNodePlan(graph=graph, original_num_nodes=graph.num_nodes)

    node_features = graph.node_features
    if node_features is not None:
        node_features = np.concatenate([node_features, np.stack(extra_features)], axis=0)
    labels = graph.labels
    if labels is not None:
        labels = np.concatenate([labels, np.stack(extra_labels)], axis=0)

    expanded = Graph(
        src=new_src,
        dst=graph.dst.copy(),
        node_features=node_features,
        edge_features=graph.edge_features,
        labels=labels,
        num_nodes=next_id,
    )
    replica_indptr, replica_ids = _build_replica_csr(next_id, replica_lists)
    return ShadowNodePlan(
        graph=expanded,
        original_num_nodes=graph.num_nodes,
        replica_indptr=replica_indptr,
        replica_ids=replica_ids,
        mirror_origin=mirror_origin,
    )
