"""Backend plugin registry and the execution-plan abstraction.

A *backend* is an interchangeable execution substrate for full-graph GNN
inference under the shared GAS programming model.  Each backend implements a
small protocol:

* ``name`` — the registry key users put in :class:`InferenceConfig.backend`;
* ``plan(model, graph, config)`` — one-time preparation: strategy resolution,
  shadow-node graph rewrite, partition layout / input-record ingest — anything
  that can be computed once and reused across repeated executions;
* ``execute(plan, metrics)`` — one inference run over a previously built
  :class:`ExecutionPlan`, recording per-instance counters into ``metrics``.

Backends self-register through the :func:`register_backend` decorator; the
rest of the system looks them up by name via :func:`get_backend` and never
hard-codes a backend list.  Third-party code can register additional backends
the same way (the decorator is the whole plugin API).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Protocol, Set, Tuple, Type, runtime_checkable

import numpy as np

from repro.cluster.layout import ClusterLayout
from repro.cluster.metrics import MetricsCollector
from repro.cluster.resources import ClusterSpec
from repro.gnn.model import GNNModel
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner
from repro.inference.config import InferenceConfig
from repro.inference.shadow import ShadowNodePlan, apply_shadow_nodes
from repro.inference.strategies import (
    StrategyPlan,
    build_strategy_plan,
    hub_threshold,
    select_hubs,
)


@dataclass
class ExecutionPlan:
    """Everything a backend prepares once and reuses across executions.

    The plan is the cacheable half of an inference run: the resolved strategy
    switches, the (optional) shadow-node rewritten graph, and any
    backend-private artefacts in ``state`` (a partitioned Pregel engine, the
    MapReduce input records, a k-hop pipeline).  One plan supports
    arbitrarily many ``execute`` calls: execution never changes what a plan
    *means*, though it may refresh backend-private caches inside ``state``
    (e.g. the per-superstep node states incremental inference splices into),
    and a backend's ``apply_delta`` hook patches the plan in place by design.
    """

    backend: str
    model: GNNModel
    graph: Graph
    config: InferenceConfig
    strategy_plan: StrategyPlan
    shadow_plan: Optional[ShadowNodePlan] = None
    #: dense global→owner / global→local routing tables over the working
    #: graph, computed once at plan time and reused by every execution.
    layout: Optional[ClusterLayout] = None
    num_supersteps: int = 0
    #: backend-private precomputed artefacts (engines, records, pipelines).
    state: Dict[str, Any] = field(default_factory=dict)
    #: content fingerprint of ``graph`` at plan (or last delta) time — see
    #: :func:`repro.inference.delta.graph_fingerprint`.  The session checks it
    #: on every ``infer()`` and raises ``StalePlanError`` on out-of-band
    #: mutation instead of serving stale scores.
    fingerprint: Optional[Tuple[int, int, int]] = None
    #: set by the session the first time a delta lands on (or is deferred
    #: against) this plan.  Backends gate their incremental state caches on it
    #: (``config.incremental_state_cache and plan.delta_seen``), so sessions
    #: that never see a delta keep pre-delta peak memory; the price is that
    #: the first post-delta incremental request falls back to one full run,
    #: which primes the cache.
    delta_seen: bool = False

    @property
    def working_graph(self) -> Graph:
        """The graph the backend actually executes over (post shadow rewrite)."""
        return self.shadow_plan.graph if self.shadow_plan is not None else self.graph

    @property
    def original_num_nodes(self) -> int:
        return (self.shadow_plan.original_num_nodes if self.shadow_plan is not None
                else self.graph.num_nodes)

    def describe(self) -> str:
        """One-line human-readable summary used by ``RunReport``."""
        parts = [
            f"backend={self.backend}",
            f"layers={self.model.num_layers}",
            f"workers={self.config.num_workers}",
            f"strategies={self.config.strategies.describe()}",
            f"threshold={self.strategy_plan.threshold}",
            f"hubs={int(self.strategy_plan.out_degree_hubs.size)}",
        ]
        if self.shadow_plan is not None:
            parts.append(f"mirrors={self.shadow_plan.num_mirrors}")
        return ", ".join(parts)


@runtime_checkable
class Backend(Protocol):
    """The protocol every registered backend implements.

    Beyond the required methods, a backend may implement two *optional* delta
    hooks (the session discovers them via ``getattr``, so plain backends like
    ``mapreduce``/``khop`` keep working with full-recompute semantics):

    * ``apply_delta(plan, delta) -> DeltaOutcome`` — patch the cached plan in
      place for a :class:`~repro.inference.delta.GraphDelta`; return
      ``in_place=False`` when the delta invalidates the plan (the session
      then re-prepares from the already-updated graph);
    * ``execute_incremental(plan, metrics, feature_dirty, topo_dirty)`` —
      run one inference restricted to the dirty k-hop region, or return
      ``None`` to make the session fall back to a full ``execute``.

    ``pregel`` implements both hooks (bit-identical incremental runs over a
    warm partition cache, feature *and* hub-preserving edge deltas — under
    shadow nodes included, via the position-stable mirror assignment);
    ``mapreduce`` implements both too — feature deltas patch its cached input
    records row-wise, edge deltas splice the records' adjacency payloads in
    place, and incremental runs replay only the dirty region's dependency
    closure, splicing into cached scores (tolerance-identical, see
    :mod:`repro.inference.mapreduce_adaptor`); ``khop`` has neither and
    always takes the full-recompute default.
    """

    name: str

    def default_cluster(self, num_workers: int) -> ClusterSpec:
        """The cluster flavour this backend simulates by default."""
        ...

    def plan(self, model: GNNModel, graph: Graph,
             config: InferenceConfig) -> ExecutionPlan:
        ...

    def execute(self, plan: ExecutionPlan,
                metrics: MetricsCollector) -> Dict[str, np.ndarray]:
        ...


class UnknownBackendError(ValueError):
    """Raised when a backend name is not in the registry."""


_REGISTRY: Dict[str, Backend] = {}


def register_backend(name: str) -> "Callable[[Type[Any]], Type[Any]]":
    """Class decorator registering a :class:`Backend` implementation.

    The decorated class is instantiated once (backends are stateless — all
    per-run state lives in the :class:`ExecutionPlan`) and becomes reachable
    through :func:`get_backend`.  Registering a name twice is an error so a
    plugin cannot silently replace a built-in.
    """

    def decorator(cls: Type[Any]) -> Type[Any]:
        if name in _REGISTRY:
            raise ValueError(
                f"backend {name!r} is already registered "
                f"(by {type(_REGISTRY[name]).__name__}); "
                f"pick a different name or unregister_backend({name!r}) first")
        cls.name = name
        _REGISTRY[name] = cls()
        return cls

    return decorator


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (mainly for tests and plugins)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> Backend:
    """Look up a registered backend by name, with a helpful error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(repr(n) for n in sorted(_REGISTRY)) or "<none>"
        raise UnknownBackendError(
            f"unknown inference backend {name!r}; registered backends: {known}"
        ) from None


def available_backends() -> Set[str]:
    """The names of all currently registered backends."""
    return set(_REGISTRY)


# --------------------------------------------------------------------------- #
# Shared GAS planning used by the full-graph backends.
# --------------------------------------------------------------------------- #
def merge_hub_mirrors(strategy_plan: StrategyPlan,
                      shadow_plan: Optional[ShadowNodePlan]) -> None:
    """Give shadow mirrors of out-degree hubs the hub treatment (SN+BC combo).

    The merged ``out_degree_hubs`` array is always deduplicated, sorted and
    ``int64`` — including when either side is empty, where a plain
    ``np.concatenate`` over untyped empty arrays would degrade to
    ``object``/``float64`` dtype.
    """
    hubs = np.asarray(strategy_plan.out_degree_hubs, dtype=np.int64).reshape(-1)
    if shadow_plan is not None and shadow_plan.mirror_origin:
        hub_set = set(int(h) for h in hubs)
        mirrors = np.asarray(
            [int(mid) for mid, origin in shadow_plan.mirror_origin.items()
             if int(origin) in hub_set],
            dtype=np.int64)
        hubs = np.concatenate([hubs, mirrors])
    strategy_plan.out_degree_hubs = np.unique(hubs)


def check_edge_delta_stability(plan: ExecutionPlan) -> Tuple[bool, str, int]:
    """Re-check the hub contract after an edge delta landed on ``plan.graph``.

    Returns ``(stable, reason, new_threshold)``.  Stable means an in-place
    edge patch is provably equivalent to a re-plan: the recomputed hub
    threshold selects the same base-graph hub set (under shadow nodes the
    strategy plan's ``out_degree_hubs`` also carries mirror ids from
    :func:`merge_hub_mirrors`, so only ids below the original range compare),
    and every hub keeps its mirror-group count
    (:meth:`~repro.inference.shadow.ShadowNodePlan.mirror_groups_stable`) —
    the two inputs the mirror allocation is a function of.  On success the
    caller records ``new_threshold`` on the strategy plan.
    """
    graph, config = plan.graph, plan.config
    new_threshold = hub_threshold(graph.num_edges, config.num_workers,
                                  config.strategies.hub_lambda,
                                  config.strategies.hub_threshold_override)
    degrees = graph.out_degrees()
    new_hubs = select_hubs(degrees, new_threshold)
    old_hubs = plan.strategy_plan.out_degree_hubs
    shadow = plan.shadow_plan
    if shadow is not None:
        old_hubs = old_hubs[old_hubs < shadow.original_num_nodes]
    if not np.array_equal(new_hubs, old_hubs):
        return False, "the out-degree hub set changed", new_threshold
    if shadow is not None and not shadow.mirror_groups_stable(
            degrees, new_threshold, config.num_workers):
        return False, "a hub's mirror-group count changed", new_threshold
    return True, "", new_threshold


def plan_gas_execution(backend_name: str, model: GNNModel, graph: Graph,
                       config: InferenceConfig) -> ExecutionPlan:
    """The planning steps shared by every full-graph (GAS) backend.

    Resolves the per-layer strategy plan, applies the shadow-node graph
    rewrite when enabled, merges hub mirrors into the hub set, and builds the
    :class:`~repro.cluster.layout.ClusterLayout` routing tables over the
    working (possibly shadow-expanded) graph — once, so repeated
    ``infer_many()`` executions never recompute them.
    """
    has_edge_features = graph.edge_features is not None
    strategy_plan = build_strategy_plan(model, graph, config.num_workers,
                                        config.strategies, has_edge_features)
    shadow_plan: Optional[ShadowNodePlan] = None
    if config.strategies.shadow_nodes:
        shadow_plan = apply_shadow_nodes(graph, strategy_plan.threshold,
                                         config.num_workers)
        merge_hub_mirrors(strategy_plan, shadow_plan)
    working_graph = shadow_plan.graph if shadow_plan is not None else graph
    layout = ClusterLayout.build(working_graph.num_nodes,
                                 HashPartitioner(config.num_workers))
    return ExecutionPlan(
        backend=backend_name,
        model=model,
        graph=graph,
        config=config,
        strategy_plan=strategy_plan,
        shadow_plan=shadow_plan,
        layout=layout,
    )
