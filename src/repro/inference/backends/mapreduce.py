"""The MapReduce batch-processing backend as a registry plugin.

Planning ingests the (possibly shadow-expanded) node table into input records
once; every execution replays the cached records through a fresh engine, so
repeated ``infer()`` calls skip the per-node table scan.

This backend implements the optional delta hooks of the
:class:`~repro.inference.backends.base.Backend` protocol: ``apply_delta``
patches the cached input records in place — feature rows row-wise, edge
deltas by rebuilding only the touched records' adjacency payloads
(:func:`~repro.inference.mapreduce_adaptor.patch_record_adjacency`, using
the position-stable shadow mirror assignment when mirrors exist) — and
``execute_incremental`` replays only the delta's dependency closure,
splicing the recomputed scores into the matrix cached by the last full run
(see :mod:`repro.inference.mapreduce_adaptor` for the closure construction
and the tolerance-identity caveat).  Edge deltas re-plan only when the hub
set or a hub's mirror-group count changes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cluster.executor import Executor, build_executor
from repro.cluster.metrics import MetricsCollector
from repro.cluster.resources import ClusterSpec
from repro.gnn.model import GNNModel
from repro.graph.graph import Graph
from repro.inference.config import InferenceConfig
from repro.inference.delta import (
    DeltaOutcome,
    GraphDelta,
    apply_delta_to_graph,
    validate_delta_against_graph,
)
from repro.inference.backends.base import (
    ExecutionPlan,
    check_edge_delta_stability,
    plan_gas_execution,
    register_backend,
)
from repro.inference.mapreduce_adaptor import (
    build_input_records,
    patch_input_records,
    patch_record_adjacency,
    run_mapreduce_inference,
    run_mapreduce_inference_incremental,
)

_EMPTY = np.empty(0, dtype=np.int64)


@register_backend("mapreduce")
class MapReduceBackend:
    """Storage-resident batch backend (one map/reduce round per layer)."""

    def default_cluster(self, num_workers: int) -> ClusterSpec:
        return ClusterSpec.mapreduce_default(num_workers)

    def plan(self, model: GNNModel, graph: Graph,
             config: InferenceConfig) -> ExecutionPlan:
        plan = plan_gas_execution(self.name, model, graph, config)
        plan.num_supersteps = model.num_layers
        plan.state["input_records"] = build_input_records(model, plan.working_graph)
        return plan

    def _plan_executor(self, plan: ExecutionPlan) -> Executor:
        """The plan-cached executor every round of every run reuses.

        Built lazily at first execution (a plan that is never executed never
        spawns workers) and kept in ``plan.state`` so the ``"process"``
        substrate pays its worker start-up once per prepared session, not
        once per round.
        """
        executor = plan.state.get("executor")
        if not isinstance(executor, Executor) or executor.name != plan.config.executor:
            executor = build_executor(plan.config.executor, plan.config.num_workers)
            plan.state["executor"] = executor
        return executor

    def execute(self, plan: ExecutionPlan,
                metrics: MetricsCollector) -> Dict[str, np.ndarray]:
        outputs = run_mapreduce_inference(plan.model, plan.graph, plan.config,
                                          plan.strategy_plan, plan.shadow_plan, metrics,
                                          input_records=plan.state.get("input_records"),
                                          layout=plan.layout,
                                          executor=self._plan_executor(plan))
        # Lazy incremental cache: the score matrix only stays resident once
        # the session has seen a delta (mirrors the pregel state cache — the
        # first post-delta incremental request falls back to this full run,
        # which primes it).
        if plan.config.incremental_state_cache and plan.delta_seen:
            plan.state["scores"] = outputs["scores"].copy()
        else:
            plan.state.pop("scores", None)
        return outputs

    # ------------------------------------------------------------------ #
    # optional delta hooks
    # ------------------------------------------------------------------ #
    def apply_delta(self, plan: ExecutionPlan, delta: GraphDelta) -> DeltaOutcome:
        """Patch the cached input records in place; re-plan only on hub churn.

        Feature rows land on the base graph, propagate into shadow-mirror
        copies through the replica CSR, and are scattered row-wise into the
        id-indexed record cache.  Edge deltas splice into the same cache:
        the working-graph sources whose out-edge set changes (removal
        survivors plus the mirror-assigned sources of appends) get their
        record's adjacency payload rebuilt from the patched working graph —
        byte-identical to a fresh record scan, because the graph's adjacency
        index orders edges per source stably.  Only a hub-set or
        mirror-group-count change (:func:`check_edge_delta_stability`) lands
        the delta on the graph and makes the session re-plan from it.
        """
        graph = plan.graph
        removed_working_src = added_working_src = _EMPTY
        if delta.has_edge_changes:
            # Capture the removed edges' *working* sources (mirror ids under
            # shadow) while the positions are still valid — the working graph
            # keeps base edge order, so base positions index it 1:1.  The
            # delta is validated first so a malformed one raises cleanly
            # before any read or write.
            validate_delta_against_graph(graph, delta)
            if delta.removed_edge_ids is not None and delta.removed_edge_ids.size:
                removed_working_src = plan.working_graph.src[
                    delta.removed_edge_ids].copy()

        topo_dirty = apply_delta_to_graph(graph, delta)

        if delta.has_edge_changes:
            stable, why, new_threshold = check_edge_delta_stability(plan)
            if not stable:
                return DeltaOutcome(in_place=False, reason=why)
            plan.strategy_plan.threshold = new_threshold
            shadow_plan = plan.shadow_plan
            if shadow_plan is not None:
                added_working_src = shadow_plan.patch_edge_delta(graph, delta)
            elif delta.added_src is not None:
                added_working_src = delta.added_src
            records = plan.state.get("input_records")
            touched = np.concatenate([removed_working_src, added_working_src])
            if records is not None and touched.size:
                patch_record_adjacency(records, plan.working_graph, touched)

        feature_dirty = _EMPTY
        if delta.has_feature_changes:
            shadow_plan = plan.shadow_plan
            if shadow_plan is not None and shadow_plan.has_mirrors:
                feature_dirty = shadow_plan.refresh_mirror_features(graph, delta.node_ids)
            else:
                feature_dirty = np.unique(delta.node_ids)
            records = plan.state.get("input_records")
            if records is not None and feature_dirty.size:
                patch_input_records(records, plan.working_graph, feature_dirty)
        return DeltaOutcome(in_place=True, feature_dirty=feature_dirty,
                            topo_dirty=topo_dirty)

    def execute_incremental(self, plan: ExecutionPlan, metrics: MetricsCollector,
                            feature_dirty: np.ndarray,
                            topo_dirty: np.ndarray) -> Optional[Dict[str, np.ndarray]]:
        """Replay the dirty closure against cached scores, or None to go full.

        Requires a warm score cache (one full run after the first delta);
        anything else falls back to ``execute``.  Topology-dirty destinations
        seed the closure alongside feature-dirty nodes — the cached rows
        outside the delta's reach stay exact, so splicing remains valid after
        an in-place edge delta.
        """
        if not plan.config.incremental_state_cache:
            return None
        cached_scores = plan.state.get("scores")
        input_records = plan.state.get("input_records")
        if cached_scores is None or input_records is None:
            return None
        outputs = run_mapreduce_inference_incremental(
            plan.model, plan.graph, plan.config, plan.strategy_plan,
            plan.shadow_plan, metrics, input_records, cached_scores,
            feature_dirty, topo_dirty=topo_dirty, layout=plan.layout,
            executor=self._plan_executor(plan))
        plan.state["scores"] = outputs["scores"].copy()
        return outputs
