"""The MapReduce batch-processing backend as a registry plugin.

Planning ingests the (possibly shadow-expanded) node table into input records
once; every execution replays the cached records through a fresh engine, so
repeated ``infer()`` calls skip the per-node table scan.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.cluster.metrics import MetricsCollector
from repro.cluster.resources import ClusterSpec
from repro.gnn.model import GNNModel
from repro.graph.graph import Graph
from repro.inference.config import InferenceConfig
from repro.inference.backends.base import (
    ExecutionPlan,
    plan_gas_execution,
    register_backend,
)
from repro.inference.mapreduce_adaptor import build_input_records, run_mapreduce_inference


@register_backend("mapreduce")
class MapReduceBackend:
    """Storage-resident batch backend (one map/reduce round per layer)."""

    def default_cluster(self, num_workers: int) -> ClusterSpec:
        return ClusterSpec.mapreduce_default(num_workers)

    def plan(self, model: GNNModel, graph: Graph,
             config: InferenceConfig) -> ExecutionPlan:
        plan = plan_gas_execution(self.name, model, graph, config)
        plan.num_supersteps = model.num_layers
        plan.state["input_records"] = build_input_records(model, plan.working_graph)
        return plan

    def execute(self, plan: ExecutionPlan,
                metrics: MetricsCollector) -> Dict[str, np.ndarray]:
        return run_mapreduce_inference(plan.model, plan.graph, plan.config,
                                       plan.strategy_plan, plan.shadow_plan, metrics,
                                       input_records=plan.state.get("input_records"),
                                       layout=plan.layout)
