"""The MapReduce batch-processing backend as a registry plugin.

Planning ingests the (possibly shadow-expanded) node table into input records
once; every execution replays the cached records through a fresh engine, so
repeated ``infer()`` calls skip the per-node table scan.

This backend implements the optional delta hooks of the
:class:`~repro.inference.backends.base.Backend` protocol for **feature
deltas**: ``apply_delta`` patches the cached input records row-wise (no
re-plan, no per-node table rescan), and ``execute_incremental`` replays only
the delta's dependency closure, splicing the recomputed scores into the
matrix cached by the last full run (see
:mod:`repro.inference.mapreduce_adaptor` for the closure construction and the
tolerance-identity caveat).  Edge deltas re-plan: the records' adjacency
payloads and the shadow rewrite both depend on edge positions.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cluster.executor import Executor, build_executor
from repro.cluster.metrics import MetricsCollector
from repro.cluster.resources import ClusterSpec
from repro.gnn.model import GNNModel
from repro.graph.graph import Graph
from repro.inference.config import InferenceConfig
from repro.inference.delta import DeltaOutcome, GraphDelta, apply_delta_to_graph
from repro.inference.backends.base import (
    ExecutionPlan,
    plan_gas_execution,
    register_backend,
)
from repro.inference.mapreduce_adaptor import (
    build_input_records,
    patch_input_records,
    run_mapreduce_inference,
    run_mapreduce_inference_incremental,
)


@register_backend("mapreduce")
class MapReduceBackend:
    """Storage-resident batch backend (one map/reduce round per layer)."""

    def default_cluster(self, num_workers: int) -> ClusterSpec:
        return ClusterSpec.mapreduce_default(num_workers)

    def plan(self, model: GNNModel, graph: Graph,
             config: InferenceConfig) -> ExecutionPlan:
        plan = plan_gas_execution(self.name, model, graph, config)
        plan.num_supersteps = model.num_layers
        plan.state["input_records"] = build_input_records(model, plan.working_graph)
        return plan

    def _plan_executor(self, plan: ExecutionPlan) -> Executor:
        """The plan-cached executor every round of every run reuses.

        Built lazily at first execution (a plan that is never executed never
        spawns workers) and kept in ``plan.state`` so the ``"process"``
        substrate pays its worker start-up once per prepared session, not
        once per round.
        """
        executor = plan.state.get("executor")
        if not isinstance(executor, Executor) or executor.name != plan.config.executor:
            executor = build_executor(plan.config.executor, plan.config.num_workers)
            plan.state["executor"] = executor
        return executor

    def execute(self, plan: ExecutionPlan,
                metrics: MetricsCollector) -> Dict[str, np.ndarray]:
        outputs = run_mapreduce_inference(plan.model, plan.graph, plan.config,
                                          plan.strategy_plan, plan.shadow_plan, metrics,
                                          input_records=plan.state.get("input_records"),
                                          layout=plan.layout,
                                          executor=self._plan_executor(plan))
        # Lazy incremental cache: the score matrix only stays resident once
        # the session has seen a delta (mirrors the pregel state cache — the
        # first post-delta incremental request falls back to this full run,
        # which primes it).
        if plan.config.incremental_state_cache and plan.delta_seen:
            plan.state["scores"] = outputs["scores"].copy()
        else:
            plan.state.pop("scores", None)
        return outputs

    # ------------------------------------------------------------------ #
    # optional delta hooks
    # ------------------------------------------------------------------ #
    def apply_delta(self, plan: ExecutionPlan, delta: GraphDelta) -> DeltaOutcome:
        """Patch the cached input records for feature deltas; else re-plan.

        Feature rows land on the base graph, propagate into shadow-mirror
        copies through the replica CSR, and are scattered row-wise into the
        id-indexed record cache — the full-recompute penalty the record scan
        used to impose is gone.  Edge deltas always invalidate: each record's
        adjacency payload (and, under shadow nodes, the mirror slicing)
        depends on edge positions, so the delta lands on the graph and the
        session re-plans from it.
        """
        graph = plan.graph
        if delta.has_edge_changes:
            apply_delta_to_graph(graph, delta)
            return DeltaOutcome(
                in_place=False,
                reason="mapreduce patches feature deltas in place; edge deltas "
                       "change the records' adjacency payloads and re-plan")

        topo_dirty = apply_delta_to_graph(graph, delta)
        shadow_plan = plan.shadow_plan
        if shadow_plan is not None and shadow_plan.has_mirrors:
            feature_dirty = shadow_plan.refresh_mirror_features(graph, delta.node_ids)
        else:
            feature_dirty = np.unique(delta.node_ids)
        records = plan.state.get("input_records")
        if records is not None and feature_dirty.size:
            patch_input_records(records, plan.working_graph, feature_dirty)
        return DeltaOutcome(in_place=True, feature_dirty=feature_dirty,
                            topo_dirty=topo_dirty)

    def execute_incremental(self, plan: ExecutionPlan, metrics: MetricsCollector,
                            feature_dirty: np.ndarray,
                            topo_dirty: np.ndarray) -> Optional[Dict[str, np.ndarray]]:
        """Replay the dirty closure against cached scores, or None to go full.

        Requires a warm score cache (one full run after the first delta) and a
        feature-only dirty set; anything else falls back to ``execute``.
        """
        if topo_dirty.size or not plan.config.incremental_state_cache:
            return None
        cached_scores = plan.state.get("scores")
        input_records = plan.state.get("input_records")
        if cached_scores is None or input_records is None:
            return None
        outputs = run_mapreduce_inference_incremental(
            plan.model, plan.graph, plan.config, plan.strategy_plan,
            plan.shadow_plan, metrics, input_records, cached_scores,
            feature_dirty, layout=plan.layout,
            executor=self._plan_executor(plan))
        plan.state["scores"] = outputs["scores"].copy()
        return outputs
