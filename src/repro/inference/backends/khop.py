"""The traditional k-hop mini-batch pipeline as a first-class backend.

Wrapping :class:`~repro.baselines.khop_pipeline.TraditionalPipeline` in the
registry lets every experiment and table compare all three execution
substrates through one entry point (``InferenceConfig(backend="khop")``)
instead of a separate baseline code path.

The backend always runs with **full** neighbourhoods (no fanout sampling), so
its scores are deterministic and match the full-graph backends exactly — the
redundant-computation cost it pays relative to them is precisely what the
paper's efficiency tables measure.  Hub-node strategies do not apply here; a
strategy plan is still resolved so reports stay uniform across backends.

The ``InferenceConfig.executor`` knob is accepted but does not change how
this backend runs: its "workers" are simulated round-robin batch waves with
no partitioned state to shard, so there is no per-partition compute for a
process executor to host.  Scores are therefore trivially identical under
both executors (the conformance suite checks this along with the sharded
backends).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.khop_pipeline import TraditionalConfig, TraditionalPipeline
from repro.cluster.metrics import MetricsCollector
from repro.cluster.resources import ClusterSpec
from repro.gnn.model import GNNModel
from repro.graph.graph import Graph
from repro.inference.config import InferenceConfig
from repro.inference.backends.base import ExecutionPlan, register_backend
from repro.inference.strategies import build_strategy_plan


@register_backend("khop")
class KHopBackend:
    """Mini-batch k-hop neighbourhood inference (the PyG/DGL-style baseline)."""

    def default_cluster(self, num_workers: int) -> ClusterSpec:
        return ClusterSpec.traditional_default(num_workers)

    def plan(self, model: GNNModel, graph: Graph,
             config: InferenceConfig) -> ExecutionPlan:
        strategy_plan = build_strategy_plan(model, graph, config.num_workers,
                                            config.strategies,
                                            graph.edge_features is not None)
        plan = ExecutionPlan(backend=self.name, model=model, graph=graph,
                             config=config, strategy_plan=strategy_plan)
        plan.state["pipeline"] = TraditionalPipeline(model, TraditionalConfig(
            num_workers=config.num_workers, cluster=config.cluster))
        return plan

    def execute(self, plan: ExecutionPlan,
                metrics: MetricsCollector) -> Dict[str, np.ndarray]:
        pipeline: TraditionalPipeline = plan.state["pipeline"]
        # The session prices the shared metrics itself; skip the pipeline's
        # internal cost roll-up.
        outcome = pipeline.run(plan.graph, compute_scores=True, metrics=metrics,
                               compute_cost=False)
        return {"scores": outcome.scores}
