"""The Pregel-like graph-processing backend as a registry plugin.

Planning partitions the (possibly shadow-expanded) graph once into a
:class:`~repro.pregel.engine.PregelEngine`; every execution reuses the cached
partitions and only swaps in a fresh metrics collector, so repeated
``infer()`` calls skip the hash-partitioning pass entirely.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.cluster.metrics import MetricsCollector
from repro.cluster.resources import ClusterSpec
from repro.gnn.model import GNNModel
from repro.graph.graph import Graph
from repro.inference.config import InferenceConfig
from repro.inference.backends.base import (
    ExecutionPlan,
    plan_gas_execution,
    register_backend,
)
from repro.inference.pregel_adaptor import build_pregel_engine, run_pregel_inference


@register_backend("pregel")
class PregelBackend:
    """Memory-resident graph-processing backend (one superstep per layer)."""

    def default_cluster(self, num_workers: int) -> ClusterSpec:
        return ClusterSpec.pregel_default(num_workers)

    def plan(self, model: GNNModel, graph: Graph,
             config: InferenceConfig) -> ExecutionPlan:
        plan = plan_gas_execution(self.name, model, graph, config)
        plan.num_supersteps = model.num_layers + 1
        plan.state["engine"] = build_pregel_engine(plan.working_graph, config,
                                                   layout=plan.layout)
        return plan

    def execute(self, plan: ExecutionPlan,
                metrics: MetricsCollector) -> Dict[str, np.ndarray]:
        return run_pregel_inference(plan.model, plan.graph, plan.config,
                                    plan.strategy_plan, plan.shadow_plan, metrics,
                                    engine=plan.state.get("engine"))
