"""The Pregel-like graph-processing backend as a registry plugin.

Planning partitions the (possibly shadow-expanded) graph once into a
:class:`~repro.pregel.engine.PregelEngine`; every execution reuses the cached
partitions and only swaps in a fresh metrics collector, so repeated
``infer()`` calls skip the hash-partitioning pass entirely.

This backend also implements the optional delta hooks of the
:class:`~repro.inference.backends.base.Backend` protocol: ``apply_delta``
patches the cached plan in place for feature refreshes (including shadow
mirror copies) and hub-preserving edge deltas, and ``execute_incremental``
reruns only the dirty k-hop region against the warm engine — the serving
path for graphs that change between recurring inference jobs.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cluster.metrics import MetricsCollector
from repro.cluster.resources import ClusterSpec
from repro.gnn.model import GNNModel
from repro.graph.graph import Graph
from repro.inference.config import InferenceConfig
from repro.inference.delta import DeltaOutcome, GraphDelta, apply_delta_to_graph
from repro.inference.backends.base import (
    ExecutionPlan,
    check_edge_delta_stability,
    plan_gas_execution,
    register_backend,
)
from repro.inference.pregel_adaptor import (
    build_pregel_engine,
    run_pregel_inference,
    run_pregel_inference_incremental,
)

_EMPTY = np.empty(0, dtype=np.int64)


@register_backend("pregel")
class PregelBackend:
    """Memory-resident graph-processing backend (one superstep per layer)."""

    def default_cluster(self, num_workers: int) -> ClusterSpec:
        return ClusterSpec.pregel_default(num_workers)

    def plan(self, model: GNNModel, graph: Graph,
             config: InferenceConfig) -> ExecutionPlan:
        plan = plan_gas_execution(self.name, model, graph, config)
        plan.num_supersteps = model.num_layers + 1
        plan.state["engine"] = build_pregel_engine(plan.working_graph, config,
                                                   layout=plan.layout)
        return plan

    def execute(self, plan: ExecutionPlan,
                metrics: MetricsCollector) -> Dict[str, np.ndarray]:
        # The per-superstep state cache is lazy: it costs ~(layers+1)x the
        # node-state memory, so it only arms once the session has actually
        # seen a delta (plan.delta_seen) — sessions serving an immutable
        # graph keep pre-delta peak memory.  The first post-delta incremental
        # request then falls back to one full run, which primes the cache.
        cache = plan.config.incremental_state_cache and plan.delta_seen
        return run_pregel_inference(plan.model, plan.graph, plan.config,
                                    plan.strategy_plan, plan.shadow_plan, metrics,
                                    engine=plan.state.get("engine"),
                                    cache_states=cache)

    # ------------------------------------------------------------------ #
    # optional delta hooks
    # ------------------------------------------------------------------ #
    def apply_delta(self, plan: ExecutionPlan, delta: GraphDelta) -> DeltaOutcome:
        """Patch the cached plan for ``delta``; report what stays valid.

        Feature rows are always applied in place: the base graph, the
        shadow-expanded working graph (originals *and* mirror copies, via the
        replica CSR) and every engine partition's feature slice are updated
        through one :class:`~repro.cluster.layout.ClusterLayout` translate +
        grouped scatter.  Edge deltas are applied in place only when that is
        provably bit-stable: the hub set and every hub's mirror-group count
        must survive the threshold re-check
        (:func:`~repro.inference.backends.base.check_edge_delta_stability`),
        and every layer's ``apply_edge`` must be the identity (a projecting
        apply_edge runs at edge-table shape, which the delta changes).  Under
        shadow nodes the position-stable mirror assignment
        (:meth:`~repro.inference.shadow.ShadowNodePlan.patch_edge_delta`)
        splices the delta into the expanded working graph exactly as a fresh
        rewrite would place it.  Anything else returns ``in_place=False``
        after landing the delta on the base graph, and the session re-plans
        from it.
        """
        graph = plan.graph
        has_edge_features = graph.edge_features is not None

        in_place, reason = True, ""
        if delta.has_edge_changes:
            if any(not layer.apply_edge_is_identity(has_edge_features)
                   for layer in plan.model.layers):
                in_place, reason = False, ("edge-count changes are not bit-stable "
                                           "for projecting apply_edge layers")

        # Land the delta on the base graph first — validation happens here,
        # and even an invalidating delta must reach the graph so the session
        # can re-prepare from the updated state.
        topo_dirty = apply_delta_to_graph(graph, delta)

        if in_place and delta.has_edge_changes:
            stable, why, new_threshold = check_edge_delta_stability(plan)
            if stable:
                plan.strategy_plan.threshold = new_threshold
            else:
                in_place, reason = False, why
        if not in_place:
            return DeltaOutcome(in_place=False, reason=reason)

        engine = plan.state.get("engine")
        feature_dirty = _EMPTY
        if delta.has_feature_changes:
            shadow_plan = plan.shadow_plan
            if shadow_plan is not None and shadow_plan.has_mirrors:
                feature_dirty = shadow_plan.refresh_mirror_features(graph, delta.node_ids)
            else:
                feature_dirty = np.unique(delta.node_ids)
            if engine is not None and plan.layout is not None:
                working = plan.working_graph
                rows = working.node_features[feature_dirty]
                local = plan.layout.local_indices(feature_dirty)
                for pid, sel in plan.layout.group_by_owner(feature_dirty):
                    if sel.size:
                        engine.partitions[pid].node_features[local[sel]] = rows[sel]

        if delta.has_edge_changes:
            # Under shadow nodes, splice the delta into the expanded working
            # graph first (position-stable mirror assignment); without
            # mirrors the working graph *is* the base graph and the delta
            # already landed on it above.
            if plan.shadow_plan is not None:
                plan.shadow_plan.patch_edge_delta(graph, delta)
            if engine is not None and plan.layout is not None:
                # Regroup the updated working edge list per owning partition
                # (one stable argsort — the same slicing a fresh partitioning
                # would produce; partitions that lost their last edge get
                # empty arrays).
                working = plan.working_graph
                efeat = working.edge_features
                for pid, ids in plan.layout.group_by_owner(working.src):
                    engine.partitions[pid].replace_out_edges(
                        working.src[ids], working.dst[ids],
                        None if efeat is None else efeat[ids])

        return DeltaOutcome(in_place=True, feature_dirty=feature_dirty,
                            topo_dirty=topo_dirty)

    def execute_incremental(self, plan: ExecutionPlan, metrics: MetricsCollector,
                            feature_dirty: np.ndarray,
                            topo_dirty: np.ndarray) -> Optional[Dict[str, np.ndarray]]:
        engine = plan.state.get("engine")
        if engine is None:
            return None
        return run_pregel_inference_incremental(
            plan.model, plan.graph, plan.config, plan.strategy_plan,
            plan.shadow_plan, metrics, engine, feature_dirty, topo_dirty)
