"""Pluggable inference backends.

Importing this package registers the three built-in backends:

* ``"pregel"``    — memory-resident graph processing (fastest);
* ``"mapreduce"`` — storage-resident batch processing (smallest footprint);
* ``"khop"``      — the traditional mini-batch k-hop baseline (for
  comparison tables, full neighbourhoods so results match exactly).

Third-party backends register through the same :func:`register_backend`
decorator — see :mod:`repro.inference.backends.base` for the protocol.
"""

from repro.inference.backends.base import (
    Backend,
    ExecutionPlan,
    UnknownBackendError,
    available_backends,
    get_backend,
    merge_hub_mirrors,
    plan_gas_execution,
    register_backend,
    unregister_backend,
)

# Importing the modules registers the built-in backends.
from repro.inference.backends.pregel import PregelBackend
from repro.inference.backends.mapreduce import MapReduceBackend
from repro.inference.backends.khop import KHopBackend

__all__ = [
    "Backend",
    "ExecutionPlan",
    "UnknownBackendError",
    "available_backends",
    "get_backend",
    "merge_hub_mirrors",
    "plan_gas_execution",
    "register_backend",
    "unregister_backend",
    "PregelBackend",
    "MapReduceBackend",
    "KHopBackend",
]
