"""The InferTurbo public API.

Typical usage::

    from repro.gnn import build_model, export_signature
    from repro.inference import InferTurbo, InferenceConfig, StrategyConfig

    model = build_model("sage", feature_dim, hidden, num_classes)
    ...train...
    signature = export_signature(model)

    engine = InferTurbo(signature, InferenceConfig(backend="pregel", num_workers=16))
    result = engine.run(graph)
    result.scores            # [N, num_classes] logits, identical at every run
    result.cost.wall_clock_seconds
    result.cost.cpu_minutes
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.cluster.cost_model import CostModel, CostSummary
from repro.cluster.metrics import MetricsCollector
from repro.gnn.model import GNNModel
from repro.gnn.signature import ModelSignature
from repro.graph.graph import Graph
from repro.graph.tables import EdgeTable, NodeTable, tables_to_graph
from repro.inference.config import InferenceConfig
from repro.inference.mapreduce_adaptor import run_mapreduce_inference
from repro.inference.pregel_adaptor import run_pregel_inference
from repro.inference.shadow import ShadowNodePlan, apply_shadow_nodes
from repro.inference.strategies import StrategyPlan, build_strategy_plan


@dataclass
class InferenceResult:
    """Outcome of a full-graph inference run."""

    scores: np.ndarray
    cost: CostSummary
    metrics: MetricsCollector
    plan: StrategyPlan
    embeddings: Optional[np.ndarray] = None
    num_supersteps: int = 0

    def predicted_classes(self) -> np.ndarray:
        """Hard argmax predictions (single-label tasks)."""
        return self.scores.argmax(axis=-1)


class InferTurbo:
    """Full-graph GNN inference over a Pregel or MapReduce backend.

    Parameters
    ----------
    model:
        Either a live :class:`~repro.gnn.model.GNNModel` (typically fresh out
        of the trainer) or a :class:`~repro.gnn.signature.ModelSignature`
        previously exported/saved — the deployment artefact the paper's
        pipeline ships to the inference cluster.
    config:
        Backend, worker count, cluster spec and strategy switches.
    """

    def __init__(self, model: Union[GNNModel, ModelSignature],
                 config: Optional[InferenceConfig] = None) -> None:
        if isinstance(model, ModelSignature):
            self.model = model.build_model()
        else:
            self.model = model
        self.config = config or InferenceConfig()

    # ------------------------------------------------------------------ #
    def run(self, graph: Union[Graph, tuple], check_memory: bool = False) -> InferenceResult:
        """Run layer-wise full-graph inference and return scores + costs.

        ``graph`` may be an in-memory :class:`~repro.graph.graph.Graph` or a
        ``(NodeTable, EdgeTable)`` pair straight from the data warehouse.
        ``check_memory=True`` makes the cost model raise
        :class:`~repro.cluster.resources.OutOfMemoryError` if any simulated
        instance exceeds its memory budget.
        """
        if isinstance(graph, tuple):
            node_table, edge_table = graph
            if not isinstance(node_table, NodeTable) or not isinstance(edge_table, EdgeTable):
                raise TypeError("expected a (NodeTable, EdgeTable) pair")
            graph = tables_to_graph(node_table, edge_table)

        has_edge_features = graph.edge_features is not None
        plan = build_strategy_plan(self.model, graph, self.config.num_workers,
                                   self.config.strategies, has_edge_features)

        shadow_plan: Optional[ShadowNodePlan] = None
        if self.config.strategies.shadow_nodes:
            shadow_plan = apply_shadow_nodes(graph, plan.threshold, self.config.num_workers)
            if shadow_plan.mirror_origin:
                # Mirrors of out-degree hubs inherit hub treatment (SN+BC combo).
                mirror_ids = np.fromiter(shadow_plan.mirror_origin.keys(), dtype=np.int64,
                                         count=len(shadow_plan.mirror_origin))
                hub_mirrors = np.asarray(
                    [mid for mid in mirror_ids
                     if int(shadow_plan.mirror_origin[int(mid)]) in plan.hub_set],
                    dtype=np.int64)
                plan.out_degree_hubs = np.concatenate([plan.out_degree_hubs, hub_mirrors])

        metrics = MetricsCollector()
        if self.config.backend == "pregel":
            outputs = run_pregel_inference(self.model, graph, self.config, plan,
                                           shadow_plan, metrics)
            num_supersteps = self.model.num_layers + 1
        else:
            outputs = run_mapreduce_inference(self.model, graph, self.config, plan,
                                              shadow_plan, metrics)
            num_supersteps = self.model.num_layers

        cost_model = CostModel(self.config.cluster)
        cost = cost_model.summarize(metrics, check_memory=check_memory)

        return InferenceResult(
            scores=outputs["scores"],
            embeddings=outputs.get("embeddings"),
            cost=cost,
            metrics=metrics,
            plan=plan,
            num_supersteps=num_supersteps,
        )
