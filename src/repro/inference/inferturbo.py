"""Deprecated one-shot facade over :class:`~repro.inference.session.InferenceSession`.

``InferTurbo`` predates the session API: every ``run()`` re-derived the
strategy plan, shadow rewrite and partition layout from scratch.  It is kept
as a thin shim so existing code and notebooks keep working, but new code
should use the session directly::

    # old (deprecated)
    result = InferTurbo(signature, config).run(graph)

    # new
    session = InferenceSession(signature, config)
    session.prepare(graph)
    result = session.infer()

The shim preserves the original one-shot semantics exactly: every ``run()``
re-plans from the graph as passed (so in-place graph mutations between runs
are picked up, as before).  Plan reuse is what the session API adds — migrate
to get it.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

from repro.gnn.model import GNNModel
from repro.gnn.signature import ModelSignature
from repro.graph.graph import Graph
from repro.inference.config import InferenceConfig
from repro.inference.session import GraphLike, InferenceResult, InferenceSession

__all__ = ["InferTurbo", "InferenceResult"]


class InferTurbo:
    """Deprecated: use :class:`~repro.inference.session.InferenceSession`.

    Kept as a thin delegate so the original one-shot API keeps working while
    callers migrate to the plan-once / infer-many session API.
    """

    def __init__(self, model: Union[GNNModel, ModelSignature],
                 config: Optional[InferenceConfig] = None) -> None:
        warnings.warn(
            "InferTurbo is deprecated; use InferenceSession "
            "(prepare once, infer many) instead",
            DeprecationWarning, stacklevel=2)
        self._session = InferenceSession(model, config)

    @property
    def model(self) -> GNNModel:
        return self._session.model

    @property
    def config(self) -> InferenceConfig:
        return self._session.config

    @property
    def session(self) -> InferenceSession:
        """The backing session (handy mid-migration)."""
        return self._session

    # ------------------------------------------------------------------ #
    def run(self, graph: GraphLike, check_memory: bool = False) -> InferenceResult:
        """Plan and execute one full-graph inference run.

        Re-plans on every call — the original one-shot contract — so callers
        that mutate the graph in place between runs keep seeing fresh results.
        """
        self._session.prepare(graph)
        return self._session.infer(check_memory=check_memory)
