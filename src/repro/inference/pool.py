"""Multi-tenant serving: one deployed model, many prepared graphs.

The paper's end state is a serving system — one trained model scoring many
slowly-mutating graphs on a schedule.  :class:`SessionPool` is that tier's
plan cache: it keeps one :class:`~repro.inference.session.InferenceSession`
per *graph content* (keyed by
:func:`~repro.inference.delta.graph_fingerprint`), so N tenant graphs are
each planned once and every later ``infer()`` reuses the cached plan —
partition layout, strategy plan, shadow rewrite and backend state included.

Keying by fingerprint makes the cache **content-addressed**: two tenants
handing in byte-identical graphs share one plan, and a graph that was mutated
out of band simply misses the cache and is planned afresh (its stale entry
ages out through eviction), so the pool can never serve yesterday's plan for
today's bytes.  Each pooled session is prepared over a **private copy** of
the tenant's arrays, so the pool never mutates one tenant's buffers on
another tenant's behalf.  In-band changes go through
:meth:`SessionPool.apply_delta`, which routes the delta to the owning
session *and* mirrors it onto the caller's graph — the tenant's handle and
the cache key always move together to the post-delta fingerprint.

Capacity is bounded and eviction is **weighted**: every entry carries a
weight from a pluggable ``weigher`` (default: the byte size of the graph
arrays, a deterministic proxy for prepare cost; each entry also records its
*measured* ``prepare_seconds`` for weighers that prefer real cost), and when
a new tenant would exceed ``capacity`` the pool evicts the entry with the
smallest ``weight / age`` score — at equal recency the cheaper-to-rebuild
plan dies first, while an untouched heavy plan still ages out once its
``age`` (pool operations since last use) outgrows its weight advantage.
With equal weights the policy degrades to exact LRU.  Entries may also carry
a **TTL** (``ttl_seconds``): a plan older than its TTL is dropped on its
next lookup (or during an eviction sweep) and re-prepared transparently —
bounded plan age for deployments that prefer periodic re-planning over
unbounded cache lifetime.

Typical multi-tenant flow::

    pool = SessionPool(signature, InferenceConfig(backend="pregel"),
                       capacity=64, ttl_seconds=3600.0)
    for tenant_graph in tenants:           # tick 0: one prepare each
        pool.infer(tenant_graph)
    for tenant_graph in tenants:           # later ticks: plan-cache hits
        scores = pool.infer(tenant_graph).scores
    pool.apply_delta(tenants[0], delta)    # tenant 0 drifted
    fresh = pool.infer(tenants[0], mode="incremental")
    print(pool.stats)

The pool is **thread-safe**, and its lock is deliberately cheap to hold.
Every fingerprint (and the private copy a preparation runs over) is computed
*inside* the pool lock — the same lock :meth:`SessionPool.apply_delta` holds
while mirroring a delta onto a tenant's graph — so a concurrent lookup can
never hash or copy arrays that are mid-mutation.  Everything slow runs
*outside* it: ``prepare()`` is guarded by a per-fingerprint once-flag (two
concurrent cold lookups of one content still yield exactly one preparation —
the loser waits for the winner, then hits), ``session.infer()`` never
touches the lock, and an evicted session's ``close()`` — which waits for
any in-flight run on that session — happens only after the lock is
released, so one tenant's eviction or cache miss never stalls another
tenant's lookup.  The asyncio serving gateway (:mod:`repro.serving`) drives
exactly this from a worker thread pool.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.analysis.lockgraph import tracked_rlock

from repro.gnn.model import GNNModel
from repro.gnn.signature import ModelSignature
from repro.graph.graph import Graph
from repro.inference.config import InferenceConfig
from repro.inference.delta import (
    DeltaOutcome,
    GraphDelta,
    apply_delta_to_graph,
    graph_fingerprint,
)
from repro.inference.session import GraphLike, InferenceResult, InferenceSession

Fingerprint = Tuple[int, int, int]


def _private_copy(graph: Graph) -> Graph:
    """A deep copy of the arrays inference reads — the session's own graph.

    Pooled sessions are content-addressed, so several distinct caller objects
    can map to one session; preparing over (and later delta-patching) a
    private copy guarantees the pool never mutates a caller's arrays except
    through the graph explicitly handed to :meth:`SessionPool.apply_delta`.
    """
    return Graph(
        src=graph.src.copy(),
        dst=graph.dst.copy(),
        node_features=None if graph.node_features is None else graph.node_features.copy(),
        edge_features=None if graph.edge_features is None else graph.edge_features.copy(),
        labels=None if graph.labels is None else graph.labels.copy(),
        num_nodes=graph.num_nodes,
    )


def _graph_bytes(graph: Graph) -> int:
    """Byte size of the arrays inference reads — the default entry weight."""
    total = 0
    for array in (graph.src, graph.dst, graph.node_features, graph.edge_features):
        if array is not None:
            total += array.nbytes
    return total


@dataclass
class PoolEntry:
    """One cached session plus the bookkeeping weighted eviction reads.

    ``graph_bytes`` is a deterministic proxy for how expensive the plan was
    to build (preparation is O(edges));``prepare_seconds`` is the *measured*
    wall clock of the ``prepare()`` that built it.  The default weigher uses
    the byte size (stable across runs — timing noise cannot reorder
    equal-content twins); a deployment that prefers real measured cost passes
    ``weigher=lambda entry: entry.prepare_seconds``.
    """

    fingerprint: Fingerprint
    session: InferenceSession
    graph_bytes: int
    prepare_seconds: float
    #: Pool-operation sequence number of the last use (the eviction clock).
    last_used_seq: int
    #: Wall-clock deadline after which the entry re-prepares (None = no TTL).
    expires_at: Optional[float] = None
    hits: int = 0
    weight: float = field(init=False, default=0.0)


Weigher = Callable[[PoolEntry], float]


def default_weigher(entry: PoolEntry) -> float:
    """Weight entries by graph byte size — deterministic prepare-cost proxy."""
    return float(entry.graph_bytes)


@dataclass
class PoolStats:
    """Cache counters for one :class:`SessionPool` (cumulative since creation)."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    #: Entries dropped because their TTL elapsed (each also re-prepared on
    #: the tenant's next appearance — counted there as a miss).
    expirations: int = 0
    #: Measured wall-clock seconds spent preparing sessions (cache misses).
    total_prepare_seconds: float = 0.0
    #: Measured wall-clock seconds spent inside pooled ``infer()`` calls —
    #: summed from :attr:`InferenceResult.elapsed_seconds`, the same
    #: per-request samples serving-tier percentiles are computed from.
    total_infer_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        return (f"{self.size}/{self.capacity} session(s), "
                f"{self.hits} hit(s) / {self.misses} miss(es) "
                f"({100.0 * self.hit_rate:.0f}% hit rate), "
                f"{self.evictions} eviction(s), {self.expirations} expired, "
                f"{self.total_prepare_seconds:.3f}s preparing / "
                f"{self.total_infer_seconds:.3f}s serving")


class SessionPool:
    """A weighted, TTL-aware cache of prepared inference sessions.

    Parameters
    ----------
    model:
        A live :class:`~repro.gnn.model.GNNModel` or an exported
        :class:`~repro.gnn.signature.ModelSignature`.  A signature is built
        into a model **once**; every pooled session shares that one model
        object (inference never mutates it), so the pool's memory scales with
        the graphs, not with ``capacity`` copies of the weights.
    config:
        The :class:`~repro.inference.config.InferenceConfig` every session is
        created with (backend, workers, strategies); defaults to
        ``InferenceConfig()``.
    capacity:
        Maximum number of prepared sessions held at once.  Preparing a graph
        beyond it evicts the entry with the smallest ``weight / age`` score
        (its plan is rebuilt on the tenant's next appearance).  Each session
        owns a private copy of its tenant's graph arrays (isolation between
        content-equal tenants), so capacity also bounds that memory.
    ttl_seconds:
        Optional per-entry time-to-live measured from ``prepare()`` time.  An
        expired entry is dropped on its next lookup (a transparent
        re-prepare) or during an eviction sweep.  ``None`` (default) keeps
        entries until evicted.
    weigher:
        ``PoolEntry -> float`` returning the eviction weight; heavier entries
        survive lighter ones at equal recency.  Defaults to
        :func:`default_weigher` (graph array bytes).  Use
        ``lambda entry: entry.prepare_seconds`` to weight by measured
        prepare cost.
    clock:
        Monotonic time source for TTLs (injectable for tests).
    """

    def __init__(self, model: Union[GNNModel, ModelSignature],
                 config: Optional[InferenceConfig] = None,
                 capacity: int = 8,
                 ttl_seconds: Optional[float] = None,
                 weigher: Optional[Weigher] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.model = model.build_model() if isinstance(model, ModelSignature) else model
        self.config = config or InferenceConfig()
        self.capacity = int(capacity)
        self.ttl_seconds = ttl_seconds
        self._weigher = weigher or default_weigher
        self._clock = clock
        self._entries: "OrderedDict[Fingerprint, PoolEntry]" = OrderedDict()
        # Guards all bookkeeping (entries, counters, fingerprinting of caller
        # graphs).  Held only for cheap operations: preparation runs outside
        # it behind the per-fingerprint once-flags in ``_preparing``, and
        # detached sessions are closed after it is released.  Contract-checked
        # twice: the `lock-discipline` lint rule forbids slow calls lexically
        # inside `with self._lock:` blocks, and under REPRO_LOCK_TRACK=1 the
        # runtime tracker fails any slow operation entered while holding it.
        self._lock = tracked_rlock("SessionPool._lock", forbid_slow=True)
        # Fingerprints with a prepare() in flight; waiters block on the event
        # (outside the pool lock) and re-run their lookup once it sets.
        self._preparing: Dict[Fingerprint, threading.Event] = {}
        # Monotonic pool-operation counter — the "age" clock weighted
        # eviction divides by.  Ticks on every lookup/touch.
        self._seq = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._prepare_seconds = 0.0
        self._infer_seconds = 0.0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, graph: GraphLike) -> bool:
        """Whether ``graph`` (by current content) has a live prepared session."""
        with self._lock:
            # Fingerprint under the lock: apply_delta mirrors deltas onto
            # tenant graphs while holding it, so an unlocked hash could read
            # half-mutated feature rows.
            fingerprint = graph_fingerprint(InferenceSession._ingest(graph))
            entry = self._entries.get(fingerprint)
            return entry is not None and not self._expired(entry)

    def fingerprints(self) -> List[Fingerprint]:
        """Cached fingerprints, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def sessions(self) -> Iterator[InferenceSession]:
        """The live sessions, least- to most-recently used."""
        with self._lock:
            return iter([entry.session for entry in self._entries.values()])

    def entries(self) -> List[PoolEntry]:
        """The live cache entries (weights, prepare cost, recency), LRU-first."""
        with self._lock:
            return list(self._entries.values())

    @property
    def stats(self) -> PoolStats:
        with self._lock:
            return PoolStats(hits=self._hits, misses=self._misses,
                             evictions=self._evictions, size=len(self._entries),
                             capacity=self.capacity,
                             expirations=self._expirations,
                             total_prepare_seconds=self._prepare_seconds,
                             total_infer_seconds=self._infer_seconds)

    # ------------------------------------------------------------------ #
    def _expired(self, entry: PoolEntry) -> bool:
        return entry.expires_at is not None and self._clock() >= entry.expires_at

    def _detach(self, entry: PoolEntry, *, expired: bool) -> InferenceSession:
        """Unlink ``entry`` and count the drop (lock held); caller closes.

        ``session.close()`` waits on the victim's execution lock for any
        in-flight run to finish, so it must never run under the pool lock —
        every caller closes the returned session *after* releasing it, so one
        tenant's eviction cannot stall every other tenant's lookup.
        """
        self._entries.pop(entry.fingerprint, None)
        if expired:
            self._expirations += 1
        else:
            self._evictions += 1
        return entry.session

    def _purge_expired_locked(self) -> List[InferenceSession]:
        """Detach every TTL-dead entry (lock held); caller closes them."""
        stale = [entry for entry in self._entries.values() if self._expired(entry)]
        return [self._detach(entry, expired=True) for entry in stale]

    def purge_expired(self) -> int:
        """Drop every entry whose TTL elapsed; returns how many were dropped."""
        with self._lock:
            victims = self._purge_expired_locked()
        for session in victims:
            session.close()
        return len(victims)

    def _eviction_score(self, entry: PoolEntry) -> Tuple[float, int]:
        """Smaller evicts first: ``weight / age``, recency breaking ties.

        ``age`` counts pool operations since the entry's last use, so a heavy
        plan left untouched decays toward eviction instead of squatting
        forever, while at equal recency the lighter (cheaper-to-rebuild)
        entry always dies first.  Equal weights reduce to exact LRU.
        """
        age = max(1, self._seq - entry.last_used_seq + 1)
        return (entry.weight / age, entry.last_used_seq)

    def _evict_over_capacity_locked(self) -> List[InferenceSession]:
        """Shrink to ``capacity`` (lock held): expired first, then by score.

        Returns the detached sessions for the caller to close outside the
        lock.
        """
        victims: List[InferenceSession] = []
        if len(self._entries) > self.capacity:
            victims.extend(self._purge_expired_locked())
        while len(self._entries) > self.capacity:
            victim = min(self._entries.values(), key=self._eviction_score)
            victims.append(self._detach(victim, expired=False))
        return victims

    def _touch(self, entry: PoolEntry) -> None:
        self._seq += 1
        entry.last_used_seq = self._seq
        entry.hits += 1
        entry.weight = float(self._weigher(entry))
        self._entries.move_to_end(entry.fingerprint)

    def _lookup(self, graph: GraphLike) -> Tuple[Fingerprint, InferenceSession]:
        """Get-or-create the session covering ``graph``'s current content.

        The fingerprint — and, on a miss, the private copy preparation runs
        over — is computed **inside** the pool lock: :meth:`apply_delta`
        mirrors deltas onto tenant graphs under the same lock, so a lookup
        can never hash (or snapshot) arrays that are mid-mutation.
        ``prepare()`` itself runs *outside* the lock over that stable private
        copy, guarded by a per-fingerprint once-flag: two concurrent callers
        handing in the same content still get exactly one preparation (the
        loser waits on the flag, then re-looks and hits), and a slow prepare
        never blocks other tenants' lookups.
        """
        while True:
            claimed = False
            expired_session: Optional[InferenceSession] = None
            with self._lock:
                ingested = InferenceSession._ingest(graph)
                fingerprint = graph_fingerprint(ingested)
                entry = self._entries.get(fingerprint)
                if entry is not None and self._expired(entry):
                    # TTL elapsed: drop and fall through to a transparent
                    # re-prepare (counted as a miss — the tenant pays plan
                    # cost).  The dead session closes outside the lock.
                    expired_session = self._detach(entry, expired=True)
                    entry = None
                if entry is not None:
                    self._hits += 1
                    self._touch(entry)
                    return fingerprint, entry.session
                pending = self._preparing.get(fingerprint)
                if pending is None:
                    # Claim the (one-off) preparation for this content; the
                    # snapshot taken here is what prepare() runs over, so no
                    # later mirror can reach it.
                    pending = threading.Event()
                    self._preparing[fingerprint] = pending
                    claimed = True
                    self._misses += 1
                    private = _private_copy(ingested)
                    graph_bytes = _graph_bytes(ingested)
            if expired_session is not None:
                expired_session.close()
            if not claimed:
                # Another thread is preparing this content; wait outside the
                # lock, then re-look (normally a hit — unless the preparer
                # failed or the fresh entry was already evicted, in which
                # case this caller claims the retry).
                pending.wait()
                continue
            session = InferenceSession(self.model, self.config)
            started = time.perf_counter()
            try:
                session.prepare(private)
            except BaseException:
                # Release the claim so a waiter can retry (and surface its
                # own error if the content is truly unpreparable).
                with self._lock:
                    self._preparing.pop(fingerprint, None)
                pending.set()
                raise
            prepare_seconds = time.perf_counter() - started
            with self._lock:
                self._prepare_seconds += prepare_seconds
                self._seq += 1
                entry = PoolEntry(
                    fingerprint=fingerprint,
                    session=session,
                    graph_bytes=graph_bytes,
                    prepare_seconds=prepare_seconds,
                    last_used_seq=self._seq,
                    expires_at=(None if self.ttl_seconds is None
                                else self._clock() + self.ttl_seconds),
                )
                entry.weight = float(self._weigher(entry))
                self._entries[fingerprint] = entry
                victims = self._evict_over_capacity_locked()
                self._preparing.pop(fingerprint, None)
            pending.set()
            for victim in victims:
                victim.close()
            return fingerprint, session

    def _rekey(self, fingerprint: Fingerprint,
               new_fingerprint: Optional[Fingerprint],
               session: InferenceSession) -> None:
        """Move ``session``'s entry to ``new_fingerprint`` after its content changed.

        Deltas change the graph content and therefore the fingerprint; the
        cache key must follow it or the tenant's next lookup would miss.  If
        another tenant already occupies the new fingerprint (two graphs
        converged to the same content), the fresher session replaces it —
        one plan per content.  The move is identity-checked: if a concurrent
        delta already re-keyed the entry elsewhere (the old key no longer
        holds *this* session), there is nothing left to move — re-inserting
        under a stale fingerprint would duplicate the session in the cache.
        """
        with self._lock:
            victims = self._rekey_locked(fingerprint, new_fingerprint, session)
        for victim in victims:
            victim.close()

    def _rekey_locked(self, fingerprint: Fingerprint,
                      new_fingerprint: Optional[Fingerprint],
                      session: InferenceSession) -> List[InferenceSession]:
        """:meth:`_rekey` body (lock held); returns sessions to close."""
        if new_fingerprint is None:
            return []
        entry = self._entries.get(fingerprint)
        if entry is None or entry.session is not session:
            return []
        if new_fingerprint == fingerprint:
            return []
        self._entries.pop(fingerprint, None)
        displaced = self._entries.get(new_fingerprint)
        victims: List[InferenceSession] = []
        if displaced is not None and displaced.session is not session:
            # Two tenants converged to the same content: the fresher
            # session replaces the resident one — one plan per content.
            victims.append(self._detach(displaced, expired=False))
        entry.fingerprint = new_fingerprint
        self._entries[new_fingerprint] = entry
        self._entries.move_to_end(new_fingerprint)
        return victims

    # ------------------------------------------------------------------ #
    def session_for(self, graph: GraphLike) -> InferenceSession:
        """The prepared session for ``graph``'s current content (recency-touched).

        A cache hit returns the existing session without re-planning — the
        plan-reuse guarantee the pool exists for; a miss (or an expired
        entry) prepares a new session (and may evict the lowest-scored one).
        """
        return self._lookup(graph)[1]

    def prepare(self, graph: GraphLike) -> InferenceSession:
        """Warm the cache for ``graph`` without running inference."""
        return self.session_for(graph)

    def infer(self, graph: GraphLike, mode: str = "full",
              check_memory: bool = False) -> InferenceResult:
        """One inference over ``graph`` through its cached (or fresh) plan.

        Pending deferred deltas on the owning session are flushed by the
        underlying ``infer()`` against the session's private copy; the cache
        entry was already moved to the post-delta fingerprint when
        :meth:`apply_delta` mirrored those deltas onto the caller's graph,
        so the tenant's handle keeps hitting.  (The safety-net re-key here
        only matters when deltas were applied directly on a session obtained
        via :meth:`session_for`, bypassing the pool.)

        The execution itself runs *outside* the pool lock, so concurrent
        callers serving different tenants overlap; concurrent callers of one
        tenant serialise on the session's own execution lock.
        """
        fingerprint, session = self._lookup(graph)
        try:
            result = session.infer(mode=mode, check_memory=check_memory)
            with self._lock:
                self._infer_seconds += result.elapsed_seconds
            return result
        finally:
            new_fingerprint = (session.plan.fingerprint
                               if session.plan is not None else None)
            self._rekey(fingerprint, new_fingerprint, session)

    def apply_delta(self, graph: GraphLike, delta: GraphDelta,
                    defer: bool = False) -> DeltaOutcome:
        """Route ``delta`` to the session serving ``graph`` and re-key it.

        The lookup happens against the *pre-delta* content (the delta
        describes a change to the prepared state); the session's private copy
        is patched (or, with ``defer=True``, buffers the delta for one merged
        flush at the next ``infer``), the same delta is mirrored onto the
        **caller's graph** — the tenant's handle is the address, so it must
        track the content — and the entry moves to the post-delta
        fingerprint.  A graph not in the pool is prepared first; the delta
        then lands on that fresh plan.

        Concurrency: the patch→mirror→re-key sequence holds the session's
        delta-routing lock (see
        :meth:`~repro.inference.session.InferenceSession.delta_route_lock`),
        so concurrent deltas to one tenant apply to the session's private
        copy and the caller's handle in the **same order** — the two can
        never diverge.  The mirror and re-key additionally run under the
        pool lock, the same lock every lookup fingerprints under, so no
        reader ever hashes a half-mirrored graph.  With ``defer=True`` the
        patch is a fast buffer merge that may overlap the same session's
        in-flight execution (the serving gateway's tick-overlap path); an
        *eager* delta blocks until any in-flight run on that session
        finishes — without holding the pool lock, so other tenants' lookups
        keep flowing while it waits.

        Only in-memory :class:`~repro.graph.graph.Graph` tenants can apply
        deltas through the pool: a ``(NodeTable, EdgeTable)`` pair is
        re-ingested on every lookup, so there is no caller-side object the
        delta could be mirrored onto — the next lookup would silently serve
        the pre-delta content.  Such callers get a ``TypeError`` instead.
        """
        if not isinstance(graph, Graph):
            raise TypeError(
                "pool.apply_delta requires an in-memory Graph tenant; a "
                "(NodeTable, EdgeTable) pair is re-ingested per lookup, so a "
                "delta applied to it would be lost on the next infer().  "
                "Convert once with tables_to_graph() and hand the Graph in")
        fingerprint, session = self._lookup(graph)
        with session.delta_route_lock(defer=defer):
            outcome = session.apply_delta(delta, defer=defer)
            with self._lock:
                # Mirror onto the caller's handle.  The session already
                # validated the delta against byte-identical content, so this
                # cannot half-apply; under the pool lock, so no concurrent
                # lookup fingerprints the graph mid-mirror.
                if not delta.is_empty:
                    apply_delta_to_graph(graph, delta)
                # A concurrent delta between the lookup and the route lock
                # may already have moved this session's entry, so re-key from
                # wherever it lives *now* (identity, not the looked-up
                # fingerprint) — entries are few, the scan is cheap.
                current = next((key for key, entry in self._entries.items()
                                if entry.session is session), fingerprint)
                victims = self._rekey_locked(current,
                                             graph_fingerprint(graph), session)
        for victim in victims:
            victim.close()
        return outcome

    def evict(self, graph: GraphLike) -> bool:
        """Drop the session for ``graph``'s current content; True if present.

        The evicted session is closed (worker processes and shared-memory
        segments released).  Deltas still *deferred* in its buffer are
        discarded with it — but never lost: :meth:`apply_delta` mirrors every
        delta onto the caller's graph at apply time, so the tenant's next
        appearance re-prepares from content that already includes them.
        """
        with self._lock:
            fingerprint = graph_fingerprint(InferenceSession._ingest(graph))
            entry = self._entries.get(fingerprint)
            if entry is None:
                return False
            victim = self._detach(entry, expired=False)
        victim.close()
        return True

    def clear(self) -> None:
        """Drop every cached session (counters keep accumulating)."""
        with self._lock:
            victims = [self._detach(entry, expired=False)
                       for entry in list(self._entries.values())]
        for victim in victims:
            victim.close()

    def describe(self) -> str:
        backend = self.config.backend
        return f"SessionPool[{backend}]: {self.stats.describe()}"
