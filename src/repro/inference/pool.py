"""Multi-tenant serving: one deployed model, many prepared graphs.

The paper's end state is a serving system — one trained model scoring many
slowly-mutating graphs on a schedule.  :class:`SessionPool` is that tier's
plan cache: it keeps one :class:`~repro.inference.session.InferenceSession`
per *graph content* (keyed by
:func:`~repro.inference.delta.graph_fingerprint`), so N tenant graphs are
each planned once and every later ``infer()`` reuses the cached plan —
partition layout, strategy plan, shadow rewrite and backend state included.

Keying by fingerprint makes the cache **content-addressed**: two tenants
handing in byte-identical graphs share one plan, and a graph that was mutated
out of band simply misses the cache and is planned afresh (its stale entry
ages out through the LRU), so the pool can never serve yesterday's plan for
today's bytes.  Each pooled session is prepared over a **private copy** of
the tenant's arrays, so the pool never mutates one tenant's buffers on
another tenant's behalf.  In-band changes go through
:meth:`SessionPool.apply_delta`, which routes the delta to the owning
session *and* mirrors it onto the caller's graph — the tenant's handle and
the cache key always move together to the post-delta fingerprint.

Capacity is bounded: the pool holds at most ``capacity`` prepared sessions
and evicts the least-recently-used one when a new tenant would exceed it —
the standard plan-cache shape for a deployment whose tenant count outgrows
worker memory.

Typical multi-tenant flow::

    pool = SessionPool(signature, InferenceConfig(backend="pregel"),
                       capacity=64)
    for tenant_graph in tenants:           # tick 0: one prepare each
        pool.infer(tenant_graph)
    for tenant_graph in tenants:           # later ticks: plan-cache hits
        scores = pool.infer(tenant_graph).scores
    pool.apply_delta(tenants[0], delta)    # tenant 0 drifted
    fresh = pool.infer(tenants[0], mode="incremental")
    print(pool.stats)

The pool is not thread-safe; serve it from one scheduler loop (the async
tier the ROADMAP names next owns the locking story).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from repro.gnn.model import GNNModel
from repro.gnn.signature import ModelSignature
from repro.graph.graph import Graph
from repro.inference.config import InferenceConfig
from repro.inference.delta import (
    DeltaOutcome,
    GraphDelta,
    apply_delta_to_graph,
    graph_fingerprint,
)
from repro.inference.session import GraphLike, InferenceResult, InferenceSession

Fingerprint = Tuple[int, int, int]


def _private_copy(graph: Graph) -> Graph:
    """A deep copy of the arrays inference reads — the session's own graph.

    Pooled sessions are content-addressed, so several distinct caller objects
    can map to one session; preparing over (and later delta-patching) a
    private copy guarantees the pool never mutates a caller's arrays except
    through the graph explicitly handed to :meth:`SessionPool.apply_delta`.
    """
    return Graph(
        src=graph.src.copy(),
        dst=graph.dst.copy(),
        node_features=None if graph.node_features is None else graph.node_features.copy(),
        edge_features=None if graph.edge_features is None else graph.edge_features.copy(),
        labels=None if graph.labels is None else graph.labels.copy(),
        num_nodes=graph.num_nodes,
    )


@dataclass
class PoolStats:
    """Cache counters for one :class:`SessionPool` (cumulative since creation)."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        return (f"{self.size}/{self.capacity} session(s), "
                f"{self.hits} hit(s) / {self.misses} miss(es) "
                f"({100.0 * self.hit_rate:.0f}% hit rate), "
                f"{self.evictions} eviction(s)")


class SessionPool:
    """An LRU cache of prepared inference sessions for one model.

    Parameters
    ----------
    model:
        A live :class:`~repro.gnn.model.GNNModel` or an exported
        :class:`~repro.gnn.signature.ModelSignature`.  A signature is built
        into a model **once**; every pooled session shares that one model
        object (inference never mutates it), so the pool's memory scales with
        the graphs, not with ``capacity`` copies of the weights.
    config:
        The :class:`~repro.inference.config.InferenceConfig` every session is
        created with (backend, workers, strategies); defaults to
        ``InferenceConfig()``.
    capacity:
        Maximum number of prepared sessions held at once.  Preparing a graph
        beyond it evicts the least-recently-used session (its plan is
        rebuilt on the tenant's next appearance).  Each session owns a
        private copy of its tenant's graph arrays (isolation between
        content-equal tenants), so capacity also bounds that memory.
    """

    def __init__(self, model: Union[GNNModel, ModelSignature],
                 config: Optional[InferenceConfig] = None,
                 capacity: int = 8) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.model = model.build_model() if isinstance(model, ModelSignature) else model
        self.config = config or InferenceConfig()
        self.capacity = int(capacity)
        self._sessions: "OrderedDict[Fingerprint, InferenceSession]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, graph: GraphLike) -> bool:
        """Whether ``graph`` (by current content) has a prepared session."""
        return graph_fingerprint(InferenceSession._ingest(graph)) in self._sessions

    def fingerprints(self) -> List[Fingerprint]:
        """Cached fingerprints, least- to most-recently used."""
        return list(self._sessions)

    def sessions(self) -> Iterator[InferenceSession]:
        """The live sessions, least- to most-recently used."""
        return iter(self._sessions.values())

    @property
    def stats(self) -> PoolStats:
        return PoolStats(hits=self._hits, misses=self._misses,
                         evictions=self._evictions, size=len(self._sessions),
                         capacity=self.capacity)

    # ------------------------------------------------------------------ #
    def _lookup(self, graph: GraphLike) -> Tuple[Fingerprint, InferenceSession]:
        """Get-or-create the session covering ``graph``'s current content."""
        ingested = InferenceSession._ingest(graph)
        fingerprint = graph_fingerprint(ingested)
        session = self._sessions.get(fingerprint)
        if session is not None:
            self._hits += 1
            self._sessions.move_to_end(fingerprint)
            return fingerprint, session
        self._misses += 1
        session = InferenceSession(self.model, self.config)
        session.prepare(_private_copy(ingested))
        self._sessions[fingerprint] = session
        while len(self._sessions) > self.capacity:
            _, evicted = self._sessions.popitem(last=False)
            evicted.close()   # release worker processes / shared memory
            self._evictions += 1
        return fingerprint, session

    def _rekey(self, fingerprint: Fingerprint,
               new_fingerprint: Optional[Fingerprint],
               session: InferenceSession) -> None:
        """Move ``session`` to ``new_fingerprint`` after its content changed.

        Deltas change the graph content and therefore the fingerprint; the
        cache key must follow it or the tenant's next lookup would miss.  If
        another tenant already occupies the new fingerprint (two graphs
        converged to the same content), the fresher session replaces it —
        one plan per content.
        """
        if new_fingerprint is None or new_fingerprint == fingerprint:
            return
        self._sessions.pop(fingerprint, None)
        displaced = self._sessions.get(new_fingerprint)
        if displaced is not None and displaced is not session:
            # Two tenants converged to the same content: the fresher session
            # replaces the resident one — one plan per content.
            displaced.close()
            self._evictions += 1
        self._sessions[new_fingerprint] = session
        self._sessions.move_to_end(new_fingerprint)

    # ------------------------------------------------------------------ #
    def session_for(self, graph: GraphLike) -> InferenceSession:
        """The prepared session for ``graph``'s current content (LRU-touched).

        A cache hit returns the existing session without re-planning — the
        plan-reuse guarantee the pool exists for; a miss prepares a new
        session (and may evict the least-recently-used one).
        """
        return self._lookup(graph)[1]

    def prepare(self, graph: GraphLike) -> InferenceSession:
        """Warm the cache for ``graph`` without running inference."""
        return self.session_for(graph)

    def infer(self, graph: GraphLike, mode: str = "full",
              check_memory: bool = False) -> InferenceResult:
        """One inference over ``graph`` through its cached (or fresh) plan.

        Pending deferred deltas on the owning session are flushed by the
        underlying ``infer()`` against the session's private copy; the cache
        entry was already moved to the post-delta fingerprint when
        :meth:`apply_delta` mirrored those deltas onto the caller's graph,
        so the tenant's handle keeps hitting.  (The safety-net re-key here
        only matters when deltas were applied directly on a session obtained
        via :meth:`session_for`, bypassing the pool.)
        """
        fingerprint, session = self._lookup(graph)
        try:
            return session.infer(mode=mode, check_memory=check_memory)
        finally:
            new_fingerprint = (session.plan.fingerprint
                               if session.plan is not None else None)
            self._rekey(fingerprint, new_fingerprint, session)

    def apply_delta(self, graph: GraphLike, delta: GraphDelta,
                    defer: bool = False) -> DeltaOutcome:
        """Route ``delta`` to the session serving ``graph`` and re-key it.

        The lookup happens against the *pre-delta* content (the delta
        describes a change to the prepared state); the session's private copy
        is patched (or, with ``defer=True``, buffers the delta for one merged
        flush at the next ``infer``), the same delta is mirrored onto the
        **caller's graph** — the tenant's handle is the address, so it must
        track the content — and the entry moves to the post-delta
        fingerprint.  A graph not in the pool is prepared first; the delta
        then lands on that fresh plan.

        Only in-memory :class:`~repro.graph.graph.Graph` tenants can apply
        deltas through the pool: a ``(NodeTable, EdgeTable)`` pair is
        re-ingested on every lookup, so there is no caller-side object the
        delta could be mirrored onto — the next lookup would silently serve
        the pre-delta content.  Such callers get a ``TypeError`` instead.
        """
        if not isinstance(graph, Graph):
            raise TypeError(
                "pool.apply_delta requires an in-memory Graph tenant; a "
                "(NodeTable, EdgeTable) pair is re-ingested per lookup, so a "
                "delta applied to it would be lost on the next infer().  "
                "Convert once with tables_to_graph() and hand the Graph in")
        fingerprint, session = self._lookup(graph)
        outcome = session.apply_delta(delta, defer=defer)
        # Mirror onto the caller's handle.  The session already validated the
        # delta against byte-identical content, so this cannot half-apply.
        if not delta.is_empty:
            apply_delta_to_graph(graph, delta)
        self._rekey(fingerprint, graph_fingerprint(graph), session)
        return outcome

    def evict(self, graph: GraphLike) -> bool:
        """Drop the session for ``graph``'s current content; True if present.

        The evicted session is closed (worker processes and shared-memory
        segments released).  Deltas still *deferred* in its buffer are
        discarded with it — but never lost: :meth:`apply_delta` mirrors every
        delta onto the caller's graph at apply time, so the tenant's next
        appearance re-prepares from content that already includes them.
        """
        fingerprint = graph_fingerprint(InferenceSession._ingest(graph))
        session = self._sessions.pop(fingerprint, None)
        if session is None:
            return False
        session.close()
        self._evictions += 1
        return True

    def clear(self) -> None:
        """Drop every cached session (counters keep accumulating)."""
        self._evictions += len(self._sessions)
        for session in self._sessions.values():
            session.close()
        self._sessions.clear()

    def describe(self) -> str:
        backend = self.config.backend
        return f"SessionPool[{backend}]: {self.stats.describe()}"
