"""Configuration objects for the InferTurbo inference engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.executor import available_executors, default_executor_name
from repro.cluster.resources import ClusterSpec


@dataclass
class StrategyConfig:
    """Which hub-node strategies are enabled and how the threshold is chosen.

    The threshold follows the paper's heuristic
    ``threshold = hub_lambda * total_edges / num_workers`` (λ = 0.1 by
    default); ``hub_threshold_override`` replaces the heuristic with an
    explicit value, which the Fig. 12/13 threshold-sweep experiments use.
    """

    partial_gather: bool = True
    broadcast: bool = False
    shadow_nodes: bool = False
    hub_lambda: float = 0.1
    hub_threshold_override: Optional[int] = None

    def describe(self) -> str:
        parts = []
        if self.partial_gather:
            parts.append("partial-gather")
        if self.broadcast:
            parts.append("broadcast")
        if self.shadow_nodes:
            parts.append("shadow-nodes")
        return "+".join(parts) if parts else "base"


@dataclass
class GatewayConfig:
    """Knobs for the asyncio serving gateway (:mod:`repro.serving`).

    Parameters
    ----------
    max_queue_depth:
        Bound on a tenant's *outstanding* infer requests — queued plus
        currently executing in its tick.  A request arriving at a full queue
        is rejected with :class:`repro.serving.Overloaded` (carrying a
        ``retry_after`` hint) instead of being enqueued — admission control
        rather than unbounded buffering, so a hot tenant cannot grow the
        event loop's memory without bound.  (With ``max_queue_depth=1``, a
        request arriving mid-tick is rejected: one outstanding at a time.)
    max_batch:
        Maximum infer requests folded into one tick's single plan-cache-hit
        execution.  Same-mode requests batch together; a mode change starts
        the next tick.
    max_concurrent_ticks:
        Worker threads executing ticks — the gateway's execution parallelism
        across tenants (one tenant's ticks are always serialised).  Real
        parallelism comes from the backend substrate (the ``process``
        executor runs compute off-GIL); these threads mainly overlap tenants
        and keep the event loop free.
    latency_window:
        How many recent tick-latency samples each tenant keeps for p50/p99
        percentiles (sampled from
        :attr:`~repro.inference.session.InferenceResult.elapsed_seconds` —
        the session's own measurement, not a gateway-side timer).
    default_retry_after_seconds:
        The ``retry_after`` hint handed to rejected requests before the
        tenant has any latency history to estimate from.
    """

    max_queue_depth: int = 64
    max_batch: int = 32
    max_concurrent_ticks: int = 4
    latency_window: int = 512
    default_retry_after_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.max_concurrent_ticks <= 0:
            raise ValueError("max_concurrent_ticks must be positive")
        if self.latency_window <= 0:
            raise ValueError("latency_window must be positive")
        if self.default_retry_after_seconds <= 0:
            raise ValueError("default_retry_after_seconds must be positive")


@dataclass
class InferenceConfig:
    """Full configuration of an inference run.

    Parameters
    ----------
    backend:
        Name of a registered inference backend — ``"pregel"`` (graph
        processing system), ``"mapreduce"`` (batch processing system),
        ``"khop"`` (traditional mini-batch baseline), or any name added via
        :func:`repro.inference.backends.register_backend`.
    num_workers:
        Number of simulated instances (Pregel partitions, or MapReduce
        mappers/reducers per round).
    executor:
        Worker substrate the sharded backends run their per-partition compute
        on — ``"serial"`` (the default: instances run sequentially in-process,
        parallelism is simulated) or ``"process"`` (one OS process per
        instance; graph partitions, feature buffers and the cluster layout
        ship once via shared memory, per-superstep message blocks travel as
        pickled numpy bundles).  Scores are identical under both — serial vs
        process is a *speed* choice, property-checked by the backend
        conformance suite.  The default follows ``$REPRO_EXECUTOR`` when set.
        The ``khop`` baseline has no partitioned compute to shard and accepts
        the knob without behaviour change.
    cluster:
        Worker resource spec used by the cost model; defaults to the paper's
        per-backend flavour scaled down.
    strategies:
        Hub-node strategy switches (see :class:`StrategyConfig`).
    collect_embeddings:
        When True the result also carries the final-layer embeddings, not just
        the prediction scores.
    staleness_check:
        When True (default) every ``infer()`` re-fingerprints the prepared
        graph and raises :class:`~repro.inference.delta.StalePlanError` if it
        was mutated out of band — the loud-failure half of the staleness
        contract.  Disable only for graphs guaranteed immutable, to shave the
        checksum pass off the serving hot path.
    incremental_state_cache:
        When True (default) backends that support incremental inference keep
        per-run state resident between runs — the pregel backend caches every
        superstep's node states, the mapreduce backend its last full score
        matrix — so ``infer(mode="incremental")`` after an ``apply_delta``
        recomputes only the dirty k-hop region.  The cache is **lazy**: it
        only starts filling once a session first sees a delta, so sessions
        serving an immutable graph pay no extra memory at all; the first
        post-delta incremental request falls back to one full run that primes
        it.  Costs ~(layers+1)x the node-state memory (pregel) once armed;
        disable on memory-tight deployments (incremental requests then always
        fall back to full executions).
    """

    backend: str = "pregel"
    num_workers: int = 8
    executor: str = field(default_factory=default_executor_name)
    cluster: Optional[ClusterSpec] = None
    strategies: StrategyConfig = field(default_factory=StrategyConfig)
    collect_embeddings: bool = False
    staleness_check: bool = True
    incremental_state_cache: bool = True

    def __post_init__(self) -> None:
        # Imported lazily: the backend modules themselves import this module.
        from repro.inference.backends import get_backend

        backend = get_backend(self.backend)  # raises with the registered names
        if self.executor not in available_executors():
            known = ", ".join(repr(name) for name in sorted(available_executors()))
            raise ValueError(
                f"unknown executor {self.executor!r}; known executors: {known}")
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.cluster is None:
            self.cluster = backend.default_cluster(self.num_workers)
        elif self.cluster.num_workers != self.num_workers:
            raise ValueError(
                f"cluster.num_workers ({self.cluster.num_workers}) does not match "
                f"num_workers ({self.num_workers}); pass a ClusterSpec sized for "
                f"{self.num_workers} workers, or omit `cluster` to use the "
                f"backend's default flavour")
