"""Hub-node strategy planning and the broadcast message block.

This module holds everything the two backend adaptors share:

* the hub threshold heuristic (λ · total_edges / num_workers);
* the per-layer strategy plan (is partial-gather legal? is broadcast
  applicable? which nodes are out-degree hubs?);
* :class:`BroadcastMessageBlock`, a packed message block that stores each hub
  payload once per destination worker plus id-only references per edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.cluster.metrics import ID_BYTES, RECORD_OVERHEAD_BYTES
from repro.gnn.model import GNNModel
from repro.graph.graph import Graph
from repro.inference.config import StrategyConfig
from repro.pregel.combiners import MessageCombiner, combiner_for_aggregate_kind
from repro.pregel.vertex import MessageBlock


def hub_threshold(total_edges: int, num_workers: int, hub_lambda: float = 0.1,
                  override: Optional[int] = None) -> int:
    """The paper's heuristic: ``threshold = λ · total_edges / total_workers``.

    A node whose (out-)degree reaches the threshold (``>=``, see
    :func:`select_hubs`) is treated as a hub by the broadcast and
    shadow-nodes strategies.  The threshold never drops below 1.
    """
    if override is not None:
        return max(int(override), 1)
    return max(int(hub_lambda * total_edges / max(num_workers, 1)), 1)


def select_hubs(out_degrees: np.ndarray, threshold: int) -> np.ndarray:
    """Node ids whose out-degree reaches the hub threshold (``>=``).

    The single source of truth for "is this node a hub": both the broadcast
    planning (:func:`build_strategy_plan`) and the shadow-nodes rewrite
    (:func:`~repro.inference.shadow.apply_shadow_nodes`) call this, so a node
    whose degree lands exactly on the threshold is treated the same way by
    every strategy (it used to be broadcast-hub but not shadow-hub).
    """
    return np.nonzero(np.asarray(out_degrees) >= threshold)[0].astype(np.int64)


@dataclass
class LayerStrategy:
    """Resolved strategy switches for one GNN layer."""

    layer_index: int
    partial_gather: bool
    broadcast: bool
    combiner: Optional[MessageCombiner]


@dataclass
class StrategyPlan:
    """Everything the adaptors need to apply the strategies consistently."""

    threshold: int
    out_degree_hubs: np.ndarray                  # global node ids with out-degree >= threshold
    layer_strategies: List[LayerStrategy] = field(default_factory=list)
    shadow_nodes: bool = False

    def layer(self, index: int) -> LayerStrategy:
        return self.layer_strategies[index]

    @property
    def hub_set(self) -> Set[int]:
        return set(int(h) for h in self.out_degree_hubs)


def build_strategy_plan(model: GNNModel, graph: Graph, num_workers: int,
                        config: StrategyConfig, has_edge_features: bool) -> StrategyPlan:
    """Resolve the strategy switches per layer for a concrete model and graph.

    * partial-gather is enabled only for layers whose gather stage is
      annotated commutative/associative (``supports_partial_gather``);
    * broadcast is enabled only for layers whose out-edge messages do not
      depend on edge features (otherwise the payloads differ per edge and
      cannot be shared);
    * shadow-nodes is a graph-level preprocessing switch, recorded here so the
      adaptors and experiments read one source of truth.
    """
    threshold = hub_threshold(graph.num_edges, num_workers, config.hub_lambda,
                              config.hub_threshold_override)
    hubs = select_hubs(graph.out_degrees(), threshold)

    layer_strategies: List[LayerStrategy] = []
    for index, layer in enumerate(model.layers):
        partial = bool(config.partial_gather and layer.supports_partial_gather)
        message_uses_edges = has_edge_features and getattr(layer, "edge_linear", None) is not None
        broadcast = bool(config.broadcast and not message_uses_edges)
        combiner = combiner_for_aggregate_kind(layer.aggregate_kind) if partial else None
        layer_strategies.append(LayerStrategy(
            layer_index=index, partial_gather=partial, broadcast=broadcast, combiner=combiner,
        ))
    return StrategyPlan(
        threshold=threshold,
        out_degree_hubs=hubs,
        layer_strategies=layer_strategies,
        shadow_nodes=bool(config.shadow_nodes),
    )


class BroadcastMessageBlock(MessageBlock):
    """A message block whose payload rows reference a shared payload table.

    Hub nodes send the same payload along every out-edge; instead of repeating
    the row per edge, the block stores each unique payload once
    (``unique_payloads``) and one integer reference per edge.  The wire-size
    accounting (:meth:`nbytes`) therefore reflects the paper's broadcast
    saving: full payload once per destination worker, ids only per edge.
    """

    combinable = False

    def __init__(self, dst_ids: np.ndarray, payload_refs: np.ndarray,
                 unique_payloads: np.ndarray, counts: Optional[np.ndarray] = None) -> None:
        self.payload_refs = np.asarray(payload_refs, dtype=np.int64)
        self.unique_payloads = np.asarray(unique_payloads, dtype=np.float64)
        if self.unique_payloads.ndim == 1:
            self.unique_payloads = self.unique_payloads.reshape(1, -1)
        # ``payload`` is materialised lazily; MessageBlock's validation needs a
        # placeholder with the right row count.
        super().__init__(dst_ids=dst_ids,
                         payload=np.zeros((self.payload_refs.shape[0], 0)),
                         counts=counts)

    def dense_payload(self) -> np.ndarray:
        return self.unique_payloads[self.payload_refs]

    def nbytes(self) -> float:
        per_edge = 2 * ID_BYTES + RECORD_OVERHEAD_BYTES   # dst id + payload reference
        return float(self.dst_ids.shape[0]) * per_edge + float(self.unique_payloads.nbytes)

    def take(self, rows: np.ndarray) -> "BroadcastMessageBlock":
        refs = self.payload_refs[rows]
        used, remapped = np.unique(refs, return_inverse=True)
        return BroadcastMessageBlock(
            dst_ids=self.dst_ids[rows],
            payload_refs=remapped,
            unique_payloads=self.unique_payloads[used],
            counts=self.counts[rows],
        )


def split_hub_edges(src_ids: np.ndarray,
                    hubs: Union[np.ndarray, AbstractSet[int]],
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Partition edge positions into (hub-source rows, regular rows).

    ``hubs`` is the plan's sorted ``out_degree_hubs`` array (a ``set`` is
    still accepted for callers off the hot path).  Membership is one
    vectorised ``np.isin`` pass — the last per-element Python loop on the
    scatter path used to live here, testing ``int(s) in hub_set`` per edge.
    """
    if isinstance(hubs, (set, frozenset)):
        hubs = np.fromiter(hubs, dtype=np.int64, count=len(hubs))
    hubs = np.asarray(hubs, dtype=np.int64)
    src_ids = np.asarray(src_ids, dtype=np.int64)
    if hubs.size == 0:
        return np.empty(0, dtype=np.int64), np.arange(src_ids.shape[0])
    is_hub = np.isin(src_ids, hubs)
    return np.nonzero(is_hub)[0], np.nonzero(~is_hub)[0]
