"""Graph versioning, deltas and the staleness contract for serving sessions.

An :class:`~repro.inference.session.InferenceSession` snapshots the graph at
``prepare()`` time.  Before this module existed, mutating that graph in place
(refreshing node features for a nightly scoring job, appending edges as
traffic arrives) silently served *yesterday's* scores — the classic stale-plan
bug of plan-once/infer-many systems.  The contract is now explicit:

* every prepared plan carries a :func:`graph_fingerprint` of the source
  graph's feature buffers and edge arrays; ``infer()`` re-checks it and raises
  :class:`StalePlanError` on any out-of-band mutation — a loud error instead
  of a silent wrong answer;
* in-band changes travel as a :class:`GraphDelta` through
  ``session.apply_delta(delta)``, which updates the cached plan (and its
  fingerprint) in place where possible and transparently re-plans where not;
* after a delta, ``session.infer(mode="incremental")`` recomputes only the
  k-hop region the delta can reach (see :func:`expand_frontier`), bit-identical
  to a fresh full ``prepare()+infer()``;
* a serving loop applying many small deltas between ticks can *defer* them —
  ``session.apply_delta(delta, defer=True)`` parks each delta in a
  :class:`DeltaBuffer`, and the next ``infer()`` (or an explicit
  ``session.flush_deltas()``) applies **one merged delta**: one scatter into
  the cached plan and one frontier expansion instead of one per delta.  The
  merge is exact — the coalesced delta produces byte-identical graph arrays,
  and therefore bit-identical scores, to applying the same deltas eagerly one
  by one.

The delta is deliberately columnar — changed feature rows plus added/removed
edge arrays — so applying it is a handful of vectorised scatters, never a
per-row Python loop.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph

if TYPE_CHECKING:  # import cycle: shadow plans are built by the inference layer
    from repro.inference.shadow import ShadowNodePlan


class StalePlanError(RuntimeError):
    """The prepared plan no longer matches the graph it was built over.

    Raised by ``InferenceSession.infer()`` when the graph was mutated in place
    after ``prepare()`` without going through ``apply_delta``.  Recover by
    describing the change as a :class:`GraphDelta` and calling
    ``session.apply_delta(delta)``, or by calling ``session.prepare(graph)``
    to re-plan from scratch.
    """


@dataclass
class GraphDelta:
    """A columnar description of what changed in a graph between two runs.

    Parameters
    ----------
    node_ids, node_features:
        Replacement feature rows: ``node_features[i]`` is the new feature row
        of node ``node_ids[i]``.  Both must be given together.
    added_src, added_dst:
        Endpoint arrays of appended edges (existing node ids only — growing
        the node set requires a fresh ``prepare()``).
    added_edge_features:
        Feature rows of the appended edges; required when the graph carries
        edge features, forbidden when it does not.
    removed_edge_ids:
        Positions (into the graph's current ``src``/``dst`` arrays) of edges
        to delete.  Removal is applied before the append, so positions always
        refer to the pre-delta edge list.
    """

    node_ids: Optional[np.ndarray] = None
    node_features: Optional[np.ndarray] = None
    added_src: Optional[np.ndarray] = None
    added_dst: Optional[np.ndarray] = None
    added_edge_features: Optional[np.ndarray] = None
    removed_edge_ids: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if (self.node_ids is None) != (self.node_features is None):
            raise ValueError("node_ids and node_features must be given together")
        if (self.added_src is None) != (self.added_dst is None):
            raise ValueError("added_src and added_dst must be given together")
        if self.node_ids is not None:
            self.node_ids = np.asarray(self.node_ids, dtype=np.int64).reshape(-1)
            self.node_features = np.asarray(self.node_features, dtype=np.float64)
            if self.node_features.ndim != 2 or self.node_features.shape[0] != self.node_ids.size:
                raise ValueError("node_features must be a [len(node_ids), F] matrix")
            if np.unique(self.node_ids).size != self.node_ids.size:
                raise ValueError("node_ids must not contain duplicates")
        if self.added_src is not None:
            self.added_src = np.asarray(self.added_src, dtype=np.int64).reshape(-1)
            self.added_dst = np.asarray(self.added_dst, dtype=np.int64).reshape(-1)
            if self.added_src.shape != self.added_dst.shape:
                raise ValueError("added_src and added_dst must have the same length")
        if self.added_edge_features is not None:
            if self.added_src is None:
                raise ValueError("added_edge_features requires added edges")
            self.added_edge_features = np.asarray(self.added_edge_features, dtype=np.float64)
            if self.added_edge_features.shape[0] != self.added_src.size:
                raise ValueError("added_edge_features must align with added_src")
        if self.removed_edge_ids is not None:
            self.removed_edge_ids = np.unique(
                np.asarray(self.removed_edge_ids, dtype=np.int64).reshape(-1))

    # ------------------------------------------------------------------ #
    @property
    def has_feature_changes(self) -> bool:
        return self.node_ids is not None and self.node_ids.size > 0

    @property
    def has_edge_changes(self) -> bool:
        return ((self.added_src is not None and self.added_src.size > 0)
                or (self.removed_edge_ids is not None and self.removed_edge_ids.size > 0))

    @property
    def is_empty(self) -> bool:
        return not (self.has_feature_changes or self.has_edge_changes)

    def describe(self) -> str:
        parts = []
        if self.has_feature_changes:
            parts.append(f"{self.node_ids.size} feature row(s)")
        if self.added_src is not None and self.added_src.size:
            parts.append(f"+{self.added_src.size} edge(s)")
        if self.removed_edge_ids is not None and self.removed_edge_ids.size:
            parts.append(f"-{self.removed_edge_ids.size} edge(s)")
        return ", ".join(parts) if parts else "<empty delta>"


@dataclass
class DeltaOutcome:
    """What a backend did with a :class:`GraphDelta`.

    ``in_place=True`` means the cached :class:`ExecutionPlan` was patched and
    remains valid; ``feature_dirty``/``topo_dirty`` then carry the
    working-graph node ids that seed the next incremental run (feature-dirty
    nodes enter the frontier at superstep 0, topology-dirty destinations at
    the first gather).  ``in_place=False`` means the delta invalidated the
    plan (e.g. the hub set changed) and the session re-planned from scratch.
    ``deferred=True`` means the delta was only *buffered*
    (``apply_delta(..., defer=True)``): nothing has been applied yet, and the
    real outcome is reported by the flush that folds the buffer into the plan.
    """

    in_place: bool
    feature_dirty: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))
    topo_dirty: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))
    reason: str = ""
    deferred: bool = False


# --------------------------------------------------------------------------- #
# delta coalescing
# --------------------------------------------------------------------------- #
class DeltaBuffer:
    """Accumulates deferred :class:`GraphDelta`\\ s and folds them into one.

    A serving loop often receives many small deltas between two inference
    ticks.  Applying each eagerly costs one plan scatter plus one frontier
    expansion *per delta*; buffering them and applying one merged delta costs
    that once per tick.  The merge is **exact**: :meth:`merge` returns a
    single :class:`GraphDelta` whose application to the buffer's base graph
    produces byte-identical ``src``/``dst``/feature arrays to applying the
    buffered deltas sequentially, because

    * feature rows coalesce last-write-wins per node id;
    * ``removed_edge_ids`` of each delta (positions into the *then-current*
      edge list) are translated back to base-edge positions, or cancel a
      previously buffered appended edge when they point past the surviving
      base edges;
    * surviving appended edges keep their arrival order, and removal never
      reorders survivors — exactly the order sequential application builds.

    The buffer validates each delta against the (virtual) graph state it
    would apply to, so a malformed delta fails at :meth:`add` time rather
    than poisoning the merged flush.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._base_num_edges = graph.num_edges
        #: base-edge positions already deleted by a buffered delta.
        self._removed_base = np.zeros(graph.num_edges, dtype=bool)
        self._added_src = np.empty(0, dtype=np.int64)
        self._added_dst = np.empty(0, dtype=np.int64)
        self._added_edge_features: Optional[np.ndarray] = None
        self._added_keep = np.empty(0, dtype=bool)
        self._feature_ids: List[np.ndarray] = []
        self._feature_rows: List[np.ndarray] = []
        self._num_deltas = 0

    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        return self._num_deltas == 0

    @property
    def num_pending(self) -> int:
        """How many deltas have been buffered since the last flush."""
        return self._num_deltas

    @property
    def _current_num_edges(self) -> int:
        """Edge count of the virtual graph state after the buffered deltas."""
        return (int((~self._removed_base).sum()) + int(self._added_keep.sum()))

    def describe(self) -> str:
        return (f"{self._num_deltas} pending delta(s): "
                f"{self.merge().describe() if self._num_deltas else '<empty>'}")

    # ------------------------------------------------------------------ #
    def add(self, delta: GraphDelta) -> None:
        """Buffer ``delta`` (validated against the virtual post-buffer state)."""
        graph = self._graph
        if delta.has_feature_changes:
            if graph.node_features is None:
                raise ValueError("delta carries feature rows but the graph has no features")
            _check_node_ids(delta.node_ids, graph.num_nodes, "delta.node_ids")
            if delta.node_features.shape[1] != graph.node_features.shape[1]:
                raise ValueError(
                    f"delta feature width {delta.node_features.shape[1]} does not "
                    f"match graph feature width {graph.node_features.shape[1]}")
        removing = delta.removed_edge_ids is not None and delta.removed_edge_ids.size > 0
        adding = delta.added_src is not None and delta.added_src.size > 0
        if removing:
            current = self._current_num_edges
            removed = delta.removed_edge_ids
            if int(removed.min()) < 0 or int(removed.max()) >= current:
                raise ValueError(f"removed_edge_ids must lie in [0, {current})")
        if adding:
            _check_node_ids(delta.added_src, graph.num_nodes, "delta.added_src")
            _check_node_ids(delta.added_dst, graph.num_nodes, "delta.added_dst")
            if graph.edge_features is not None and delta.added_edge_features is None:
                raise ValueError("graph has edge features; delta must carry "
                                 "added_edge_features for appended edges")
            if graph.edge_features is None and delta.added_edge_features is not None:
                raise ValueError("delta carries edge features but the graph has none")
            if delta.added_edge_features is not None and (
                    delta.added_edge_features.ndim != 2
                    or delta.added_edge_features.shape[1] != graph.edge_features.shape[1]):
                raise ValueError("added_edge_features width does not match the graph")

        # All validation passed — now mutate the buffer.
        if removing:
            # Positions index the virtual edge list: surviving base edges first
            # (original order), then surviving appended edges (arrival order).
            survivors_base = np.nonzero(~self._removed_base)[0]
            removed = delta.removed_edge_ids
            in_base = removed[removed < survivors_base.size]
            self._removed_base[survivors_base[in_base]] = True
            in_added = removed[removed >= survivors_base.size] - survivors_base.size
            if in_added.size:
                survivors_added = np.nonzero(self._added_keep)[0]
                self._added_keep[survivors_added[in_added]] = False
        if adding:
            self._added_src = np.concatenate([self._added_src, delta.added_src])
            self._added_dst = np.concatenate([self._added_dst, delta.added_dst])
            self._added_keep = np.concatenate(
                [self._added_keep, np.ones(delta.added_src.size, dtype=bool)])
            if delta.added_edge_features is not None:
                if self._added_edge_features is None:
                    self._added_edge_features = delta.added_edge_features
                else:
                    self._added_edge_features = np.concatenate(
                        [self._added_edge_features, delta.added_edge_features], axis=0)
        if delta.has_feature_changes:
            self._feature_ids.append(delta.node_ids)
            self._feature_rows.append(delta.node_features)
        self._num_deltas += 1

    def merge(self) -> GraphDelta:
        """Fold every buffered delta into one equivalent :class:`GraphDelta`."""
        node_ids = node_features = None
        if self._feature_ids:
            ids = np.concatenate(self._feature_ids)[::-1]
            rows = np.concatenate(self._feature_rows, axis=0)[::-1]
            # First occurrence in the reversed stream == last write per id.
            node_ids, first = np.unique(ids, return_index=True)
            node_features = rows[first]
        removed = np.nonzero(self._removed_base)[0]
        added_src = self._added_src[self._added_keep]
        added_dst = self._added_dst[self._added_keep]
        added_edge_features = None
        if self._added_edge_features is not None and added_src.size:
            added_edge_features = self._added_edge_features[self._added_keep]
        return GraphDelta(
            node_ids=node_ids,
            node_features=node_features,
            added_src=added_src if added_src.size else None,
            added_dst=added_dst if added_dst.size else None,
            added_edge_features=added_edge_features,
            removed_edge_ids=removed if removed.size else None,
        )


# --------------------------------------------------------------------------- #
# fingerprinting
# --------------------------------------------------------------------------- #
def graph_fingerprint(graph: Graph) -> Tuple[int, int, int]:
    """A cheap content fingerprint of everything inference reads from a graph.

    ``(num_nodes, num_edges, crc)`` where the CRC chains over the raw bytes of
    the edge endpoint arrays and the node/edge feature buffers.  CRC32 runs at
    memory bandwidth, so checking it on every ``infer()`` costs a few
    milliseconds even at benchmark scale — cheap insurance against silently
    serving stale scores.  Labels are excluded: predictions never read them.
    """
    crc = 0
    for array in (graph.src, graph.dst, graph.node_features, graph.edge_features):
        if array is not None:
            # crc32 reads the array through the buffer protocol — no copy.
            crc = zlib.crc32(np.ascontiguousarray(array), crc)
    return (graph.num_nodes, graph.num_edges, crc)


# --------------------------------------------------------------------------- #
# applying a delta to a graph
# --------------------------------------------------------------------------- #
def _check_node_ids(ids: np.ndarray, num_nodes: int, what: str) -> None:
    if ids.size and (int(ids.min()) < 0 or int(ids.max()) >= num_nodes):
        bad = ids[(ids < 0) | (ids >= num_nodes)][0]
        raise ValueError(
            f"{what} references node {int(bad)} outside [0, {num_nodes}); "
            "adding nodes requires a fresh prepare()")


def validate_delta_against_graph(graph: Graph, delta: GraphDelta) -> None:
    """Check ``delta`` against ``graph`` without touching either edge list.

    Raises ``ValueError`` on any mismatch — out-of-range node or edge ids,
    feature-width disagreements, edge features present/absent against the
    graph's buffers — and leaves both objects untouched, so callers can
    validate at the API boundary (``session.apply_delta`` does, eager *and*
    deferred) before committing to any mutation.  As a side effect the
    delta's ``added_edge_features`` dtype is aligned to the graph's
    edge-feature buffer, so a later concatenate never silently upcasts.
    """
    removing = delta.removed_edge_ids is not None and delta.removed_edge_ids.size > 0
    adding = delta.added_src is not None and delta.added_src.size > 0

    if delta.has_feature_changes:
        if graph.node_features is None:
            raise ValueError("delta carries feature rows but the graph has no features")
        _check_node_ids(delta.node_ids, graph.num_nodes, "delta.node_ids")
        if delta.node_features.shape[1] != graph.node_features.shape[1]:
            raise ValueError(
                f"delta feature width {delta.node_features.shape[1]} does not match "
                f"graph feature width {graph.node_features.shape[1]}")
    if removing:
        removed = delta.removed_edge_ids
        if int(removed.min()) < 0 or int(removed.max()) >= graph.num_edges:
            raise ValueError(f"removed_edge_ids must lie in [0, {graph.num_edges})")
    if adding:
        _check_node_ids(delta.added_src, graph.num_nodes, "delta.added_src")
        _check_node_ids(delta.added_dst, graph.num_nodes, "delta.added_dst")
        if graph.edge_features is not None and delta.added_edge_features is None:
            raise ValueError("graph has edge features; delta must carry "
                             "added_edge_features for appended edges")
        if graph.edge_features is None and delta.added_edge_features is not None:
            raise ValueError("delta carries edge features but the graph has none")
        if delta.added_edge_features is not None and (
                delta.added_edge_features.ndim != 2
                or delta.added_edge_features.shape[1] != graph.edge_features.shape[1]):
            raise ValueError(
                f"added_edge_features must be a "
                f"[{delta.added_src.size}, {graph.edge_features.shape[1]}] matrix "
                f"matching the graph's edge-feature width; "
                f"got shape {delta.added_edge_features.shape}")
        if delta.added_edge_features is not None and (
                delta.added_edge_features.dtype != graph.edge_features.dtype):
            delta.added_edge_features = delta.added_edge_features.astype(
                graph.edge_features.dtype, copy=False)


def apply_delta_to_graph(graph: Graph, delta: GraphDelta) -> np.ndarray:
    """Apply ``delta`` to ``graph`` in place; return the topology-dirty dsts.

    Feature rows are overwritten, removed edges dropped, added edges appended
    (in that order), and the graph's cached adjacency indices invalidated.
    The return value is the unique array of destination ids whose in-edge set
    changed — the seeds the incremental frontier needs besides the
    feature-dirty nodes.

    All validation happens before the first write
    (:func:`validate_delta_against_graph`): a rejected delta must leave the
    graph untouched, or the session it belongs to would be wedged between a
    half-applied graph and a fingerprint that no longer matches.
    """
    validate_delta_against_graph(graph, delta)
    removing = delta.removed_edge_ids is not None and delta.removed_edge_ids.size > 0
    adding = delta.added_src is not None and delta.added_src.size > 0

    topo_dirty: List[np.ndarray] = []
    if delta.has_feature_changes:
        graph.node_features[delta.node_ids] = delta.node_features
    if delta.has_edge_changes:
        src, dst = graph.src, graph.dst
        edge_features = graph.edge_features
        if removing:
            removed = delta.removed_edge_ids
            topo_dirty.append(dst[removed])
            keep = np.ones(src.size, dtype=bool)
            keep[removed] = False
            src, dst = src[keep], dst[keep]
            if edge_features is not None:
                edge_features = edge_features[keep]
        if adding:
            topo_dirty.append(delta.added_dst)
            src = np.concatenate([src, delta.added_src])
            dst = np.concatenate([dst, delta.added_dst])
            if edge_features is not None:
                edge_features = np.concatenate(
                    [edge_features, delta.added_edge_features], axis=0)
        graph.src, graph.dst = src, dst
        graph.edge_features = edge_features
        graph.invalidate_adjacency()

    if not topo_dirty:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(topo_dirty))


# --------------------------------------------------------------------------- #
# frontier expansion for incremental inference
# --------------------------------------------------------------------------- #
def expand_frontier(working_graph: Graph, feature_dirty: np.ndarray,
                    topo_dirty: np.ndarray, num_supersteps: int,
                    shadow_plan: Optional["ShadowNodePlan"] = None) -> List[np.ndarray]:
    """Per-superstep dirty-vertex frontiers over the working graph.

    ``frontiers[s]`` lists (sorted, unique) every working-graph node whose
    superstep-``s`` state can differ from the cached run: feature-dirty nodes
    seed superstep 0, topology-dirty destinations join at the first gather,
    and each later frontier is the previous one plus its one-hop out-
    neighbourhood — the frontier only ever grows, because ``apply_node`` feeds
    a node's own previous state forward.

    Frontiers are kept *replica-closed*: a shadow mirror computes exactly its
    origin's state, so origin and mirrors always enter a frontier together
    (``shadow_plan.replicas_of``).  That invariant is what lets the scatter
    test plain (pre-expansion) destination ids against the next frontier.
    """

    def close(ids: np.ndarray) -> np.ndarray:
        ids = np.unique(np.asarray(ids, dtype=np.int64))
        if shadow_plan is None or not shadow_plan.has_mirrors:
            return ids
        return shadow_plan.replicas_of(ids)

    frontiers = [close(feature_dirty)]
    topo_closed = close(topo_dirty)
    # Frontiers are monotone, so each hop only needs the out-neighbourhood of
    # the nodes added *last* hop — everyone else's reach is already included —
    # and only the newly reached ids need closing (a union of closed sets is
    # closed).
    newly_added = frontiers[0]
    for _ in range(1, num_supersteps):
        current = frontiers[-1]
        reached = close(working_graph.out_neighbors_many(newly_added))
        nxt = np.union1d(current, np.union1d(reached, topo_closed))
        newly_added = np.setdiff1d(nxt, current, assume_unique=True)
        frontiers.append(nxt)
    return frontiers
