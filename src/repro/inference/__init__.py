"""Full-graph GNN inference over pluggable, interchangeable backends.

The public entry point is :class:`~repro.inference.session.InferenceSession`:
load a trained model (or its exported signature), pick a registered backend by
name, ``prepare(graph)`` once, then ``infer()`` as many times as traffic
demands — every execution reuses the cached plan (strategy resolution,
shadow-node rewrite, partition layout / record ingest) and returns per-node
predictions with a simulated cluster cost breakdown::

    from repro.inference import InferenceSession, InferenceConfig, StrategyConfig

    session = InferenceSession(signature, InferenceConfig(backend="pregel",
                                                          num_workers=16))
    session.prepare(graph)               # plan once
    result = session.infer()             # ...infer many
    nightly = session.infer_many(7)
    print(session.report().describe())

Backends live in a plugin registry (:mod:`repro.inference.backends`):

* ``"pregel"``    — memory-resident graph processing, one superstep per layer;
* ``"mapreduce"`` — storage-resident batch processing, one round per layer;
* ``"khop"``      — the traditional mini-batch k-hop baseline, wrapped as a
  first-class backend so comparison tables run all three through one API.

``available_backends()`` lists the registered names and
``register_backend(name)`` adds new ones — the seam future backends (async,
sharded serving) plug into.

Hub-node optimisation strategies (paper Section IV-D):

* **partial-gather** — when a layer's aggregate stage is commutative and
  associative, messages bound for the same destination are pre-reduced on the
  sender side (Pregel combiner / MapReduce combiner), flattening the long tail
  caused by large *in*-degrees;
* **broadcast** — hub nodes whose out-edge messages are identical publish one
  payload per destination worker plus id-only references, compressing the
  traffic caused by large *out*-degrees;
* **shadow-nodes** — hub nodes are mirrored, each mirror taking a slice of the
  out-edges (and a copy of all in-edges), balancing the sending load even when
  messages differ per edge.

All three strategies drop no information, so predictions are bit-identical to
the single-machine forward pass — the property the consistency experiment
(Fig. 7) relies on.

Serving graphs drift between runs; the session's staleness contract keeps
that safe: mutate a prepared graph out of band and ``infer()`` raises
:class:`~repro.inference.delta.StalePlanError`; describe the change as a
:class:`~repro.inference.delta.GraphDelta` through
``session.apply_delta(delta)`` and ``infer(mode="incremental")`` recomputes
just the dirty k-hop region — bit-identical to a fresh full run (pregel;
mapreduce agrees to ~1e-15 via its dependency-closure replay).  Many small
deltas between ticks coalesce: ``apply_delta(delta, defer=True)`` buffers
them and the next ``infer()`` applies one merged patch, bit-identical to
eager application.

For multi-tenant serving — one deployed model scoring many prepared
graphs — :class:`~repro.inference.pool.SessionPool` keeps one session per
graph content (fingerprint-keyed, LRU-bounded) so every tenant is planned
once::

    from repro.inference import SessionPool

    pool = SessionPool(signature, InferenceConfig(backend="pregel"),
                       capacity=64)
    scores = pool.infer(tenant_graph).scores      # plan-cache hit after tick 0

:class:`~repro.inference.inferturbo.InferTurbo` remains as a deprecated
one-shot shim over the session API.
"""

from repro.inference.backends import (
    Backend,
    ExecutionPlan,
    UnknownBackendError,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.inference.config import GatewayConfig, InferenceConfig, StrategyConfig
from repro.inference.delta import (
    DeltaBuffer,
    DeltaOutcome,
    GraphDelta,
    StalePlanError,
    graph_fingerprint,
)
from repro.inference.inferturbo import InferTurbo
from repro.inference.pool import PoolEntry, PoolStats, SessionPool, default_weigher
from repro.inference.session import InferenceResult, InferenceSession, RunReport
from repro.inference.strategies import hub_threshold, StrategyPlan, build_strategy_plan
from repro.inference.shadow import ShadowNodePlan, apply_shadow_nodes

__all__ = [
    "InferenceConfig",
    "StrategyConfig",
    "GatewayConfig",
    "InferenceSession",
    "SessionPool",
    "PoolStats",
    "PoolEntry",
    "default_weigher",
    "RunReport",
    "GraphDelta",
    "DeltaBuffer",
    "DeltaOutcome",
    "StalePlanError",
    "graph_fingerprint",
    "InferTurbo",
    "InferenceResult",
    "Backend",
    "ExecutionPlan",
    "UnknownBackendError",
    "available_backends",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "hub_threshold",
    "StrategyPlan",
    "build_strategy_plan",
    "ShadowNodePlan",
    "apply_shadow_nodes",
]
