"""InferTurbo — full-graph GNN inference over scalable backends.

The public entry point is :class:`~repro.inference.inferturbo.InferTurbo`:
load a trained model (or its exported signature), pick a backend
(``"pregel"`` or ``"mapreduce"``) and a configuration, call
:meth:`~repro.inference.inferturbo.InferTurbo.run` on a graph, and receive
per-node predictions together with the simulated cluster cost breakdown.

Hub-node optimisation strategies (paper Section IV-D):

* **partial-gather** — when a layer's aggregate stage is commutative and
  associative, messages bound for the same destination are pre-reduced on the
  sender side (Pregel combiner / MapReduce combiner), flattening the long tail
  caused by large *in*-degrees;
* **broadcast** — hub nodes whose out-edge messages are identical publish one
  payload per destination worker plus id-only references, compressing the
  traffic caused by large *out*-degrees;
* **shadow-nodes** — hub nodes are mirrored, each mirror taking a slice of the
  out-edges (and a copy of all in-edges), balancing the sending load even when
  messages differ per edge.

All three strategies drop no information, so predictions are bit-identical to
the single-machine forward pass — the property the consistency experiment
(Fig. 7) relies on.
"""

from repro.inference.config import InferenceConfig, StrategyConfig
from repro.inference.inferturbo import InferTurbo, InferenceResult
from repro.inference.strategies import hub_threshold, StrategyPlan, build_strategy_plan
from repro.inference.shadow import ShadowNodePlan, apply_shadow_nodes

__all__ = [
    "InferenceConfig",
    "StrategyConfig",
    "InferTurbo",
    "InferenceResult",
    "hub_threshold",
    "StrategyPlan",
    "build_strategy_plan",
    "ShadowNodePlan",
    "apply_shadow_nodes",
]
