"""InferTurbo adaptor for the MapReduce (batch processing) backend.

The pipeline mirrors the paper's Section IV-C2:

* **Map (initialisation)** — read node-table rows, encode raw features into
  the layer-0 state, then emit (a) the node's own state + out-edge adjacency
  to itself and (b) layer-0 messages to every out-edge neighbour;
* **Reduce round r** — for every node key, gather the incoming messages, run
  layer r's ``apply_node``, and emit the updated self state plus layer r+1's
  messages (shuffle keys: the node itself, and the destination node ids);
* the prediction head is merged into the last Reduce round, which emits one
  output record per node.

Unlike the Pregel backend nothing persists in worker memory between rounds —
state is itself shuffled — so peak memory stays bounded (records stream
through bounded chunks) at the price of more bytes moved, which is exactly the
trade-off Table III measures.

Record value formats (keys are node ids unless noted):

* ``("s", h_row, out_nbrs, out_edge_feats)`` — self state + out adjacency
* ``("m", payload_row, count)``              — an in-edge message
* ``("r", hub_id, count)``                   — broadcast reference to a hub payload
* ``("p", hub_id, payload_row)``             — broadcast payload, keyed ``("bc", bucket)``
* ``("o", logits_row)``                      — final output record

Incremental inference
---------------------

The backend keeps no worker-resident state, so it cannot splice recomputed
rows into cached per-superstep matrices the way the Pregel backend does.
What it *can* do after an in-place feature delta is replay only the delta's
**dependency closure**: walking backwards from the nodes whose final score
can change (the delta's k-hop out-reach), each round ``r`` must recompute
states for ``T[r] = T[r+1] ∪ in-neighbours(T[r+1])`` (replica-closed under
shadow nodes), and the whole pipeline restarts from the cached — already
patched — input records of ``T[0] ∪ in-neighbours(T[0])``.  Per-round
destination filters keep the scatter inside the closure, per-round group
filters drop carrier-only state records, and the final output records are
spliced into the score matrix cached by the last full run.

Unlike the Pregel path this is **tolerance-identical, not bit-identical**, to
a full recompute: the restricted run batches fewer records per mapper split /
reducer chunk, and BLAS accumulation order varies with matrix shape, so
recomputed rows can drift in the last ulp (observed ~1e-15, asserted well
inside the repo's 1e-9 equivalence tolerance).  Rows outside the closure
keep their cached bits, which a fresh full run reproduces exactly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.batch.mapreduce import MapReduceEngine, MapReduceJob, TaskContext
from repro.cluster.cost_model import gnn_layer_compute_units
from repro.cluster.executor import Executor
from repro.cluster.layout import ClusterLayout
from repro.cluster.metrics import MetricsCollector, tensor_bytes
from repro.gnn.gasconv import GASConv
from repro.gnn.model import GNNModel
from repro.graph.graph import Graph
from repro.inference.config import InferenceConfig
from repro.inference.delta import expand_frontier
from repro.inference.shadow import ShadowNodePlan
from repro.inference.strategies import StrategyPlan
from repro.tensor.tensor import Tensor, no_grad

Record = Tuple[Any, Any]

#: number of node groups processed together inside one reducer chunk; bounds
#: the reducer's working set (the "stream from external storage" property).
REDUCE_CHUNK_NODES = 4096


def _partition_fn(key: Any, num_reducers: int) -> int:
    """Route node ids by modulo; broadcast payload keys carry their bucket."""
    if isinstance(key, tuple) and len(key) == 2 and key[0] == "bc":
        return int(key[1]) % num_reducers
    return int(key) % num_reducers


class _ScatterMixin:
    """Shared message-emission logic for the init map and the reduce rounds.

    The scatter is columnar: all of a batch's out-edge messages are computed
    with **one** ``apply_edge`` call over the concatenated edge rows, shadow
    destinations expand through the plan's CSR replica arrays
    (:meth:`~repro.inference.shadow.ShadowNodePlan.expand_rows`), and broadcast
    buckets resolve through the cached
    :class:`~repro.cluster.layout.ClusterLayout` — the only Python iteration
    left is building the output record tuples the engine shuffles.
    """

    model: GNNModel
    plan: StrategyPlan
    shadow_plan: Optional[ShadowNodePlan]
    num_reducers: int
    layout: Optional[ClusterLayout]

    def _emit_messages(self, layer_index: int, node_ids: np.ndarray, state: np.ndarray,
                       out_nbrs: List[np.ndarray], out_edge_feats: List[Optional[np.ndarray]],
                       context: TaskContext) -> List[Record]:
        """Build layer ``layer_index`` messages for the given nodes' out-edges."""
        layer = self.model.layers[layer_index]
        strategy = self.plan.layer(layer_index)
        num_nodes = len(out_nbrs)
        sizes = np.fromiter((nbrs.size for nbrs in out_nbrs), dtype=np.int64,
                            count=num_nodes)
        total_edges = int(sizes.sum())
        context.add_compute(total_edges * layer.message_dim)
        if total_edges == 0:
            return []

        node_pos = np.repeat(np.arange(num_nodes, dtype=np.int64), sizes)
        all_dst = np.concatenate(
            [np.asarray(nbrs, dtype=np.int64) for nbrs in out_nbrs])
        node_indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(sizes)])

        feats = [out_edge_feats[position] for position in range(num_nodes)
                 if sizes[position]]
        edge_tensor = None
        if any(f is not None for f in feats):
            if any(f is None for f in feats):
                raise ValueError(
                    "mixed edge-feature availability across nodes in one batch")
            edge_tensor = Tensor(np.concatenate(feats, axis=0))

        with no_grad():
            messages = layer.apply_edge(Tensor(state[node_pos]), edge_tensor).data

        # Rows taking the broadcast path: hub source without edge features.
        if strategy.broadcast and self.plan.out_degree_hubs.size:
            no_feats = np.fromiter((f is None for f in out_edge_feats),
                                   dtype=bool, count=num_nodes)
            hub_node = np.isin(node_ids, self.plan.out_degree_hubs) & no_feats
        else:
            hub_node = np.zeros(num_nodes, dtype=bool)

        outputs: List[Record] = []
        plain_rows = np.nonzero(~hub_node[node_pos])[0]
        if plain_rows.size:
            if self.shadow_plan is not None:
                row_index, exp_dst = self.shadow_plan.expand_rows(all_dst[plain_rows])
                payload_rows = messages[plain_rows[row_index]]
            else:
                exp_dst = all_dst[plain_rows]
                payload_rows = messages[plain_rows]
            outputs.extend((dst, ("m", payload_rows[index], 1))
                           for index, dst in enumerate(exp_dst.tolist()))

        for position in np.nonzero(hub_node)[0].tolist():
            # One iteration per hub *node* (rare), never per edge row.
            # Broadcast: one payload per destination bucket + id-only refs.
            # Destinations are expanded through the shadow replica CSR first so
            # every reducer that will see a ref also gets the payload.
            node_id = int(node_ids[position])
            start = int(node_indptr[position])
            payload = messages[start]
            dst = all_dst[start:int(node_indptr[position + 1])]
            if self.shadow_plan is not None:
                _, dst = self.shadow_plan.expand_rows(dst)
            buckets = (self.layout.owners(dst) if self.layout is not None
                       else dst % self.num_reducers)
            outputs.extend((("bc", bucket), ("p", node_id, payload))
                           for bucket in np.unique(buckets).tolist())
            outputs.extend((d, ("r", node_id, 1)) for d in dst.tolist())
        return outputs


class GNNRoundJob(MapReduceJob, _ScatterMixin):
    """One MapReduce round = one GNN layer.

    Round 0's map is the paper's initialisation Map phase (encode + first
    scatter); later rounds use an identity map, because the previous round's
    reducers already emitted records keyed by their destination node.  The
    combiner on the map side implements partial-gather when the consuming
    layer allows it; the reducer runs the layer itself (and the prediction
    head on the last round).
    """

    uses_partition_map = True
    uses_partition_reduce = True

    def __init__(self, model: GNNModel, plan: StrategyPlan,
                 shadow_plan: Optional[ShadowNodePlan], layer_index: int,
                 num_reducers: int, original_num_nodes: int,
                 layout: Optional[ClusterLayout] = None) -> None:
        self.model = model
        self.plan = plan
        self.shadow_plan = shadow_plan
        self.layer_index = layer_index
        self.num_reducers = num_reducers
        self.original_num_nodes = original_num_nodes
        self.layout = layout
        self.is_init_round = layer_index == 0
        self.has_combiner = plan.layer(layer_index).partial_gather

    # ------------------------------------------------------------------ #
    def map_partition(self, records: List[Record], context: TaskContext) -> Iterable[Record]:
        if not self.is_init_round or not records:
            # Identity map: records already carry their destination node key.
            return list(records)
        node_ids = np.asarray([key for key, _ in records], dtype=np.int64)
        features = np.stack([value[0] for _, value in records])
        out_nbrs = [value[1] for _, value in records]
        out_edge_feats = [value[2] for _, value in records]

        with no_grad():
            state = self.model.encode(Tensor(features)).data
        context.add_compute(features.shape[0] * features.shape[1] * state.shape[1])
        context.observe_memory(tensor_bytes(state.shape) + float(features.nbytes))

        outputs: List[Record] = [
            (node_id, ("s", state[position], out_nbrs[position], out_edge_feats[position]))
            for position, node_id in enumerate(node_ids.tolist())]
        outputs.extend(self._emit_messages(0, node_ids, state, out_nbrs, out_edge_feats, context))
        return outputs

    def combine(self, key: Any, values: List[Any], context: TaskContext) -> Iterable[Record]:
        return _combine_messages(self.model, self.plan, self.layer_index, key, values)

    # ------------------------------------------------------------------ #
    def reduce_partition(self, groups: List[Tuple[Any, List[Any]]],
                         context: TaskContext) -> Iterable[Record]:
        layer = self.model.layers[self.layer_index]
        is_last = self.layer_index == self.model.num_layers - 1

        # Broadcast payload lookup for this reducer instance.
        payload_lookup: Dict[int, np.ndarray] = {}
        node_groups: List[Tuple[int, List[Any]]] = []
        for key, values in groups:
            if isinstance(key, tuple) and key and key[0] == "bc":
                for value in values:
                    payload_lookup[int(value[1])] = value[2]
            else:
                node_groups.append((int(key), values))

        outputs: List[Record] = []
        for start in range(0, len(node_groups), REDUCE_CHUNK_NODES):
            chunk = node_groups[start:start + REDUCE_CHUNK_NODES]
            outputs.extend(self._reduce_chunk(chunk, payload_lookup, layer, is_last, context))
        return outputs

    def _reduce_chunk(self, chunk: List[Tuple[int, List[Any]]],
                      payload_lookup: Dict[int, np.ndarray], layer: GASConv,
                      is_last: bool,
                      context: TaskContext) -> List[Record]:
        node_ids: List[int] = []
        states: List[np.ndarray] = []
        out_nbrs: List[np.ndarray] = []
        out_edge_feats: List[Optional[np.ndarray]] = []
        message_rows: List[np.ndarray] = []
        message_dst: List[int] = []
        message_counts: List[int] = []

        for local_index, (node_id, values) in enumerate(chunk):
            state_row = None
            nbrs: np.ndarray = np.empty(0, dtype=np.int64)
            edge_feats = None
            for value in values:
                kind = value[0]
                if kind == "s":
                    state_row, nbrs, edge_feats = value[1], value[2], value[3]
                elif kind == "m":
                    message_rows.append(value[1])
                    message_dst.append(local_index)
                    message_counts.append(int(value[2]))
                elif kind == "r":
                    hub_payload = payload_lookup.get(int(value[1]))
                    if hub_payload is None:
                        raise RuntimeError(
                            f"broadcast payload for hub {value[1]} missing on reducer")
                    message_rows.append(hub_payload)
                    message_dst.append(local_index)
                    message_counts.append(int(value[2]))
            if state_row is None:
                # A node that only ever appears as a message destination but has
                # no own record cannot exist: the init map emits a state record
                # for every node in the node table.
                raise RuntimeError(f"state record missing for node {node_id}")
            node_ids.append(node_id)
            states.append(state_row)
            out_nbrs.append(nbrs)
            out_edge_feats.append(edge_feats)

        node_ids_arr = np.asarray(node_ids, dtype=np.int64)
        state_matrix = np.stack(states) if states else np.zeros((0, layer.in_dim))
        if message_rows:
            payload = np.stack(message_rows)
            dst_index = np.asarray(message_dst, dtype=np.int64)
            counts = np.asarray(message_counts, dtype=np.int64)
        else:
            payload = np.zeros((0, layer.message_dim))
            dst_index = np.empty(0, dtype=np.int64)
            counts = np.empty(0, dtype=np.int64)

        with no_grad():
            aggr = layer.gather(Tensor(payload), dst_index, len(chunk), counts)
            new_state = layer.apply_node(Tensor(state_matrix), aggr).data

        context.add_compute(gnn_layer_compute_units(
            num_messages=payload.shape[0], message_dim=layer.message_dim,
            num_nodes=len(chunk), in_dim=layer.in_dim,
            out_dim=getattr(layer, "output_dim", layer.out_dim)))
        context.observe_memory(
            tensor_bytes(new_state.shape) + tensor_bytes(state_matrix.shape)
            + float(payload.nbytes))

        outputs: List[Record] = []
        if is_last:
            with no_grad():
                logits = self.model.predict(Tensor(new_state)).data
            context.add_compute(len(chunk) * new_state.shape[1] * logits.shape[1])
            outputs.extend((node_id, ("o", logits[position]))
                           for position, node_id in enumerate(node_ids_arr.tolist())
                           if node_id < self.original_num_nodes)
        else:
            outputs.extend(
                (node_id, ("s", new_state[position], out_nbrs[position],
                           out_edge_feats[position]))
                for position, node_id in enumerate(node_ids_arr.tolist()))
            outputs.extend(self._emit_messages(
                self.layer_index + 1, node_ids_arr, new_state, out_nbrs, out_edge_feats, context))
        return outputs


def _combine_messages(model: GNNModel, plan: StrategyPlan, layer_index: int,
                      key: Any, values: List[Any]) -> List[Record]:
    """Mapper-side combiner implementing partial-gather for message records.

    Only plain ``("m", payload, count)`` records are folded; state records,
    broadcast refs and broadcast payloads pass through unchanged.  The fold
    uses the consuming layer's ``partial_reduce`` so the semantics (sum vs
    max, count bookkeeping for mean) always match the layer.
    """
    strategy = plan.layer(layer_index)
    if not strategy.partial_gather:
        return [(key, value) for value in values]
    layer = model.layers[layer_index]
    passthrough: List[Record] = []
    payloads: List[np.ndarray] = []
    counts: List[int] = []
    for value in values:
        if isinstance(value, tuple) and value and value[0] == "m":
            payloads.append(value[1])
            counts.append(int(value[2]))
        else:
            passthrough.append((key, value))
    if len(payloads) <= 1:
        if payloads:
            passthrough.append((key, ("m", payloads[0], counts[0])))
        return passthrough
    folded, total = layer.partial_reduce(np.stack(payloads), np.asarray(counts))
    passthrough.append((key, ("m", folded, total)))
    return passthrough


def build_input_records(model: GNNModel, working_graph: Graph) -> List[Record]:
    """Ingest the (possibly shadow-expanded) node table into input records.

    This per-node scan is the expensive part of MapReduce preparation; a
    session builds the records once at ``prepare()`` time and replays them on
    every execution.  The rounds never mutate record arrays in place, so the
    cached records can be reused safely.
    """
    input_records: List[Record] = []
    for node_id in range(working_graph.num_nodes):
        neighbors = working_graph.out_neighbors(node_id).copy()
        edge_feats = None
        if working_graph.edge_features is not None:
            edge_feats = working_graph.edge_features[working_graph.out_edge_ids(node_id)]
        features = (working_graph.node_features[node_id]
                    if working_graph.node_features is not None
                    else np.zeros(model.encoder.in_features))
        input_records.append((node_id, (features, neighbors, edge_feats)))
    return input_records


def run_mapreduce_inference(model: GNNModel, graph: Graph, config: InferenceConfig,
                            plan: StrategyPlan, shadow_plan: Optional[ShadowNodePlan],
                            metrics: MetricsCollector,
                            input_records: Optional[List[Record]] = None,
                            layout: Optional[ClusterLayout] = None,
                            executor: Optional[Executor] = None) -> Dict[str, np.ndarray]:
    """Execute full-graph inference on the MapReduce backend.

    ``layout`` is the plan-cached :class:`~repro.cluster.layout.ClusterLayout`
    over the working graph; the scatter uses its owner table to resolve
    broadcast buckets (``_partition_fn`` routes int keys by the same modulo).
    ``executor`` is an optional shared :class:`~repro.cluster.executor.Executor`
    the round engine routes every mapper/reducer instance through (the
    backend passes its plan-cached one so a serving session reuses a single
    persistent process pool); ``None`` builds one from ``config.executor``.
    """
    working_graph = shadow_plan.graph if shadow_plan is not None else graph
    original_num_nodes = shadow_plan.original_num_nodes if shadow_plan is not None else graph.num_nodes
    if layout is not None and (layout.num_nodes != working_graph.num_nodes
                               or layout.num_partitions != config.num_workers):
        raise ValueError("layout does not match the working graph / worker count")

    engine = MapReduceEngine(
        num_mappers=config.num_workers,
        num_reducers=config.num_workers,
        metrics=metrics,
        partition_fn=_partition_fn,
        executor=executor if executor is not None else config.executor,
    )
    model.eval()

    if input_records is None:
        input_records = build_input_records(model, working_graph)

    records: List[Record] = input_records
    for layer_index in range(model.num_layers):
        job = GNNRoundJob(model, plan, shadow_plan, layer_index,
                          config.num_workers, original_num_nodes, layout=layout)
        records, _ = engine.run(job, records, phase=f"round_{layer_index}")

    scores = np.zeros((original_num_nodes, model.output_dim))
    for key, value in records:
        if isinstance(value, tuple) and value and value[0] == "o":
            scores[int(key)] = value[1]
    return {"scores": scores}


# --------------------------------------------------------------------------- #
# incremental inference: dependency-closure replay over the cached records
# --------------------------------------------------------------------------- #
def patch_input_records(input_records: List[Record], working_graph: Graph,
                        node_ids: np.ndarray) -> None:
    """Row-wise patch of the cached input records after a feature delta.

    ``input_records`` is id-indexed (``input_records[g][0] == g`` — the
    invariant :func:`build_input_records` establishes and the rounds never
    break), so refreshing the dirty rows is one direct scatter: each touched
    record gets a rebuilt value tuple carrying the working graph's current
    feature row, with its adjacency payload untouched.  ``node_ids`` must
    already be replica-closed (mirror rows are separate records).
    """
    features = working_graph.node_features
    for g in np.asarray(node_ids, dtype=np.int64).tolist():
        node_id, (_, nbrs, efeats) = input_records[g]
        if int(node_id) != g:
            raise RuntimeError(
                f"input_records are no longer id-indexed (record {g} is keyed "
                f"{node_id}); re-plan instead of patching")
        input_records[g] = (g, (features[g], nbrs, efeats))


def patch_record_adjacency(input_records: List[Record], working_graph: Graph,
                           source_ids: np.ndarray) -> None:
    """Splice an edge delta's adjacency changes into the cached records.

    ``source_ids`` lists the working-graph nodes whose *out-edge* set changed
    (removal survivors' sources plus the — already mirror-assigned — sources
    of appended edges).  Each touched record gets its neighbour array and
    edge-feature block rebuilt from the working graph's current adjacency
    index; feature rows are untouched.  Because
    :meth:`~repro.graph.graph.Graph._build_index` sorts edges by source with
    a *stable* argsort, the rebuilt payloads are byte-identical to what a
    fresh :func:`build_input_records` over the patched graph would produce.
    Requires the same id-indexed invariant as :func:`patch_input_records`.
    """
    edge_features = working_graph.edge_features
    for g in np.unique(np.asarray(source_ids, dtype=np.int64)).tolist():
        node_id, (features, _, _) = input_records[g]
        if int(node_id) != g:
            raise RuntimeError(
                f"input_records are no longer id-indexed (record {g} is keyed "
                f"{node_id}); re-plan instead of patching")
        nbrs = working_graph.out_neighbors(g).copy()
        efeats = None
        if edge_features is not None:
            efeats = edge_features[working_graph.out_edge_ids(g)]
        input_records[g] = (g, (features, nbrs, efeats))


def _filter_scatter_records(records: List[Record], keep: Set[int],
                            layout: Optional[ClusterLayout],
                            num_reducers: int) -> List[Record]:
    """Drop scattered messages bound outside ``keep`` (post shadow expansion).

    Plain ``("m", ...)`` messages and broadcast ``("r", ...)`` refs are kept
    iff their destination survives; broadcast ``("p", ...)`` payloads are kept
    only for ``(hub, bucket)`` pairs some surviving ref still needs, using the
    same bucket resolution the emitter used.
    """
    kept: List[Record] = []
    payloads: List[Record] = []
    hub_buckets: Set[Tuple[int, int]] = set()
    for key, value in records:
        if isinstance(key, tuple) and key and key[0] == "bc":
            payloads.append((key, value))
            continue
        dst = int(key)
        if dst not in keep:
            continue
        kept.append((key, value))
        if isinstance(value, tuple) and value and value[0] == "r":
            bucket = (int(layout.owner_of[dst]) if layout is not None
                      else dst % num_reducers)
            hub_buckets.add((int(value[1]), bucket))
    kept.extend((key, value) for key, value in payloads
                if (int(value[1]), int(key[1])) in hub_buckets)
    return kept


class IncrementalGNNRoundJob(GNNRoundJob):
    """A :class:`GNNRoundJob` restricted to a dirty-region dependency closure.

    ``compute_keep`` lists the nodes whose states round ``r`` must recompute
    (``T[r]``); state records of carrier-only nodes are dropped before the
    reduce, so a node outside the closure can never propagate a state built
    from an incomplete message set.  ``scatter_keep_by_layer[l]`` bounds the
    layer-``l`` scatter to the next round's closure — the filter runs after
    shadow-replica expansion, so mirror-bound copies survive exactly when the
    (replica-closed) closure contains the mirror.
    """

    def __init__(self, *args: Any, compute_keep: Optional[Set[int]] = None,
                 scatter_keep_by_layer: Optional[Dict[int, Set[int]]] = None,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.compute_keep = compute_keep
        self.scatter_keep_by_layer = scatter_keep_by_layer or {}

    def _emit_messages(self, layer_index: int, node_ids: np.ndarray, state: np.ndarray,
                       out_nbrs: List[np.ndarray], out_edge_feats: List[Optional[np.ndarray]],
                       context: TaskContext) -> List[Record]:
        records = super()._emit_messages(layer_index, node_ids, state,
                                         out_nbrs, out_edge_feats, context)
        keep = self.scatter_keep_by_layer.get(layer_index)
        if keep is None:
            return records
        return _filter_scatter_records(records, keep, self.layout, self.num_reducers)

    def reduce_partition(self, groups: List[Tuple[Any, List[Any]]],
                         context: TaskContext) -> Iterable[Record]:
        if self.compute_keep is not None:
            groups = [(key, values) for key, values in groups
                      if (isinstance(key, tuple) and key and key[0] == "bc")
                      or int(key) in self.compute_keep]
        return super().reduce_partition(groups, context)


def _in_neighbors_of(working_graph: Graph, node_ids: np.ndarray) -> np.ndarray:
    """Sources with an out-edge into ``node_ids`` (one isin pass over dst).

    ``dst`` arrays only ever carry original ids (mirror fan-out happens at
    scatter time), so a replica-closed ``node_ids`` — which always contains
    the origin of each of its mirrors — needs no extra translation here.
    """
    if node_ids.size == 0 or working_graph.num_edges == 0:
        return np.empty(0, dtype=np.int64)
    mask = np.isin(working_graph.dst, node_ids)
    return np.unique(working_graph.src[mask])


def run_mapreduce_inference_incremental(
        model: GNNModel, graph: Graph, config: InferenceConfig,
        plan: StrategyPlan, shadow_plan: Optional[ShadowNodePlan],
        metrics: MetricsCollector, input_records: List[Record],
        cached_scores: np.ndarray, feature_dirty: np.ndarray,
        topo_dirty: Optional[np.ndarray] = None,
        layout: Optional[ClusterLayout] = None,
        executor: Optional[Executor] = None) -> Dict[str, np.ndarray]:
    """Replay only the delta's dependency closure; splice the rest.

    ``cached_scores`` is the score matrix of the last full run on this plan
    (pre-delta scores are still exact for every node outside the delta's
    k-hop out-reach).  ``topo_dirty`` carries the destinations whose in-edge
    set an edge delta changed; they join the frontier at the first gather
    exactly as in :func:`~repro.inference.delta.expand_frontier`.  The
    restricted run recomputes the reach — walking the per-round closures
    described in the module docstring — and splices its output records into a
    copy of the cache.  Agreement with a full recompute is tolerance-level
    (~1e-15), not bit-exact; see the module docstring.
    """
    working_graph = shadow_plan.graph if shadow_plan is not None else graph
    num_layers = model.num_layers
    if topo_dirty is None:
        topo_dirty = np.empty(0, dtype=np.int64)

    def close(ids: np.ndarray) -> np.ndarray:
        ids = np.unique(np.asarray(ids, dtype=np.int64))
        if shadow_plan is None or not shadow_plan.has_mirrors:
            return ids
        return shadow_plan.replicas_of(ids)

    frontiers = expand_frontier(working_graph, feature_dirty, topo_dirty,
                                num_layers + 1, shadow_plan)
    if frontiers[num_layers].size == 0:
        return {"scores": cached_scores.copy()}

    # T[r]: nodes round r's reduce must recompute, walking backwards from the
    # changed final states; the input closure adds their message sources.
    targets: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * num_layers
    targets[num_layers - 1] = frontiers[num_layers]
    for r in range(num_layers - 1, 0, -1):
        targets[r - 1] = close(np.union1d(
            targets[r], _in_neighbors_of(working_graph, targets[r])))
    input_closure = close(np.union1d(
        targets[0], _in_neighbors_of(working_graph, targets[0])))

    engine = MapReduceEngine(
        num_mappers=config.num_workers,
        num_reducers=config.num_workers,
        metrics=metrics,
        partition_fn=_partition_fn,
        executor=executor if executor is not None else config.executor,
    )
    model.eval()

    original_num_nodes = (shadow_plan.original_num_nodes if shadow_plan is not None
                          else graph.num_nodes)
    target_sets = [set(t.tolist()) for t in targets]
    records: List[Record] = [input_records[int(g)] for g in input_closure]
    for layer_index in range(num_layers):
        keeps = {layer_index: target_sets[layer_index]}
        if layer_index + 1 < num_layers:
            keeps[layer_index + 1] = target_sets[layer_index + 1]
        job = IncrementalGNNRoundJob(
            model, plan, shadow_plan, layer_index, config.num_workers,
            original_num_nodes, layout=layout,
            compute_keep=target_sets[layer_index],
            scatter_keep_by_layer=keeps)
        records, _ = engine.run(job, records,
                                phase=f"incremental_round_{layer_index}")

    scores = cached_scores.copy()
    for key, value in records:
        if isinstance(value, tuple) and value and value[0] == "o":
            scores[int(key)] = value[1]
    return {"scores": scores}
