"""Streaming soak harness: continuous-ingest traces, fault injection, soaks.

The serving tier (:mod:`repro.serving` over :class:`repro.inference.SessionPool`)
exists to run *continuously* — a long-lived stream of interleaved feature and
edge deltas punctuated by inference ticks, with worker crashes and cache
evictions happening mid-stream.  Every other benchmark in this repo measures a
one-shot run or a single-delta tick; this package is the verification layer
for the steady state:

* :mod:`repro.streaming.workload` — seeded, fully reproducible delta/request
  traces (churn rate, feature/edge mix, tenant skew, temporal snapshots,
  sliding-window neighbourhoods);
* :mod:`repro.streaming.faults` — a seeded, replayable :class:`FaultPlan` of
  pluggable fault hooks: kill a ``ProcessExecutor`` worker mid-stream, delay a
  tick's deltas into the next tick's burst, force a pool eviction;
* :mod:`repro.streaming.soak` — the driver: runs N simulated seconds of the
  trace against a :class:`~repro.serving.ServingGateway` (or a bare pool),
  checks **every** tick's scores against a paired un-faulted oracle session,
  and emits a structured :class:`SoakReport` (``BENCH_streaming_soak.json``).

The standing contract (docs/ARCHITECTURE.md, contract #10): a faulted stream
serves scores identical to its un-faulted oracle — bit-identical on ``pregel``,
within 1e-9 on ``mapreduce`` — at every tick, including the tick that
recovers from an injected worker crash.
"""

from repro.streaming.faults import (
    DeltaSchedule,
    FaultContext,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRecord,
    available_faults,
    register_fault,
)
from repro.streaming.soak import (
    ARTIFACT_NAME,
    SOAK_SECONDS_ENV,
    SOAK_SEED_ENV,
    SoakConfig,
    SoakReport,
    dump_report,
    run_soak,
    soak_seconds_from_env,
    soak_seed_from_env,
)
from repro.streaming.workload import (
    WorkloadConfig,
    WorkloadEvent,
    WorkloadTrace,
    generate_trace,
)

__all__ = [
    "ARTIFACT_NAME",
    "SOAK_SECONDS_ENV",
    "SOAK_SEED_ENV",
    "DeltaSchedule",
    "FaultContext",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "SoakConfig",
    "SoakReport",
    "WorkloadConfig",
    "WorkloadEvent",
    "WorkloadTrace",
    "available_faults",
    "dump_report",
    "generate_trace",
    "register_fault",
    "run_soak",
    "soak_seconds_from_env",
    "soak_seed_from_env",
]
