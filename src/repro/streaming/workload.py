"""Seeded, reproducible continuous-ingest traces for the soak harness.

A :class:`WorkloadTrace` is the whole stream, decided up front from one seed:
every :class:`~repro.inference.delta.GraphDelta`, every infer request, every
temporal snapshot, for every tenant, at every simulated second ("tick").
Deciding the stream ahead of time is what makes a soak run *replayable* —
the same seed produces byte-identical delta arrays and therefore the same
:func:`trace digest <WorkloadTrace.digest>`, so two runs of one seed are
comparing the same stream, not two similar ones.

Generation maintains one authoritative **virtual edge list** per tenant —
surviving base edges in original order, then surviving appended edges in
arrival order, exactly the order :func:`~repro.inference.delta.apply_delta_to_graph`
and :class:`~repro.inference.delta.DeltaBuffer` produce — so every
``removed_edge_ids`` position in the trace is valid at the moment its delta
applies, whether the consumer applies deltas eagerly or coalesces them.

Scenario knobs beyond plain churn (both genuinely new relative to the paper's
one-shot evaluation):

* **temporal snapshots** (``snapshot_every``): periodic full-inference events
  whose score digests the soak report records, turning the stream into a
  sequence of named graph versions whose score trajectory is comparable
  across runs;
* **sliding-window neighbourhoods** (``sliding_window``): each tick appends
  fresh edges and expires every appended edge older than the window, the
  "only the last W seconds of interactions count" regime of fraud/feed
  graphs.  Base edges form a stable backbone and never expire.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.inference.delta import GraphDelta

#: Event kinds a trace is made of.
DELTA = "delta"
INFER = "infer"
SNAPSHOT = "snapshot"


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a continuous-ingest stream (all of it derived from ``seed``).

    One tick models one simulated second.  Every tick emits
    ``deltas_per_tick`` delta events spread over ``tenants`` tenants by a
    Zipf-like skew (``tenant_skew=0`` is uniform; larger values concentrate
    churn on low-numbered tenants).  Every ``infer_every`` ticks each tenant
    issues one inference request (``incremental_fraction`` of them in
    incremental mode).  ``feature_fraction`` splits delta events between
    feature refreshes and edge churn; edge removals never shrink a tenant
    below ``min_edges`` edges.
    """

    seed: int = 0
    ticks: int = 30
    tenants: int = 2
    deltas_per_tick: int = 2
    infer_every: int = 2
    feature_fraction: float = 0.7
    incremental_fraction: float = 0.5
    tenant_skew: float = 1.0
    max_feature_rows: int = 6
    max_edges_added: int = 4
    max_edges_removed: int = 2
    min_edges: int = 8
    snapshot_every: int = 0
    sliding_window: int = 0
    window_edges_per_tick: int = 2

    def __post_init__(self) -> None:
        if self.ticks <= 0:
            raise ValueError("ticks must be positive")
        if self.tenants <= 0:
            raise ValueError("tenants must be positive")
        if self.deltas_per_tick < 0:
            raise ValueError("deltas_per_tick must be >= 0")
        if self.infer_every <= 0:
            raise ValueError("infer_every must be positive")
        if not 0.0 <= self.feature_fraction <= 1.0:
            raise ValueError("feature_fraction must lie in [0, 1]")
        if not 0.0 <= self.incremental_fraction <= 1.0:
            raise ValueError("incremental_fraction must lie in [0, 1]")
        if self.tenant_skew < 0.0:
            raise ValueError("tenant_skew must be >= 0")
        if self.snapshot_every < 0 or self.sliding_window < 0:
            raise ValueError("snapshot_every / sliding_window must be >= 0")


@dataclass(frozen=True)
class WorkloadEvent:
    """One timed stream event: a delta, an infer request, or a snapshot."""

    tick: int
    tenant: int
    kind: str                            #: DELTA | INFER | SNAPSHOT
    mode: str = "full"                   #: infer mode (infer events only)
    delta: Optional[GraphDelta] = None   #: payload (delta events only)


class _VirtualEdges:
    """Per-tenant virtual edge list: the birth tick of every live position.

    Base edges carry birth ``-1`` (never expired by the sliding window);
    appended edges carry the tick that added them.  :meth:`apply` replays a
    delta with the exact removal-before-append order of
    :func:`~repro.inference.delta.apply_delta_to_graph`, so positions handed
    out against this model are valid at application time.
    """

    def __init__(self, graph: Graph) -> None:
        self.num_nodes = graph.num_nodes
        self.edge_feature_dim = (None if graph.edge_features is None
                                 else int(graph.edge_features.shape[1]))
        self.births = np.full(graph.num_edges, -1, dtype=np.int64)

    @property
    def num_edges(self) -> int:
        return int(self.births.size)

    def expired_positions(self, tick: int, window: int) -> np.ndarray:
        """Positions of appended edges older than ``window`` ticks."""
        born = self.births
        return np.nonzero((born >= 0) & (born <= tick - window))[0]

    def apply(self, delta: GraphDelta, tick: int) -> None:
        births = self.births
        if delta.removed_edge_ids is not None and delta.removed_edge_ids.size:
            keep = np.ones(births.size, dtype=bool)
            keep[delta.removed_edge_ids] = False
            births = births[keep]
        added = 0 if delta.added_src is None else int(delta.added_src.size)
        if added:
            births = np.concatenate(
                [births, np.full(added, tick, dtype=np.int64)])
        self.births = births


@dataclass(frozen=True)
class WorkloadTrace:
    """The fully materialised stream plus its reproducibility digest."""

    config: WorkloadConfig
    events: Tuple[WorkloadEvent, ...]
    digest: int
    _by_tick: Dict[int, List[WorkloadEvent]] = field(
        default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        for event in self.events:
            self._by_tick.setdefault(event.tick, []).append(event)

    @property
    def num_ticks(self) -> int:
        return self.config.ticks

    def per_tick(self, tick: int) -> List[WorkloadEvent]:
        """Events of one tick, emission (= application) order."""
        return list(self._by_tick.get(tick, []))

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    def describe(self) -> str:
        return (f"trace[seed={self.config.seed}]: {self.config.ticks} tick(s) x "
                f"{self.config.tenants} tenant(s), {self.count(DELTA)} delta(s), "
                f"{self.count(INFER)} infer(s), {self.count(SNAPSHOT)} "
                f"snapshot(s), digest {self.digest:#010x}")


def _tenant_weights(config: WorkloadConfig) -> np.ndarray:
    """Zipf-like tenant selection weights (``skew=0`` degrades to uniform)."""
    ranks = np.arange(1, config.tenants + 1, dtype=np.float64)
    weights = ranks ** -config.tenant_skew
    return weights / weights.sum()


def _digest_event(crc: int, event: WorkloadEvent) -> int:
    header = f"{event.tick}|{event.tenant}|{event.kind}|{event.mode}".encode()
    crc = zlib.crc32(header, crc)
    delta = event.delta
    if delta is not None:
        for array in (delta.node_ids, delta.node_features, delta.added_src,
                      delta.added_dst, delta.added_edge_features,
                      delta.removed_edge_ids):
            if array is not None:
                crc = zlib.crc32(np.ascontiguousarray(array), crc)
    return crc


def _feature_delta(rng: np.random.Generator, model: _VirtualEdges,
                   config: WorkloadConfig, feature_dim: int) -> GraphDelta:
    size = int(rng.integers(1, config.max_feature_rows + 1))
    size = min(size, model.num_nodes)
    ids = rng.choice(model.num_nodes, size=size, replace=False)
    return GraphDelta(node_ids=ids,
                      node_features=rng.standard_normal((size, feature_dim)))


def _edge_delta(rng: np.random.Generator, model: _VirtualEdges,
                config: WorkloadConfig) -> GraphDelta:
    add = int(rng.integers(1, config.max_edges_added + 1))
    room = max(0, model.num_edges - config.min_edges)
    remove = min(int(rng.integers(0, config.max_edges_removed + 1)), room)
    removed = (rng.choice(model.num_edges, size=remove, replace=False)
               if remove else None)
    added_edge_features = None
    if model.edge_feature_dim is not None:
        added_edge_features = rng.standard_normal((add, model.edge_feature_dim))
    return GraphDelta(
        added_src=rng.integers(0, model.num_nodes, size=add),
        added_dst=rng.integers(0, model.num_nodes, size=add),
        added_edge_features=added_edge_features,
        removed_edge_ids=removed)


def _window_delta(rng: np.random.Generator, model: _VirtualEdges,
                  config: WorkloadConfig, tick: int) -> Optional[GraphDelta]:
    """One sliding-window tick: expire old appended edges, add fresh ones."""
    expired = model.expired_positions(tick, config.sliding_window)
    add = config.window_edges_per_tick
    if add == 0 and expired.size == 0:
        return None
    added_edge_features = None
    if add and model.edge_feature_dim is not None:
        added_edge_features = rng.standard_normal((add, model.edge_feature_dim))
    return GraphDelta(
        added_src=rng.integers(0, model.num_nodes, size=add) if add else None,
        added_dst=rng.integers(0, model.num_nodes, size=add) if add else None,
        added_edge_features=added_edge_features,
        removed_edge_ids=expired if expired.size else None)


def generate_trace(graphs: Sequence[Graph],
                   config: WorkloadConfig) -> WorkloadTrace:
    """Materialise the whole stream for ``graphs`` (one per tenant).

    The graphs are only *read* (node/edge counts, feature widths) — the trace
    never holds a reference to them, so the caller is free to hand twin
    copies of the same content to a faulted run and its oracle and replay one
    trace against both.
    """
    if len(graphs) != config.tenants:
        raise ValueError(f"config names {config.tenants} tenant(s) but "
                         f"{len(graphs)} graph(s) were given")
    feature_dims: List[int] = []
    for tenant, graph in enumerate(graphs):
        if graph.node_features is None:
            raise ValueError(f"tenant {tenant}'s graph has no node features; "
                             "the workload generator emits feature deltas")
        feature_dims.append(int(graph.node_features.shape[1]))
    rng = np.random.default_rng(config.seed)
    models = [_VirtualEdges(graph) for graph in graphs]
    weights = _tenant_weights(config)
    events: List[WorkloadEvent] = []
    crc = zlib.crc32(f"workload|{config.seed}|{config.ticks}|"
                     f"{config.tenants}".encode())

    def emit(event: WorkloadEvent) -> None:
        nonlocal crc
        if event.delta is not None:
            models[event.tenant].apply(event.delta, event.tick)
        events.append(event)
        crc = _digest_event(crc, event)

    for tick in range(config.ticks):
        if config.sliding_window:
            for tenant in range(config.tenants):
                delta = _window_delta(rng, models[tenant], config, tick)
                if delta is not None:
                    emit(WorkloadEvent(tick=tick, tenant=tenant, kind=DELTA,
                                       delta=delta))
        for _ in range(config.deltas_per_tick):
            tenant = int(rng.choice(config.tenants, p=weights))
            if rng.random() < config.feature_fraction:
                delta = _feature_delta(rng, models[tenant], config,
                                       feature_dims[tenant])
            else:
                delta = _edge_delta(rng, models[tenant], config)
            emit(WorkloadEvent(tick=tick, tenant=tenant, kind=DELTA,
                               delta=delta))
        if tick % config.infer_every == config.infer_every - 1:
            for tenant in range(config.tenants):
                mode = ("incremental"
                        if rng.random() < config.incremental_fraction
                        else "full")
                emit(WorkloadEvent(tick=tick, tenant=tenant, kind=INFER,
                                   mode=mode))
        if config.snapshot_every and (
                tick % config.snapshot_every == config.snapshot_every - 1):
            for tenant in range(config.tenants):
                emit(WorkloadEvent(tick=tick, tenant=tenant, kind=SNAPSHOT,
                                   mode="full"))
    return WorkloadTrace(config=config, events=tuple(events), digest=crc)
