"""Seeded, replayable fault injection for the streaming soak harness.

A :class:`FaultPlan` is a pre-decided schedule of :class:`FaultEvent`\\ s —
like the workload trace, it is fully determined by its seed, so a soak run
can be replayed fault-for-fault.  Each event names a registered **fault
hook** (:func:`register_fault`); the built-ins cover the failure modes the
serving tier promises to survive:

* ``kill_worker`` — SIGKILL one live ``ProcessExecutor`` worker of the
  tenant's pooled session, mid-stream.  The next execution on that session
  observes the corpse, raises
  :class:`~repro.cluster.executor.WorkerCrashError`, resets the worker pool,
  and the retry respawns — the end-to-end recovery path under load.  On the
  serial substrate (no worker processes) the hook degrades to a recorded
  no-op, so one fault plan runs under both CI executor legs.
* ``evict_tenant`` — force the tenant's session out of the pool
  (``pool.evict``); the next touch transparently re-prepares from the
  tenant's graph handle, which already carries every mirrored delta.
* ``delay_deltas`` — hold this tick's deltas for the tenant and release them
  as a burst merged into the next tick (arrival jitter; the burst lands as
  one bigger coalesced flush).

Hooks are pluggable: anything callable as ``hook(ctx: FaultContext) -> str``
can be registered under a new kind and scheduled through a plan.  The
returned string is a human-readable outcome note; notes may contain
non-deterministic detail (pids), so the soak report keeps them separate from
the deterministic fault *schedule*.
"""

from __future__ import annotations

import os
import signal
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.inference.pool import SessionPool


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire ``kind`` against ``tenant`` at ``tick``.

    ``slot`` disambiguates within the target (e.g. which worker process the
    ``kill_worker`` hook murders); hooks are free to ignore it.
    """

    tick: int
    kind: str
    tenant: int
    slot: int = 0


class DeltaSchedule:
    """Arrival-time control the ``delay_deltas`` hook steers.

    The soak driver consults :meth:`is_delayed` before delivering a tick's
    deltas; a delayed (tenant, tick) pair is carried into the next tick and
    delivered ahead of that tick's own deltas — a burst, coalesced by the
    session's :class:`~repro.inference.delta.DeltaBuffer` into one flush.
    The shift applies to the *logical stream* (the driver feeds the faulted
    side and its oracle identically), so delaying arrival never breaks the
    faulted-equals-oracle contract — it only changes how much work one flush
    absorbs.
    """

    def __init__(self) -> None:
        self._delayed: Set[Tuple[int, int]] = set()

    def delay(self, tenant: int, tick: int) -> None:
        self._delayed.add((tenant, tick))

    def is_delayed(self, tenant: int, tick: int) -> bool:
        return (tenant, tick) in self._delayed


@dataclass
class FaultContext:
    """Everything a fault hook may act on when it fires."""

    event: FaultEvent
    pool: SessionPool
    graph: Graph           #: the target tenant's graph handle
    schedule: DeltaSchedule


FaultHook = Callable[[FaultContext], str]

_HOOKS: Dict[str, FaultHook] = {}


def register_fault(kind: str) -> Callable[[FaultHook], FaultHook]:
    """Register ``hook`` under ``kind`` (decorator); kinds are unique."""

    def decorator(hook: FaultHook) -> FaultHook:
        if kind in _HOOKS:
            raise ValueError(f"fault kind {kind!r} is already registered")
        _HOOKS[kind] = hook
        return hook

    return decorator


def available_faults() -> Set[str]:
    """Registered fault kinds (built-ins plus plugins)."""
    return set(_HOOKS)


@register_fault("kill_worker")
def _kill_worker(ctx: FaultContext) -> str:
    """SIGKILL one live worker process of the tenant's pooled session."""
    if ctx.graph not in ctx.pool:
        return "no-op: tenant has no live pooled session"
    session = ctx.pool.session_for(ctx.graph)
    plan = session.plan
    engine = None if plan is None else plan.state.get("engine")
    executor = getattr(engine, "_executor", None)
    processes = list(getattr(executor, "_processes", []) or [])
    live = [proc for proc in processes if proc.is_alive()]
    if not live:
        return "no-op: no live worker processes (serial substrate)"
    victim = live[ctx.event.slot % len(live)]
    pid = victim.pid
    os.kill(pid, signal.SIGKILL)
    # Wait for the corpse so the *next* execution deterministically observes
    # the dead pipe (WorkerCrashError) instead of racing the kill.
    victim.join(timeout=10.0)
    return f"killed worker pid {pid} ({len(live)} live before the kill)"


@register_fault("evict_tenant")
def _evict_tenant(ctx: FaultContext) -> str:
    """Force the tenant's session out of the pool (close + re-prepare later)."""
    if ctx.pool.evict(ctx.graph):
        return "evicted the tenant's pooled session"
    return "no-op: tenant not cached"


@register_fault("delay_deltas")
def _delay_deltas(ctx: FaultContext) -> str:
    """Shift this tick's deltas into the next tick's burst."""
    ctx.schedule.delay(ctx.event.tenant, ctx.event.tick)
    return "delayed this tick's deltas into the next tick's burst"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable schedule of fault events.

    :meth:`generate` derives the whole schedule from ``(seed, ticks,
    tenants, kinds, rate)``; :attr:`digest` fingerprints it, so two soak
    runs can assert they injected byte-identical failure sequences.
    """

    seed: int
    ticks: int
    events: Tuple[FaultEvent, ...]

    @classmethod
    def generate(cls, seed: int, ticks: int, tenants: int,
                 kinds: Sequence[str] = ("kill_worker",),
                 rate: float = 0.1) -> "FaultPlan":
        """One fault per tick with probability ``rate``, kinds round-drawn.

        Every named kind must already be registered — an unknown kind fails
        here, at plan time, not ticks into a soak.
        """
        if not kinds:
            raise ValueError("kinds must name at least one fault hook")
        unknown = sorted(set(kinds) - available_faults())
        if unknown:
            raise ValueError(f"unregistered fault kind(s): {unknown}; "
                             f"known: {sorted(available_faults())}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must lie in [0, 1]")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        for tick in range(ticks):
            if rng.random() >= rate:
                continue
            events.append(FaultEvent(
                tick=tick,
                kind=str(kinds[int(rng.integers(0, len(kinds)))]),
                tenant=int(rng.integers(0, tenants)),
                slot=int(rng.integers(0, 64))))
        return cls(seed=seed, ticks=ticks, events=tuple(events))

    @property
    def digest(self) -> int:
        """CRC32 over the full schedule — the replayability fingerprint."""
        crc = zlib.crc32(f"faults|{self.seed}|{self.ticks}".encode())
        for event in self.events:
            crc = zlib.crc32(
                f"{event.tick}|{event.kind}|{event.tenant}|{event.slot}"
                .encode(), crc)
        return crc

    def events_at(self, tick: int) -> List[FaultEvent]:
        return [event for event in self.events if event.tick == tick]

    def schedule(self) -> List[Dict[str, object]]:
        """The deterministic schedule as JSON-ready rows."""
        return [{"tick": event.tick, "kind": event.kind,
                 "tenant": event.tenant, "slot": event.slot}
                for event in self.events]

    def describe(self) -> str:
        kinds = sorted({event.kind for event in self.events})
        return (f"fault plan[seed={self.seed}]: {len(self.events)} event(s) "
                f"over {self.ticks} tick(s) ({', '.join(kinds) or 'none'}), "
                f"digest {self.digest:#010x}")


@dataclass(frozen=True)
class FaultRecord:
    """What actually happened when a scheduled fault fired."""

    tick: int
    kind: str
    tenant: int
    note: str      #: hook outcome; may carry non-deterministic detail (pids)


class FaultInjector:
    """Fires a :class:`FaultPlan`'s events and records their outcomes."""

    def __init__(self, plan: FaultPlan) -> None:
        unknown = sorted({event.kind for event in plan.events}
                         - available_faults())
        if unknown:
            raise ValueError(f"plan schedules unregistered fault kind(s): "
                             f"{unknown}")
        self.plan = plan
        self.records: List[FaultRecord] = []

    def fire(self, ctx: FaultContext) -> FaultRecord:
        """Run the hook for ``ctx.event`` and append the outcome record."""
        hook = _HOOKS[ctx.event.kind]
        note = hook(ctx)
        record = FaultRecord(tick=ctx.event.tick, kind=ctx.event.kind,
                             tenant=ctx.event.tenant, note=note)
        self.records.append(record)
        return record
