"""The soak driver: N simulated seconds of stream vs. an un-faulted oracle.

:func:`run_soak` replays one seeded :class:`~repro.streaming.workload.WorkloadTrace`
against **two** stacks at once:

* the *faulted* side — a :class:`~repro.inference.pool.SessionPool` (driven
  through the async :class:`~repro.serving.ServingGateway` by default, or
  bare) with a :class:`~repro.streaming.faults.FaultPlan` firing mid-stream;
* the *oracle* side — a bare pool fed the identical logical stream, no
  faults, on the serial substrate.

Every inference tick's scores are compared across the two sides on the spot:
bit-identical for exact backends (``pregel``, ``khop``), within
``tolerance`` (1e-9) for ``mapreduce`` — the repo's standing equivalence
contract, now holding *through* injected worker kills, forced evictions and
delta-arrival bursts (docs/ARCHITECTURE.md contract #10).  A
:class:`~repro.cluster.executor.WorkerCrashError` surfacing from the faulted
side is caught, counted, and the tick retried — the respawned execution must
still match the oracle.

The run finishes with a structured :class:`SoakReport`.  Its
:meth:`~SoakReport.deterministic_summary` — trace digest, fault schedule,
event/crash/mismatch counters, temporal snapshot digests, shm segment
census — is identical across two runs of one seed; measured wall-clock
fields (p50/p99 tick latency, RSS) sit outside that contract.
:func:`dump_report` writes the whole report as ``BENCH_streaming_soak.json``
(honouring ``$REPRO_BENCH_ARTIFACT_DIR``), the serving tier's perf-trajectory
artifact.

Environment knobs (read by the pytest/benchmark wrappers, not by
:func:`run_soak` itself): ``$REPRO_SOAK_SECONDS`` scales how many simulated
seconds the soak runs (one tick = one simulated second) and
``$REPRO_SOAK_SEED`` reseeds the whole stream + fault schedule.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.executor import WorkerCrashError, default_executor_name
from repro.gnn.model import GNNModel, build_model
from repro.graph.generators import powerlaw_graph
from repro.graph.graph import Graph
from repro.inference.config import InferenceConfig, StrategyConfig
from repro.inference.delta import GraphDelta
from repro.inference.pool import SessionPool
from repro.inference.session import InferenceResult
from repro.serving.gateway import ServingGateway
from repro.serving.metrics import LatencyWindow
from repro.streaming.faults import (
    DeltaSchedule,
    FaultContext,
    FaultInjector,
    FaultPlan,
)
from repro.streaming.workload import (
    DELTA,
    INFER,
    SNAPSHOT,
    WorkloadConfig,
    WorkloadTrace,
    generate_trace,
)

ARTIFACT_NAME = "BENCH_streaming_soak.json"
SOAK_SECONDS_ENV = "REPRO_SOAK_SECONDS"
SOAK_SEED_ENV = "REPRO_SOAK_SEED"

#: backends whose faulted-vs-oracle comparison is bit-exact by contract.
EXACT_BACKENDS = {"pregel", "khop"}


def _int_from_env(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name}={raw!r} is not an integer") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def soak_seconds_from_env(default: int = 30) -> int:
    """``$REPRO_SOAK_SECONDS`` (simulated seconds = ticks), or ``default``."""
    return _int_from_env(SOAK_SECONDS_ENV, default)


def soak_seed_from_env(default: int = 0) -> int:
    """``$REPRO_SOAK_SEED``, or ``default`` (0 is a valid seed)."""
    raw = os.environ.get(SOAK_SEED_ENV)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{SOAK_SEED_ENV}={raw!r} is not an integer") from None


@dataclass(frozen=True)
class SoakConfig:
    """One soak run: workload shape, fault plan, stack under test."""

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    faults: Optional[FaultPlan] = None
    backend: str = "pregel"
    #: Substrate of the faulted side; ``None`` follows ``$REPRO_EXECUTOR``.
    executor: Optional[str] = None
    #: The oracle always runs un-faulted on this substrate (scores are
    #: contract-identical across executors, so serial keeps the soak cheap).
    oracle_executor: str = "serial"
    num_workers: int = 4
    #: Drive the faulted side through the async gateway (the production
    #: front-end) or call the pool directly.
    use_gateway: bool = True
    pool_capacity: int = 8
    #: A tick that keeps crashing is retried at most this many times before
    #: the soak gives up and re-raises — recovery must be prompt, not eventual.
    max_recovery_attempts: int = 3
    graph_nodes: int = 300
    avg_degree: float = 4.0
    feature_dim: int = 8
    num_classes: int = 4
    #: Score-comparison tolerance vs the oracle; ``None`` picks 0.0 for the
    #: exact backends and 1e-9 otherwise (the repo's standing contract).
    tolerance: Optional[float] = None
    #: Pinned high by default so edge churn cannot flip the hub set and force
    #: a mid-soak re-plan — the regime where in-place edge patching (and the
    #: shm-segment ceiling it guarantees) is the contract under test.
    hub_threshold_override: Optional[int] = 1_000_000
    #: Run the faulted and oracle stacks with the shadow-node rewrite on.
    #: Edge churn must stay in place under shadow too (position-stable mirror
    #: assignment), so soaks gate ``SoakReport.replans`` at zero either way.
    shadow_nodes: bool = False

    def resolved_tolerance(self) -> float:
        if self.tolerance is not None:
            return self.tolerance
        return 0.0 if self.backend in EXACT_BACKENDS else 1e-9

    def resolved_executor(self) -> str:
        return self.executor or default_executor_name()


@dataclass
class SoakReport:
    """Everything one soak run measured, JSON-ready.

    :meth:`deterministic_summary` is the replayability contract: identical
    across two runs of one :class:`SoakConfig` on one machine.  The measured
    fields (latency percentiles, wall clock, RSS, fault notes with pids) sit
    outside it.
    """

    backend: str
    executor: str
    oracle_executor: str
    use_gateway: bool
    seed: int
    ticks: int
    tenants: int
    trace_digest: int
    fault_digest: Optional[int]
    trace_deltas: int
    trace_infers: int
    trace_snapshots: int
    deltas_delivered: int
    infers_served: int
    oracle_checks: int
    mismatches: int
    first_mismatch_tick: int           #: -1 when every check matched
    crashes: int                       #: WorkerCrashError ticks observed
    recoveries: int                    #: crashed ticks that then succeeded
    unrecovered: int                   #: crashed ticks that exhausted retries
    recovery_attempts: List[int]
    fault_schedule: List[Dict[str, object]]
    fault_notes: List[str]
    snapshot_digests: Dict[str, List[int]]
    max_shm_segments: int
    final_shm_segments: int
    #: Highest per-tick census of delta-forced full re-plans summed over the
    #: faulted pool's live sessions (an evicted session takes its count with
    #: it, so on fault-free runs this equals the total).  The stable-hub SLO
    #: gate asserts 0: edge churn that preserves the hub set must patch in
    #: place, never re-plan.
    replans: int
    max_worker_processes: int
    p50_tick_seconds: float
    p99_tick_seconds: float
    mean_tick_seconds: float
    wall_seconds: float
    max_rss_bytes: int

    @property
    def clean(self) -> bool:
        """No mismatch, no unrecovered crash — the soak's pass criterion."""
        return self.mismatches == 0 and self.unrecovered == 0

    def deterministic_summary(self) -> Dict[str, object]:
        """The seed-reproducible slice of the report (no wall-clock fields)."""
        return {
            "backend": self.backend,
            "executor": self.executor,
            "use_gateway": self.use_gateway,
            "seed": self.seed,
            "ticks": self.ticks,
            "tenants": self.tenants,
            "trace_digest": self.trace_digest,
            "fault_digest": self.fault_digest,
            "trace_deltas": self.trace_deltas,
            "trace_infers": self.trace_infers,
            "trace_snapshots": self.trace_snapshots,
            "deltas_delivered": self.deltas_delivered,
            "infers_served": self.infers_served,
            "oracle_checks": self.oracle_checks,
            "mismatches": self.mismatches,
            "first_mismatch_tick": self.first_mismatch_tick,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "unrecovered": self.unrecovered,
            "recovery_attempts": list(self.recovery_attempts),
            "fault_schedule": [dict(row) for row in self.fault_schedule],
            "snapshot_digests": {tenant: list(digests) for tenant, digests
                                 in self.snapshot_digests.items()},
            "max_shm_segments": self.max_shm_segments,
            "final_shm_segments": self.final_shm_segments,
            "replans": self.replans,
        }

    def to_dict(self) -> Dict[str, object]:
        """The full report (deterministic summary + measured fields)."""
        payload = self.deterministic_summary()
        payload.update({
            "oracle_executor": self.oracle_executor,
            "fault_notes": list(self.fault_notes),
            "max_worker_processes": self.max_worker_processes,
            "p50_tick_seconds": self.p50_tick_seconds,
            "p99_tick_seconds": self.p99_tick_seconds,
            "mean_tick_seconds": self.mean_tick_seconds,
            "wall_seconds": self.wall_seconds,
            "max_rss_bytes": self.max_rss_bytes,
        })
        return payload

    def describe(self) -> str:
        front = "gateway" if self.use_gateway else "bare pool"
        return (f"soak[{self.backend}/{self.executor}, {front}]: "
                f"{self.ticks} tick(s), {self.deltas_delivered} delta(s), "
                f"{self.infers_served} infer(s), {self.oracle_checks} oracle "
                f"check(s) / {self.mismatches} mismatch(es), {self.crashes} "
                f"crash(es) ({self.recoveries} recovered), "
                f"{self.replans} re-plan(s), shm "
                f"{self.max_shm_segments} max / {self.final_shm_segments} "
                f"final, p50 {self.p50_tick_seconds * 1e3:.1f} ms / "
                f"p99 {self.p99_tick_seconds * 1e3:.1f} ms, "
                f"{self.wall_seconds:.2f}s wall")


def dump_report(report: SoakReport,
                directory: Optional[str] = None) -> Path:
    """Write ``BENCH_streaming_soak.json``; returns the written path.

    ``directory`` overrides ``$REPRO_BENCH_ARTIFACT_DIR`` (default: CWD) —
    the same artifact convention every other benchmark uses.
    """
    target = Path(directory or os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
    target.mkdir(parents=True, exist_ok=True)
    path = target / ARTIFACT_NAME
    path.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return path


# --------------------------------------------------------------------------- #
# the driver
# --------------------------------------------------------------------------- #
def _make_config(cfg: SoakConfig, executor: str) -> InferenceConfig:
    return InferenceConfig(
        backend=cfg.backend, num_workers=cfg.num_workers, executor=executor,
        strategies=StrategyConfig(
            partial_gather=True, broadcast=False,
            shadow_nodes=cfg.shadow_nodes,
            hub_threshold_override=cfg.hub_threshold_override))


def _tenant_graphs(cfg: SoakConfig) -> Tuple[List[Graph], List[Graph]]:
    """Twin (faulted, oracle) graph copies per tenant — same content, own
    arrays, so the two sides' mirrored deltas never alias."""
    faulted: List[Graph] = []
    oracle: List[Graph] = []
    for tenant in range(cfg.workload.tenants):
        seed = cfg.workload.seed * 1009 + 31 * tenant
        for side in (faulted, oracle):
            side.append(powerlaw_graph(
                num_nodes=cfg.graph_nodes, avg_degree=cfg.avg_degree,
                skew="out", feature_dim=cfg.feature_dim,
                num_classes=cfg.num_classes, seed=seed))
    return faulted, oracle


def _make_model(cfg: SoakConfig) -> GNNModel:
    return build_model("gcn", cfg.feature_dim, 16, cfg.num_classes,
                       num_layers=2, seed=cfg.workload.seed)


def _pool_resource_census(pool: SessionPool) -> Tuple[int, int]:
    """(shared-memory segments, live worker processes) across pooled plans.

    Counts the parent-side :class:`~repro.cluster.executor.SharedArrayPack`
    segments of every pooled session's engine — the number the PR-5
    segment-leak fix bounds: wholesale array swaps (edge-delta churn)
    *replace* a segment under its key instead of accreting new ones, so the
    census must plateau over arbitrarily many edge-delta ticks.
    """
    segments = 0
    processes = 0
    for session in pool.sessions():
        plan = session.plan
        if plan is None:
            continue
        engine = plan.state.get("engine")
        pack = getattr(engine, "_shm_pack", None)
        if pack is not None:
            segments += len(getattr(pack, "_segments", {}))
        executor = getattr(engine, "_executor", None)
        for proc in list(getattr(executor, "_processes", []) or []):
            if proc.is_alive():
                processes += 1
    return segments, processes


def _current_rss_bytes() -> int:
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        import resource
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _scores_digest(scores: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(scores))


SubmitFn = Callable[[int, GraphDelta], Awaitable[None]]
InferFn = Callable[[int, str], Awaitable[InferenceResult]]


class _SoakState:
    """Mutable counters one soak run accumulates tick by tick."""

    def __init__(self) -> None:
        self.deltas_delivered = 0
        self.infers_served = 0
        self.oracle_checks = 0
        self.mismatches = 0
        self.first_mismatch_tick = -1
        self.crashes = 0
        self.recoveries = 0
        self.unrecovered = 0
        self.recovery_attempts: List[int] = []
        self.snapshot_digests: Dict[str, List[int]] = {}
        self.max_shm_segments = 0
        self.final_shm_segments = 0
        self.replans = 0
        self.max_worker_processes = 0
        self.max_rss_bytes = 0
        self.window = LatencyWindow(maxlen=4096)


async def _replay(cfg: SoakConfig, trace: WorkloadTrace, pool: SessionPool,
                  graphs: Sequence[Graph], oracle_pool: SessionPool,
                  oracle_graphs: Sequence[Graph], submit: SubmitFn,
                  infer: InferFn, state: _SoakState,
                  injector: Optional[FaultInjector]) -> None:
    tolerance = cfg.resolved_tolerance()
    schedule = DeltaSchedule()
    carryover: Dict[int, List[GraphDelta]] = {}

    async def deliver(tenant: int, delta: GraphDelta) -> None:
        # The logical stream feeds both sides identically — the oracle's
        # bare pool sees the very delta the faulted side coalesces.
        await submit(tenant, delta)
        oracle_pool.apply_delta(oracle_graphs[tenant], delta, defer=True)
        state.deltas_delivered += 1

    for tick in range(trace.num_ticks):
        if injector is not None and cfg.faults is not None:
            for event in cfg.faults.events_at(tick):
                injector.fire(FaultContext(
                    event=event, pool=pool, graph=graphs[event.tenant],
                    schedule=schedule))
        # Deltas a delay fault held back last tick arrive first: a burst the
        # session's DeltaBuffer folds into one flush with this tick's own.
        for tenant in sorted(carryover):
            for delta in carryover[tenant]:
                await deliver(tenant, delta)
        carryover.clear()
        for event in trace.per_tick(tick):
            if event.kind == DELTA:
                assert event.delta is not None
                if schedule.is_delayed(event.tenant, tick):
                    carryover.setdefault(event.tenant, []).append(event.delta)
                    continue
                await deliver(event.tenant, event.delta)
                continue
            # INFER / SNAPSHOT: execute on the faulted side (retrying through
            # worker crashes), then compare against the un-faulted oracle.
            attempts = 0
            while True:
                try:
                    result = await infer(event.tenant, event.mode)
                    break
                except WorkerCrashError:
                    state.crashes += 1
                    attempts += 1
                    if attempts > cfg.max_recovery_attempts:
                        state.unrecovered += 1
                        raise
            if attempts:
                state.recoveries += 1
                state.recovery_attempts.append(attempts)
            state.infers_served += 1
            state.window.record(result.elapsed_seconds)
            oracle_result = oracle_pool.infer(oracle_graphs[event.tenant],
                                              mode=event.mode)
            state.oracle_checks += 1
            if tolerance == 0.0:
                matched = bool(np.array_equal(result.scores,
                                              oracle_result.scores))
            else:
                matched = bool(np.allclose(result.scores,
                                           oracle_result.scores,
                                           atol=tolerance, rtol=0.0))
            if not matched:
                state.mismatches += 1
                if state.first_mismatch_tick < 0:
                    state.first_mismatch_tick = tick
            if event.kind == SNAPSHOT:
                state.snapshot_digests.setdefault(str(event.tenant), []).append(
                    _scores_digest(result.scores))
        segments, processes = _pool_resource_census(pool)
        state.max_shm_segments = max(state.max_shm_segments, segments)
        state.final_shm_segments = segments
        state.replans = max(state.replans,
                            sum(s.num_replans for s in pool.sessions()))
        state.max_worker_processes = max(state.max_worker_processes, processes)
        state.max_rss_bytes = max(state.max_rss_bytes, _current_rss_bytes())


async def _drive(cfg: SoakConfig) -> SoakReport:
    graphs, oracle_graphs = _tenant_graphs(cfg)
    trace = generate_trace(graphs, cfg.workload)
    model = _make_model(cfg)
    executor = cfg.resolved_executor()
    pool = SessionPool(model, _make_config(cfg, executor),
                       capacity=cfg.pool_capacity)
    oracle_pool = SessionPool(model, _make_config(cfg, cfg.oracle_executor),
                              capacity=cfg.pool_capacity)
    state = _SoakState()
    injector = FaultInjector(cfg.faults) if cfg.faults is not None else None
    started = time.perf_counter()
    try:
        if cfg.use_gateway:
            async with ServingGateway(pool) as gateway:
                for tenant in range(cfg.workload.tenants):
                    gateway.register(str(tenant), graphs[tenant])

                async def g_submit(tenant: int, delta: GraphDelta) -> None:
                    await gateway.submit_delta(str(tenant), delta)

                async def g_infer(tenant: int, mode: str) -> InferenceResult:
                    return await gateway.infer(str(tenant), mode=mode)

                await _replay(cfg, trace, pool, graphs, oracle_pool,
                              oracle_graphs, g_submit, g_infer, state,
                              injector)
        else:
            async def p_submit(tenant: int, delta: GraphDelta) -> None:
                pool.apply_delta(graphs[tenant], delta, defer=True)

            async def p_infer(tenant: int, mode: str) -> InferenceResult:
                return pool.infer(graphs[tenant], mode=mode)

            await _replay(cfg, trace, pool, graphs, oracle_pool,
                          oracle_graphs, p_submit, p_infer, state, injector)
    finally:
        pool.clear()
        oracle_pool.clear()
    wall = time.perf_counter() - started

    injected = cfg.faults
    return SoakReport(
        backend=cfg.backend,
        executor=executor,
        oracle_executor=cfg.oracle_executor,
        use_gateway=cfg.use_gateway,
        seed=cfg.workload.seed,
        ticks=trace.num_ticks,
        tenants=cfg.workload.tenants,
        trace_digest=trace.digest,
        fault_digest=None if injected is None else injected.digest,
        trace_deltas=trace.count(DELTA),
        trace_infers=trace.count(INFER),
        trace_snapshots=trace.count(SNAPSHOT),
        deltas_delivered=state.deltas_delivered,
        infers_served=state.infers_served,
        oracle_checks=state.oracle_checks,
        mismatches=state.mismatches,
        first_mismatch_tick=state.first_mismatch_tick,
        crashes=state.crashes,
        recoveries=state.recoveries,
        unrecovered=state.unrecovered,
        recovery_attempts=state.recovery_attempts,
        fault_schedule=[] if injected is None else injected.schedule(),
        fault_notes=([] if injector is None else
                     [f"tick {record.tick} {record.kind}@tenant "
                      f"{record.tenant}: {record.note}"
                      for record in injector.records]),
        snapshot_digests=state.snapshot_digests,
        max_shm_segments=state.max_shm_segments,
        final_shm_segments=state.final_shm_segments,
        replans=state.replans,
        max_worker_processes=state.max_worker_processes,
        p50_tick_seconds=state.window.p50,
        p99_tick_seconds=state.window.p99,
        mean_tick_seconds=state.window.mean(),
        wall_seconds=wall,
        max_rss_bytes=state.max_rss_bytes,
    )


def run_soak(config: Optional[SoakConfig] = None) -> SoakReport:
    """Run one soak to completion and return its report (blocking)."""
    return asyncio.run(_drive(config or SoakConfig()))
