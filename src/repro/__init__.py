"""InferTurbo reproduction — scalable full-graph GNN inference.

Public API overview
-------------------

* :mod:`repro.tensor`     — numpy autodiff + NN substrate
* :mod:`repro.graph`      — attributed graphs, tables, partitioning, sampling
* :mod:`repro.gnn`        — GAS-abstraction GNN layers and model signatures
* :mod:`repro.training`   — mini-batch k-hop training
* :mod:`repro.batch`      — MapReduce-like batch processing backend
* :mod:`repro.pregel`     — Pregel-like graph processing backend
* :mod:`repro.cluster`    — cluster resource / cost model
* :mod:`repro.inference`  — InferenceSession (plan once, infer many) over a
  pluggable backend registry, plus the hub-node optimisation strategies
* :mod:`repro.baselines`  — traditional (k-hop sampling) inference pipeline,
  also exposed as the registered ``"khop"`` inference backend
* :mod:`repro.datasets`   — synthetic stand-ins for the paper's datasets
* :mod:`repro.experiments` — harnesses regenerating every paper table/figure
"""

__version__ = "1.0.0"

__all__ = [
    "tensor",
    "graph",
    "gnn",
    "training",
    "batch",
    "pregel",
    "cluster",
    "inference",
    "baselines",
    "datasets",
    "experiments",
]
