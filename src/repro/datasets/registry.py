"""Dataset registry: named, seeded, scale-parameterised synthetic datasets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.graph.generators import labeled_community_graph, powerlaw_graph
from repro.graph.graph import Graph


#: The paper's Table I, kept verbatim for the dataset-summary experiment.
PAPER_STATS: Dict[str, Dict[str, float]] = {
    "ppi": {"num_nodes": 56_944, "num_edges": 818_716, "node_feature_dim": 50, "num_classes": 121},
    "products": {"num_nodes": 2_449_029, "num_edges": 61_859_140, "node_feature_dim": 100,
                 "num_classes": 47},
    "mag240m": {"num_nodes": 1.2e8, "num_edges": 2.6e9, "node_feature_dim": 768,
                "num_classes": 153},
    "powerlaw": {"num_nodes": 1e10, "num_edges": 1e11, "node_feature_dim": 200, "num_classes": 2},
}

#: node-count multipliers for the named size presets
_SIZE_PRESETS = {"tiny": 0.25, "small": 0.5, "default": 1.0, "large": 2.0}


@dataclass
class Dataset:
    """A loaded dataset: graph plus canonical splits and task metadata."""

    name: str
    graph: Graph
    train_nodes: np.ndarray
    val_nodes: np.ndarray
    test_nodes: np.ndarray
    multilabel: bool = False
    paper_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def num_classes(self) -> int:
        labels = self.graph.labels
        if labels is None:
            return 0
        if labels.ndim == 1:
            return int(labels.max()) + 1
        return int(labels.shape[1])

    @property
    def feature_dim(self) -> int:
        return self.graph.feature_dim

    def summary(self) -> Dict[str, float]:
        """Reproduction-side statistics in the shape of the paper's Table I."""
        stats = self.graph.summary()
        stats["train_fraction"] = float(self.train_nodes.size / max(self.graph.num_nodes, 1))
        return stats


@dataclass
class DatasetSpec:
    """Registry entry: how to build a dataset and what the paper reports for it."""

    name: str
    description: str
    builder: Callable[..., Dataset]
    paper_stats: Dict[str, float]


def _splits(num_nodes: int, train_fraction: float, seed: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic train/val/test split (train_fraction / 10% / rest)."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_nodes)
    num_train = max(int(num_nodes * train_fraction), 1)
    num_val = max(int(num_nodes * 0.1), 1)
    train = order[:num_train]
    val = order[num_train:num_train + num_val]
    test = order[num_train + num_val:]
    return train, val, test


def _build_ppi(size: str = "default", seed: int = 0) -> Dataset:
    """PPI stand-in: dense-ish multi-label graph, 50 features, 121 labels."""
    scale = _SIZE_PRESETS[size]
    num_nodes = int(2400 * scale)
    graph = labeled_community_graph(
        num_nodes=num_nodes, num_classes=121, feature_dim=50, avg_degree=14.0,
        homophily=0.7, noise=1.2, multilabel=True, seed=seed)
    train, val, test = _splits(num_nodes, train_fraction=0.5, seed=seed + 1)
    return Dataset(name="ppi", graph=graph, train_nodes=train, val_nodes=val, test_nodes=test,
                   multilabel=True, paper_stats=PAPER_STATS["ppi"])


def _build_products(size: str = "default", seed: int = 0) -> Dataset:
    """OGB-Products stand-in: 47 classes, 100 features, medium density."""
    scale = _SIZE_PRESETS[size]
    num_nodes = int(4000 * scale)
    graph = labeled_community_graph(
        num_nodes=num_nodes, num_classes=47, feature_dim=100, avg_degree=25.0,
        homophily=0.8, noise=1.0, seed=seed)
    train, val, test = _splits(num_nodes, train_fraction=0.1, seed=seed + 1)
    return Dataset(name="products", graph=graph, train_nodes=train, val_nodes=val, test_nodes=test,
                   paper_stats=PAPER_STATS["products"])


def _build_mag240m(size: str = "default", seed: int = 0) -> Dataset:
    """MAG240M stand-in: 153 classes, high-dimensional features, 1% labelled."""
    scale = _SIZE_PRESETS[size]
    num_nodes = int(6000 * scale)
    graph = labeled_community_graph(
        num_nodes=num_nodes, num_classes=153, feature_dim=128, avg_degree=20.0,
        homophily=0.75, noise=1.5, seed=seed)
    train, val, test = _splits(num_nodes, train_fraction=0.05, seed=seed + 1)
    return Dataset(name="mag240m", graph=graph, train_nodes=train, val_nodes=val, test_nodes=test,
                   paper_stats=PAPER_STATS["mag240m"])


def _build_powerlaw(size: str = "default", seed: int = 0, skew: str = "out",
                    num_nodes: Optional[int] = None, avg_degree: float = 10.0) -> Dataset:
    """Power-Law stand-in with configurable skew direction and scale."""
    scale = _SIZE_PRESETS[size]
    nodes = int(num_nodes if num_nodes is not None else 20_000 * scale)
    graph = powerlaw_graph(num_nodes=nodes, avg_degree=avg_degree, exponent=2.1,
                           skew=skew, feature_dim=32, num_classes=2, seed=seed)
    train, val, test = _splits(nodes, train_fraction=0.001, seed=seed + 1)
    return Dataset(name="powerlaw", graph=graph, train_nodes=train, val_nodes=val, test_nodes=test,
                   paper_stats=PAPER_STATS["powerlaw"])


_REGISTRY: Dict[str, DatasetSpec] = {
    "ppi": DatasetSpec("ppi", "multi-label PPI stand-in (small)", _build_ppi, PAPER_STATS["ppi"]),
    "products": DatasetSpec("products", "OGB-Products stand-in (medium)", _build_products,
                            PAPER_STATS["products"]),
    "mag240m": DatasetSpec("mag240m", "OGB-MAG240M stand-in (large)", _build_mag240m,
                           PAPER_STATS["mag240m"]),
    "powerlaw": DatasetSpec("powerlaw", "synthetic power-law graph (extremely large)",
                            _build_powerlaw, PAPER_STATS["powerlaw"]),
}


def list_datasets() -> List[str]:
    """Names of all registered datasets, in Table I order."""
    return list(_REGISTRY.keys())


def load_dataset(name: str, size: str = "default", seed: int = 0, **kwargs) -> Dataset:
    """Build a dataset by name.

    ``size`` is one of ``tiny`` / ``small`` / ``default`` / ``large``; extra
    keyword arguments are forwarded to the builder (``powerlaw`` accepts
    ``skew``, ``num_nodes`` and ``avg_degree``).
    """
    if name not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {list_datasets()}")
    if size not in _SIZE_PRESETS:
        raise ValueError(f"unknown size preset {size!r}; available: {sorted(_SIZE_PRESETS)}")
    return _REGISTRY[name].builder(size=size, seed=seed, **kwargs)
