"""Synthetic stand-ins for the paper's evaluation datasets.

The paper evaluates on PPI, OGB-Products, OGB-MAG240M and a synthetic
Power-Law graph (Table I).  The first three are real-world datasets that are
not available offline and are far larger than a laptop reproduction can hold,
so each is replaced by a seeded synthetic graph that preserves the properties
the experiments actually exercise: feature dimensionality, number of classes,
single- vs multi-label task, rough density, and (for Power-Law) the degree
skew.  The registry records the paper's original statistics next to the
reproduction's so EXPERIMENTS.md can show both.
"""

from repro.datasets.registry import Dataset, DatasetSpec, load_dataset, list_datasets, PAPER_STATS

__all__ = ["Dataset", "DatasetSpec", "load_dataset", "list_datasets", "PAPER_STATS"]
