"""A MapReduce-like batch processing engine.

The paper's second backend runs GNN inference as a chain of MapReduce (or
Spark) rounds: one Map round initialises node states and fans out the first
messages, then each Reduce round executes one GNN layer per node key.  This
package provides that substrate: jobs with ``map`` / ``combine`` / ``reduce``
(or vectorised ``reduce_partition``), a hash shuffle, per-instance counters
(records, bytes, compute, spill IO) and an optional on-disk spill store so the
"data lives in external storage, memory stays bounded" property can be
demonstrated, not just asserted.
"""

from repro.batch.mapreduce import MapReduceJob, MapReduceEngine, TaskContext
from repro.batch.storage import RecordStore, serialized_size

__all__ = [
    "MapReduceJob",
    "MapReduceEngine",
    "TaskContext",
    "RecordStore",
    "serialized_size",
]
