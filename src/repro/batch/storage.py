"""Record serialisation and spill-to-disk storage for the MapReduce backend.

The MapReduce backend's defining property in the paper is that node state and
messages live in *external storage* between rounds, so a reducer never has to
hold its whole partition in memory.  ``serialized_size`` estimates the on-wire
/ on-disk footprint of a record (used by the counters), and ``RecordStore``
actually round-trips records through a temporary file with ``pickle`` so the
tests can prove the spill path preserves data.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.cluster.metrics import estimate_payload_bytes


def serialized_size(record: Any) -> float:
    """Estimated serialised size of a (key, value) record in bytes."""
    return estimate_payload_bytes(record)


class RecordStore:
    """Append-only spill file of pickled records with size accounting.

    Used by the MapReduce engine when ``spill_to_disk=True``; the default mode
    keeps records in memory but still accounts for their serialised size, which
    is what the cost model consumes.
    """

    def __init__(self, spill_to_disk: bool = False, directory: Optional[str] = None) -> None:
        self.spill_to_disk = spill_to_disk
        self._memory: List[Any] = []
        self._path: Optional[str] = None
        self._bytes_written = 0.0
        self._count = 0
        if spill_to_disk:
            handle, self._path = tempfile.mkstemp(prefix="repro-spill-", suffix=".pkl",
                                                  dir=directory)
            os.close(handle)

    # ------------------------------------------------------------------ #
    @property
    def bytes_written(self) -> float:
        return self._bytes_written

    def __len__(self) -> int:
        return self._count

    def append(self, record: Any) -> None:
        self._bytes_written += serialized_size(record)
        self._count += 1
        if self.spill_to_disk:
            with open(self._path, "ab") as handle:
                pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
        else:
            self._memory.append(record)

    def extend(self, records: Iterable[Any]) -> None:
        for record in records:
            self.append(record)

    def __iter__(self) -> Iterator[Any]:
        if not self.spill_to_disk:
            yield from self._memory
            return
        with open(self._path, "rb") as handle:
            while True:
                try:
                    yield pickle.load(handle)
                except EOFError:
                    return

    def close(self) -> None:
        """Release resources (delete the spill file if one was created)."""
        self._memory = []
        if self.spill_to_disk and self._path and os.path.exists(self._path):
            os.remove(self._path)
            self._path = None

    def __enter__(self) -> "RecordStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
