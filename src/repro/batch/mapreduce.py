"""MapReduce engine: map → combine → shuffle → reduce with instance counters.

A job implements :class:`MapReduceJob`; the engine splits the input among
mappers, runs the map function, optionally combines mapper output per key
(the sender-side pre-aggregation the partial-gather strategy rides on), hash
shuffles by key to reducers, and runs either the per-key ``reduce`` or the
vectorised per-instance ``reduce_partition``.  Every mapper/reducer instance
records records/bytes/compute/spill counters into the shared
:class:`~repro.cluster.metrics.MetricsCollector` so the cost model can price
the run on an arbitrary cluster spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch.storage import RecordStore, serialized_size
from repro.cluster.metrics import MetricsCollector

Record = Tuple[Any, Any]


class TaskContext:
    """Accounting handle passed to map/reduce implementations."""

    def __init__(self, phase: str, instance_id: int) -> None:
        self.phase = phase
        self.instance_id = instance_id
        self.compute_units = 0.0
        self.peak_memory_bytes = 0.0

    def add_compute(self, units: float) -> None:
        self.compute_units += float(units)

    def observe_memory(self, bytes_used: float) -> None:
        self.peak_memory_bytes = max(self.peak_memory_bytes, float(bytes_used))


class MapReduceJob:
    """Base class for MapReduce jobs.

    Override :meth:`map` and either :meth:`reduce` (per key) or
    :meth:`reduce_partition` (whole reducer at once, for vectorised work).
    :meth:`combine` runs on mapper output per key when implemented.
    """

    def map(self, key: Any, value: Any, context: TaskContext) -> Iterable[Record]:
        raise NotImplementedError

    def map_partition(self, records: List[Record], context: TaskContext) -> Iterable[Record]:
        """Optional whole-split mapper; default loops over :meth:`map`."""
        outputs: List[Record] = []
        for key, value in records:
            outputs.extend(self.map(key, value, context))
        return outputs

    uses_partition_map: bool = False

    def combine(self, key: Any, values: List[Any], context: TaskContext) -> Iterable[Record]:
        """Optional mapper-side combiner; default passes records through."""
        return [(key, value) for value in values]

    has_combiner: bool = False

    def reduce(self, key: Any, values: List[Any], context: TaskContext) -> Iterable[Record]:
        raise NotImplementedError

    def reduce_partition(self, groups: List[Tuple[Any, List[Any]]],
                         context: TaskContext) -> Iterable[Record]:
        """Optional whole-partition reducer; default loops over :meth:`reduce`."""
        outputs: List[Record] = []
        for key, values in groups:
            outputs.extend(self.reduce(key, values, context))
        return outputs

    uses_partition_reduce: bool = False


@dataclass
class MapReduceStats:
    """Simple per-phase roll-up returned alongside the output records."""

    phase: str
    num_mappers: int
    num_reducers: int
    map_output_records: int
    reduce_output_records: int
    shuffle_bytes: float


class MapReduceEngine:
    """In-process MapReduce executor with per-instance accounting."""

    def __init__(
        self,
        num_mappers: int,
        num_reducers: int,
        metrics: Optional[MetricsCollector] = None,
        spill_to_disk: bool = False,
        partition_fn: Optional[Callable[[Any, int], int]] = None,
    ) -> None:
        if num_mappers <= 0 or num_reducers <= 0:
            raise ValueError("num_mappers and num_reducers must be positive")
        self.num_mappers = int(num_mappers)
        self.num_reducers = int(num_reducers)
        self.metrics = metrics or MetricsCollector()
        self.spill_to_disk = spill_to_disk
        self._partition_fn = partition_fn or (lambda key, n: hash(key) % n)

    # ------------------------------------------------------------------ #
    def _split_input(self, records: Sequence[Record]) -> List[List[Record]]:
        """Contiguous, near-equal splits of the input across mappers."""
        splits: List[List[Record]] = [[] for _ in range(self.num_mappers)]
        if not records:
            return splits
        per_mapper = int(np.ceil(len(records) / self.num_mappers))
        for index in range(self.num_mappers):
            splits[index] = list(records[index * per_mapper:(index + 1) * per_mapper])
        return splits

    # ------------------------------------------------------------------ #
    def run(self, job: MapReduceJob, input_records: Sequence[Record],
            phase: str = "mapreduce") -> Tuple[List[Record], MapReduceStats]:
        """Run one full map → shuffle → reduce round and return reducer output."""
        map_phase = f"{phase}/map"
        reduce_phase = f"{phase}/reduce"
        splits = self._split_input(input_records)

        # ------------------------- map side ---------------------------- #
        shuffle_buckets: List[RecordStore] = [
            RecordStore(spill_to_disk=self.spill_to_disk) for _ in range(self.num_reducers)
        ]
        map_output_records = 0
        for mapper_id, split in enumerate(splits):
            context = TaskContext(map_phase, mapper_id)
            bytes_in = sum(serialized_size(record) for record in split)
            if job.uses_partition_map:
                emitted = list(job.map_partition(split, context))
            else:
                emitted = []
                for key, value in split:
                    emitted.extend(job.map(key, value, context))
            if job.has_combiner:
                grouped: Dict[Any, List[Any]] = {}
                order: List[Any] = []
                for key, value in emitted:
                    if key not in grouped:
                        grouped[key] = []
                        order.append(key)
                    grouped[key].append(value)
                combined: List[Record] = []
                for key in order:
                    combined.extend(job.combine(key, grouped[key], context))
                emitted = combined
            bytes_out = 0.0
            for key, value in emitted:
                bucket = self._partition_fn(key, self.num_reducers)
                record = (key, value)
                shuffle_buckets[bucket].append(record)
                bytes_out += serialized_size(record)
            map_output_records += len(emitted)
            self.metrics.record(
                map_phase, mapper_id,
                compute_units=context.compute_units,
                bytes_in=bytes_in, bytes_out=bytes_out,
                records_in=len(split), records_out=len(emitted),
                peak_memory_bytes=context.peak_memory_bytes,
                disk_bytes=bytes_in + bytes_out,
            )

        # ------------------------ reduce side --------------------------- #
        outputs: List[Record] = []
        reduce_output_records = 0
        shuffle_bytes = 0.0
        for reducer_id, bucket in enumerate(shuffle_buckets):
            context = TaskContext(reduce_phase, reducer_id)
            grouped: Dict[Any, List[Any]] = {}
            order: List[Any] = []
            bytes_in = 0.0
            records_in = 0
            for key, value in bucket:
                if key not in grouped:
                    grouped[key] = []
                    order.append(key)
                grouped[key].append(value)
                bytes_in += serialized_size((key, value))
                records_in += 1
            shuffle_bytes += bytes_in
            groups = [(key, grouped[key]) for key in order]
            if job.uses_partition_reduce:
                emitted = list(job.reduce_partition(groups, context))
            else:
                emitted = []
                for key, values in groups:
                    emitted.extend(job.reduce(key, values, context))
            bytes_out = sum(serialized_size(record) for record in emitted)
            reduce_output_records += len(emitted)
            outputs.extend(emitted)
            self.metrics.record(
                reduce_phase, reducer_id,
                compute_units=context.compute_units,
                bytes_in=bytes_in, bytes_out=bytes_out,
                records_in=records_in, records_out=len(emitted),
                peak_memory_bytes=context.peak_memory_bytes,
                disk_bytes=bytes_in + bytes_out,
            )
            bucket.close()

        stats = MapReduceStats(
            phase=phase,
            num_mappers=self.num_mappers,
            num_reducers=self.num_reducers,
            map_output_records=map_output_records,
            reduce_output_records=reduce_output_records,
            shuffle_bytes=shuffle_bytes,
        )
        return outputs, stats

    # ------------------------------------------------------------------ #
    def run_chained(self, jobs: Sequence[MapReduceJob], input_records: Sequence[Record],
                    phase_prefix: str = "round") -> List[Record]:
        """Run jobs back to back, feeding each round's output to the next."""
        records: List[Record] = list(input_records)
        for index, job in enumerate(jobs):
            records, _ = self.run(job, records, phase=f"{phase_prefix}_{index}")
        return records
