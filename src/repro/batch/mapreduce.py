"""MapReduce engine: map → combine → shuffle → reduce with instance counters.

A job implements :class:`MapReduceJob`; the engine splits the input among
mappers, runs the map function, optionally combines mapper output per key
(the sender-side pre-aggregation the partial-gather strategy rides on), hash
shuffles by key to reducers, and runs either the per-key ``reduce`` or the
vectorised per-instance ``reduce_partition``.  Every mapper/reducer instance
records records/bytes/compute/spill counters into the shared
:class:`~repro.cluster.metrics.MetricsCollector` so the cost model can price
the run on an arbitrary cluster spec.

Each mapper/reducer instance is one unit of work routed through the engine's
:class:`~repro.cluster.executor.Executor`: the serial executor runs them
in-process in instance order (the historical behaviour, bit for bit), the
process executor fans every instance of a wave out to one OS process each —
the job object and its record split travel as pickled numpy bundles, and the
per-instance counters (including real measured wall seconds) come back with
the outputs.  The shuffle stays in the coordinator: mappers return their
per-reducer buckets, the engine appends them to the (possibly spilling)
:class:`~repro.batch.storage.RecordStore`\\ s in mapper order, which is
exactly the record order the sequential loop produced.

Under the process executor the engine protects itself against both pitfalls
of shipping the shuffle: a job or partition function that cannot pickle
degrades to an in-process round, and the salted-``hash`` *default* partition
function is only shipped when every worker provably agrees on the hash seed
(fork start method, or a pinned ``PYTHONHASHSEED``) — otherwise the mappers
return raw output and the coordinator buckets it, so placement is always
consistent.  A *custom* partition function is shipped as-is and must be
deterministic across processes (the GNN round jobs use an explicit modulo
function, placement-stable everywhere).
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.batch.storage import RecordStore, serialized_size
from repro.cluster.executor import Executor, build_executor
from repro.cluster.metrics import MetricsCollector

Record = Tuple[Any, Any]


def _default_partition_fn(key: Any, num_reducers: int) -> int:
    """Default shuffle placement (module-level so it pickles to workers)."""
    return hash(key) % num_reducers


_PICKLABLE_CACHE: Dict[type, bool] = {}


def _is_picklable(value: Any) -> bool:
    """Whether ``value`` can ship to a process-executor worker.

    Job objects are probed once per concrete class and cached: the probe
    fully serialises the object (a GNN round job carries the model weights)
    and picklability is a property of the class there.  Plain functions are
    probed per object — a module-level function and a lambda share one type
    but not one verdict — which is cheap since functions pickle by reference.
    """
    import pickle
    import types

    if isinstance(value, (types.FunctionType, types.BuiltinFunctionType,
                          types.MethodType, functools.partial)):
        try:
            pickle.dumps(value)
            return True
        except Exception:
            # The probe's verdict IS the point: pickling arbitrary user jobs
            # can raise anything (PicklingError, TypeError, RecursionError on
            # cyclic closures); any failure means "run in-process" rather
            # than crash the round.
            return False
    cached = _PICKLABLE_CACHE.get(type(value))
    if cached is not None:
        return cached
    try:
        pickle.dumps(value)
        verdict = True
    except Exception:
        # Same contract as above: an unpicklable job class is a valid
        # answer (degrade to the in-process round), never an error.
        verdict = False
    _PICKLABLE_CACHE[type(value)] = verdict
    return verdict


def _hash_is_process_stable(executor: Executor) -> bool:
    """Whether Python's salted ``hash()`` agrees across this executor's workers.

    ``fork`` children inherit the parent's hash seed; ``spawn``/``forkserver``
    workers only agree when ``PYTHONHASHSEED`` pins it explicitly.  Shipping a
    ``hash()``-based partition function across disagreeing workers would place
    the same key on different reducers — silently wrong output, not an error.
    """
    if executor.start_method == "fork":
        return True
    seed = os.environ.get("PYTHONHASHSEED", "")
    return seed not in ("", "random")


class TaskContext:
    """Accounting handle passed to map/reduce implementations."""

    def __init__(self, phase: str, instance_id: int) -> None:
        self.phase = phase
        self.instance_id = instance_id
        self.compute_units = 0.0
        self.peak_memory_bytes = 0.0

    def add_compute(self, units: float) -> None:
        self.compute_units += float(units)

    def observe_memory(self, bytes_used: float) -> None:
        self.peak_memory_bytes = max(self.peak_memory_bytes, float(bytes_used))


class MapReduceJob:
    """Base class for MapReduce jobs.

    Override :meth:`map` and either :meth:`reduce` (per key) or
    :meth:`reduce_partition` (whole reducer at once, for vectorised work).
    :meth:`combine` runs on mapper output per key when implemented.
    """

    def map(self, key: Any, value: Any, context: TaskContext) -> Iterable[Record]:
        raise NotImplementedError

    def map_partition(self, records: List[Record], context: TaskContext) -> Iterable[Record]:
        """Optional whole-split mapper; default loops over :meth:`map`."""
        outputs: List[Record] = []
        for key, value in records:
            outputs.extend(self.map(key, value, context))
        return outputs

    uses_partition_map: bool = False

    def combine(self, key: Any, values: List[Any], context: TaskContext) -> Iterable[Record]:
        """Optional mapper-side combiner; default passes records through."""
        return [(key, value) for value in values]

    has_combiner: bool = False

    def reduce(self, key: Any, values: List[Any], context: TaskContext) -> Iterable[Record]:
        raise NotImplementedError

    def reduce_partition(self, groups: List[Tuple[Any, List[Any]]],
                         context: TaskContext) -> Iterable[Record]:
        """Optional whole-partition reducer; default loops over :meth:`reduce`."""
        outputs: List[Record] = []
        for key, values in groups:
            outputs.extend(self.reduce(key, values, context))
        return outputs

    uses_partition_reduce: bool = False


@dataclass
class MapReduceStats:
    """Simple per-phase roll-up returned alongside the output records."""

    phase: str
    num_mappers: int
    num_reducers: int
    map_output_records: int
    reduce_output_records: int
    shuffle_bytes: float


@dataclass
class _MapTaskResult:
    """One mapper instance's output: per-reducer buckets plus its counters.

    ``per_reducer`` is ``None`` when the task ran without a shipped partition
    function (see :meth:`MapReduceEngine.run`); ``emitted`` then carries the
    raw mapper output for the coordinator to bucket.
    """

    per_reducer: Optional[List[List[Record]]]
    emitted: Optional[List[Record]] = None
    compute_units: float = 0.0
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    records_in: int = 0
    records_out: int = 0
    peak_memory_bytes: float = 0.0
    measured_seconds: float = 0.0


@dataclass
class _ReduceTaskResult:
    """One reducer instance's output records plus its counters."""

    outputs: List[Record] = field(default_factory=list)
    compute_units: float = 0.0
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    records_in: int = 0
    records_out: int = 0
    peak_memory_bytes: float = 0.0
    measured_seconds: float = 0.0


def _run_map_task(job: MapReduceJob, split: List[Record], mapper_id: int,
                  map_phase: str, num_reducers: int,
                  partition_fn: Optional[Callable[[Any, int], int]]) -> _MapTaskResult:
    """One mapper instance: map → combine → bucket by reducer (module-level
    so the process executor can ship it).

    With ``partition_fn=None`` the bucketing (and its ``bytes_out``
    accounting) is left to the coordinator — the escape hatch for partition
    functions that cannot cross a process boundary.
    """
    started = time.perf_counter()
    context = TaskContext(map_phase, mapper_id)
    bytes_in = sum(serialized_size(record) for record in split)
    if job.uses_partition_map:
        emitted = list(job.map_partition(split, context))
    else:
        emitted = []
        for key, value in split:
            emitted.extend(job.map(key, value, context))
    if job.has_combiner:
        grouped: Dict[Any, List[Any]] = {}
        order: List[Any] = []
        for key, value in emitted:
            if key not in grouped:
                grouped[key] = []
                order.append(key)
            grouped[key].append(value)
        combined: List[Record] = []
        for key in order:
            combined.extend(job.combine(key, grouped[key], context))
        emitted = combined
    if partition_fn is None:
        return _MapTaskResult(
            per_reducer=None, emitted=emitted,
            compute_units=context.compute_units,
            bytes_in=bytes_in,
            records_in=len(split), records_out=len(emitted),
            peak_memory_bytes=context.peak_memory_bytes,
            measured_seconds=time.perf_counter() - started,
        )
    per_reducer: List[List[Record]] = [[] for _ in range(num_reducers)]
    bytes_out = 0.0
    for key, value in emitted:
        bucket = partition_fn(key, num_reducers)
        record = (key, value)
        per_reducer[bucket].append(record)
        bytes_out += serialized_size(record)
    return _MapTaskResult(
        per_reducer=per_reducer,
        compute_units=context.compute_units,
        bytes_in=bytes_in, bytes_out=bytes_out,
        records_in=len(split), records_out=len(emitted),
        peak_memory_bytes=context.peak_memory_bytes,
        measured_seconds=time.perf_counter() - started,
    )


def _run_reduce_task(job: MapReduceJob, records: List[Record], reducer_id: int,
                     reduce_phase: str) -> _ReduceTaskResult:
    """One reducer instance: group by key → reduce (module-level, ships)."""
    started = time.perf_counter()
    context = TaskContext(reduce_phase, reducer_id)
    grouped: Dict[Any, List[Any]] = {}
    order: List[Any] = []
    bytes_in = 0.0
    records_in = 0
    for key, value in records:
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(value)
        bytes_in += serialized_size((key, value))
        records_in += 1
    groups = [(key, grouped[key]) for key in order]
    if job.uses_partition_reduce:
        emitted = list(job.reduce_partition(groups, context))
    else:
        emitted = []
        for key, values in groups:
            emitted.extend(job.reduce(key, values, context))
    bytes_out = sum(serialized_size(record) for record in emitted)
    return _ReduceTaskResult(
        outputs=emitted,
        compute_units=context.compute_units,
        bytes_in=bytes_in, bytes_out=bytes_out,
        records_in=records_in, records_out=len(emitted),
        peak_memory_bytes=context.peak_memory_bytes,
        measured_seconds=time.perf_counter() - started,
    )


class MapReduceEngine:
    """MapReduce executor with per-instance accounting.

    ``executor`` selects the worker substrate (an
    :class:`~repro.cluster.executor.Executor` instance, a registry name, or
    ``None`` for the ``$REPRO_EXECUTOR`` default): every mapper and reducer
    instance of a round runs as one executor task.  A shared executor can be
    passed in so a serving session reuses one persistent process pool across
    rounds and runs (the mapreduce inference backend does this).
    """

    def __init__(
        self,
        num_mappers: int,
        num_reducers: int,
        metrics: Optional[MetricsCollector] = None,
        spill_to_disk: bool = False,
        partition_fn: Optional[Callable[[Any, int], int]] = None,
        executor: Union[Executor, str, None] = None,
    ) -> None:
        if num_mappers <= 0 or num_reducers <= 0:
            raise ValueError("num_mappers and num_reducers must be positive")
        self.num_mappers = int(num_mappers)
        self.num_reducers = int(num_reducers)
        self.metrics = metrics or MetricsCollector()
        self.spill_to_disk = spill_to_disk
        self._partition_fn = partition_fn or _default_partition_fn
        if isinstance(executor, Executor):
            self._executor: Optional[Executor] = executor
            self._owns_executor = False
            self.executor_name: Optional[str] = executor.name
        else:
            self._executor = None
            self._owns_executor = True
            self.executor_name = executor

    # ------------------------------------------------------------------ #
    @property
    def executor(self) -> Executor:
        """The lazily built executor mapper/reducer instances run through."""
        if self._executor is None:
            self._executor = build_executor(
                self.executor_name, max(self.num_mappers, self.num_reducers))
            self.executor_name = self._executor.name
        return self._executor

    def shutdown(self) -> None:
        """Release the executor's workers (no-op for a borrowed executor)."""
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown()
            self._executor = None

    def _effective_executor(self, job: MapReduceJob) -> Executor:
        """The executor this round actually runs on.

        A job that cannot cross a process boundary (e.g. a locally defined
        test class) degrades gracefully to an in-process round with identical
        results instead of failing — process execution is a speed substrate,
        never a correctness requirement.  Every job in this repository is
        module-level and ships fine.
        """
        executor = self.executor
        if executor.is_in_process or _is_picklable(job):
            return executor
        if not hasattr(self, "_serial_fallback"):
            self._serial_fallback = build_executor(
                "serial", max(self.num_mappers, self.num_reducers))
        return self._serial_fallback

    # ------------------------------------------------------------------ #
    def _split_input(self, records: Sequence[Record]) -> List[List[Record]]:
        """Contiguous, near-equal splits of the input across mappers."""
        splits: List[List[Record]] = [[] for _ in range(self.num_mappers)]
        if not records:
            return splits
        per_mapper = int(np.ceil(len(records) / self.num_mappers))
        for index in range(self.num_mappers):
            splits[index] = list(records[index * per_mapper:(index + 1) * per_mapper])
        return splits

    # ------------------------------------------------------------------ #
    def run(self, job: MapReduceJob, input_records: Sequence[Record],
            phase: str = "mapreduce") -> Tuple[List[Record], MapReduceStats]:
        """Run one full map → shuffle → reduce round and return reducer output.

        Both sides fan out through the executor; only the shuffle itself —
        appending each mapper's buckets to the reducer record stores, in
        mapper order — runs in the coordinator, which keeps record order (and
        therefore results) identical across executors.
        """
        map_phase = f"{phase}/map"
        reduce_phase = f"{phase}/reduce"
        executor = self._effective_executor(job)
        splits = self._split_input(input_records)

        # A partition function that cannot cross the process boundary (a
        # test's lambda) — or whose placement would not be *stable* across
        # workers (the salted-hash default under spawn without a pinned
        # PYTHONHASHSEED) — keeps working: the mappers return their raw
        # output and the coordinator buckets it — identical placement,
        # identical record order, the bucketing pass just runs here instead.
        if executor.is_in_process:
            ship_partition_fn = True
        elif self._partition_fn is _default_partition_fn:
            ship_partition_fn = _hash_is_process_stable(executor)
        else:
            ship_partition_fn = _is_picklable(self._partition_fn)
        shipped_fn = self._partition_fn if ship_partition_fn else None

        # ------------------------- map side ---------------------------- #
        shuffle_buckets: List[RecordStore] = [
            RecordStore(spill_to_disk=self.spill_to_disk) for _ in range(self.num_reducers)
        ]
        map_output_records = 0
        map_results = executor.run_tasks(
            _run_map_task,
            [(job, split, mapper_id, map_phase, self.num_reducers, shipped_fn)
             for mapper_id, split in enumerate(splits)])
        for mapper_id, result in enumerate(map_results):
            if result.per_reducer is None:
                per_reducer: List[List[Record]] = [[] for _ in range(self.num_reducers)]
                bytes_out = 0.0
                for key, value in result.emitted:
                    record = (key, value)
                    per_reducer[self._partition_fn(key, self.num_reducers)].append(record)
                    bytes_out += serialized_size(record)
                result.per_reducer = per_reducer
                result.bytes_out = bytes_out
            for bucket_id, bucket_records in enumerate(result.per_reducer):
                for record in bucket_records:
                    shuffle_buckets[bucket_id].append(record)
            map_output_records += result.records_out
            self.metrics.record(
                map_phase, mapper_id,
                compute_units=result.compute_units,
                bytes_in=result.bytes_in, bytes_out=result.bytes_out,
                records_in=result.records_in, records_out=result.records_out,
                peak_memory_bytes=result.peak_memory_bytes,
                disk_bytes=result.bytes_in + result.bytes_out,
                measured_seconds=result.measured_seconds,
            )

        # ------------------------ reduce side --------------------------- #
        outputs: List[Record] = []
        reduce_output_records = 0
        shuffle_bytes = 0.0
        reduce_results = executor.run_tasks(
            _run_reduce_task,
            [(job, list(bucket), reducer_id, reduce_phase)
             for reducer_id, bucket in enumerate(shuffle_buckets)])
        for reducer_id, (bucket, result) in enumerate(zip(shuffle_buckets, reduce_results)):
            shuffle_bytes += result.bytes_in
            reduce_output_records += result.records_out
            outputs.extend(result.outputs)
            self.metrics.record(
                reduce_phase, reducer_id,
                compute_units=result.compute_units,
                bytes_in=result.bytes_in, bytes_out=result.bytes_out,
                records_in=result.records_in, records_out=result.records_out,
                peak_memory_bytes=result.peak_memory_bytes,
                disk_bytes=result.bytes_in + result.bytes_out,
                measured_seconds=result.measured_seconds,
            )
            bucket.close()

        stats = MapReduceStats(
            phase=phase,
            num_mappers=self.num_mappers,
            num_reducers=self.num_reducers,
            map_output_records=map_output_records,
            reduce_output_records=reduce_output_records,
            shuffle_bytes=shuffle_bytes,
        )
        return outputs, stats

    # ------------------------------------------------------------------ #
    def run_chained(self, jobs: Sequence[MapReduceJob], input_records: Sequence[Record],
                    phase_prefix: str = "round") -> List[Record]:
        """Run jobs back to back, feeding each round's output to the next."""
        records: List[Record] = list(input_records)
        for index, job in enumerate(jobs):
            records, _ = self.run(job, records, phase=f"{phase_prefix}_{index}")
        return records
