"""Opt-in runtime lock-order tracking (``REPRO_LOCK_TRACK=1``).

The static rules in :mod:`repro.analysis.rules` check the *lexical* shape of
the concurrency contracts; this module checks the *dynamic* half while the
threaded test suites run:

* **acquisition-order cycles** — every time a thread acquires a tracked lock
  while holding another, the ordered pair is recorded in a process-global
  acquisition graph; an edge that closes a cycle (lock A taken under B
  somewhere, B taken under A somewhere else) is a latent deadlock and raises
  :class:`LockOrderViolation` at the acquisition that would create it, with
  both witness stacks in the message;
* **slow work under a no-slow lock** — locks created with
  ``forbid_slow=True`` (the pool lock) must never be held across a slow
  operation (``prepare`` / ``infer`` / ``close`` / eager ``apply_delta``);
  the instrumented operations call :func:`note_slow_call`, which raises if
  the current thread holds such a lock — the runtime twin of the
  ``lock-discipline`` lint rule (incident: fcf99ca, where the pool lock was
  held across ``prepare()`` and ``close()``).

Tracking is **off by default** and free when off: :func:`tracked_rlock`
returns a plain ``threading.RLock`` and :func:`note_slow_call` is a single
boolean test.  The ``static-analysis`` CI job enables it
(``REPRO_LOCK_TRACK=1``) for one run of the threaded pool/gateway suites;
tests may also toggle it programmatically via :func:`enable_tracking`.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Dict, List, Optional, Protocol, Set, Tuple

ENV_VAR = "REPRO_LOCK_TRACK"


class RLockLike(Protocol):
    """The re-entrant-lock surface the serving layer relies on.

    Both ``threading.RLock()`` and :class:`TrackedRLock` satisfy it, so
    production code can hold either without caring whether tracking is on.
    """

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(self, exc_type: object, exc_value: object,
                 tb: object) -> None: ...

_enabled = os.environ.get(ENV_VAR, "") not in ("", "0")
_state_lock = threading.Lock()
#: edge (outer, inner) -> witness stack of the acquisition that created it.
_edges: Dict[Tuple[str, str], str] = {}
#: violations recorded so far (each was also raised at detection time).
_violations: List[str] = []


class LockOrderViolation(RuntimeError):
    """A lock-acquisition-order cycle or a slow call under a no-slow lock."""


class _HeldLocks(threading.local):
    def __init__(self) -> None:
        self.stack: List["TrackedRLock"] = []


_held = _HeldLocks()


def tracking_enabled() -> bool:
    return _enabled


def enable_tracking() -> None:
    """Turn tracking on for locks created *afterwards* (tests use this)."""
    global _enabled
    _enabled = True


def disable_tracking() -> None:
    global _enabled
    _enabled = False


def reset() -> None:
    """Forget every recorded edge and violation (test isolation)."""
    with _state_lock:
        _edges.clear()
        del _violations[:]


def violations() -> List[str]:
    """Violations recorded since the last :func:`reset` (copies)."""
    with _state_lock:
        return list(_violations)


def acquisition_edges() -> Set[Tuple[str, str]]:
    """The (outer, inner) lock-order pairs observed so far."""
    with _state_lock:
        return set(_edges)


def _find_path(start: str, goal: str) -> Optional[List[str]]:
    """A path start -> ... -> goal in the current edge graph (DFS)."""
    stack: List[Tuple[str, List[str]]] = [(start, [start])]
    seen = {start}
    while stack:
        node, path = stack.pop()
        if node == goal:
            return path
        for outer, inner in _edges:
            if outer == node and inner not in seen:
                seen.add(inner)
                stack.append((inner, path + [inner]))
    return None


class TrackedRLock:
    """A named re-entrant lock that records acquisition ordering.

    Drop-in for the ``threading.RLock`` surface the repo uses (``acquire`` /
    ``release`` / context manager).  ``forbid_slow`` marks the lock as
    cheap-bookkeeping-only: holding it across an instrumented slow operation
    is a violation even without any second lock involved.
    """

    def __init__(self, name: str, forbid_slow: bool = False) -> None:
        self.name = name
        self.forbid_slow = forbid_slow
        self._inner = threading.RLock()

    # ------------------------------------------------------------------ #
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._record_acquire()
            _held.stack.append(self)
        return acquired

    def release(self) -> None:
        stack = _held.stack
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    # ------------------------------------------------------------------ #
    def _record_acquire(self) -> None:
        holder_names = {held.name for held in _held.stack}
        if self.name in holder_names:
            return      # re-entrant acquisition: no new ordering information
        witness = "".join(traceback.format_stack(limit=8))
        with _state_lock:
            for outer in holder_names:
                edge = (outer, self.name)
                if edge in _edges:
                    continue
                # Would outer <- ... <- self already imply the reverse order?
                cycle = _find_path(self.name, outer)
                if cycle is not None:
                    message = (
                        f"lock-order cycle: acquiring {self.name!r} while "
                        f"holding {outer!r}, but the reverse order "
                        f"{' -> '.join(cycle)} -> {self.name} was already "
                        f"observed.  First witness of the reverse edge:\n"
                        f"{_edges.get((cycle[0], cycle[1]), '<unknown>')}\n"
                        f"This acquisition:\n{witness}")
                    _violations.append(message)
                    raise LockOrderViolation(message)
                _edges[edge] = witness


def tracked_rlock(name: str, forbid_slow: bool = False) -> RLockLike:
    """An RLock, instrumented only when ``REPRO_LOCK_TRACK`` is enabled.

    Production code calls this unconditionally; with tracking off (the
    default) it returns a plain ``threading.RLock`` with zero overhead.
    """
    if not _enabled:
        return threading.RLock()
    return TrackedRLock(name, forbid_slow=forbid_slow)


def note_slow_call(operation: str) -> None:
    """Record that a slow operation is starting on the current thread.

    Instrumented call sites (``InferenceSession.prepare`` / ``infer`` /
    ``close`` / eager ``apply_delta``) invoke this before taking their own
    locks; if the thread already holds a ``forbid_slow`` lock (the pool
    lock), the fcf99ca bug class is being reintroduced and the run fails
    immediately.
    """
    if not _enabled:
        return
    for held_lock in _held.stack:
        if isinstance(held_lock, TrackedRLock) and held_lock.forbid_slow:
            witness = "".join(traceback.format_stack(limit=8))
            message = (
                f"slow operation {operation!r} entered while holding "
                f"{held_lock.name!r}, a lock that must only guard cheap "
                f"bookkeeping (one tenant's slow path would stall every "
                f"other tenant's lookup -- the shape fixed in fcf99ca):\n"
                f"{witness}")
            with _state_lock:
                _violations.append(message)
            raise LockOrderViolation(message)
