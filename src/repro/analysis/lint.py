"""The AST lint framework: rule registry, file walker, analysis driver.

Rules are plugins, registered exactly the way inference backends are
(:func:`repro.inference.backends.register_backend`): a class decorated with
:func:`register_rule` is instantiated once and becomes reachable by name.
Each rule sees one :class:`ModuleSource` at a time — the parsed AST plus the
raw source lines (comments matter to some contracts) — and yields structured
:class:`~repro.analysis.findings.Finding` objects.

The framework is dependency-light on purpose: no numpy, no inference imports,
stdlib ``ast`` only — so ``python -m repro.analysis`` stays runnable in a
bare CI container before the package's heavier dependencies are installed.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Type,
)

from repro.analysis.findings import Finding


@dataclass
class ModuleSource:
    """One Python file under analysis: location, raw text, parsed AST."""

    #: Path as reported in findings (posix separators, relative to the
    #: analysis root the walker was given).
    path: str
    text: str
    tree: ast.Module = field(repr=False)
    lines: List[str] = field(repr=False)

    @classmethod
    def parse(cls, path: str, display_path: Optional[str] = None) -> "ModuleSource":
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        shown = (display_path or path).replace(os.sep, "/")
        return cls(path=shown, text=text,
                   tree=ast.parse(text, filename=shown),
                   lines=text.splitlines())

    def line_text(self, lineno: int) -> str:
        """The 1-based source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(path=self.path, line=getattr(node, "lineno", 0),
                       rule=rule, message=message)


class LintRule(Protocol):
    """The protocol every registered rule implements.

    ``name`` is the registry key (and the prefix of baseline entries);
    ``check`` yields findings for one module.  Rules decide themselves which
    paths they apply to — the framework hands every walked file to every
    rule, so a rule guarding one layer returns early on everything else
    (see the ``applies_to`` methods in :mod:`repro.analysis.rules`).
    """

    name: str

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        ...


class UnknownRuleError(ValueError):
    """Raised when a rule name is not in the registry."""


_REGISTRY: Dict[str, LintRule] = {}


def register_rule(name: str) -> Callable[[Type[Any]], Type[Any]]:
    """Class decorator registering a :class:`LintRule` implementation.

    Mirrors ``register_backend``: the class is instantiated once (rules are
    stateless) and double registration is an error so a plugin cannot
    silently replace a built-in contract.
    """

    def decorator(cls: Type[Any]) -> Type[Any]:
        if name in _REGISTRY:
            raise ValueError(
                f"lint rule {name!r} is already registered "
                f"(by {type(_REGISTRY[name]).__name__}); pick a different "
                f"name or unregister_rule({name!r}) first")
        cls.name = name
        _REGISTRY[name] = cls()
        return cls

    return decorator


def unregister_rule(name: str) -> None:
    """Remove a rule from the registry (mainly for tests and plugins)."""
    _REGISTRY.pop(name, None)


def get_rule(name: str) -> LintRule:
    """Look up a registered rule by name, with a helpful error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(repr(n) for n in sorted(_REGISTRY)) or "<none>"
        raise UnknownRuleError(
            f"unknown lint rule {name!r}; registered rules: {known}") from None


def available_rules() -> Set[str]:
    """The names of all currently registered rules."""
    return set(_REGISTRY)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted.

    Hidden directories and ``__pycache__`` are skipped; the walk order is
    sorted so findings (and therefore baselines) are stable across machines.
    """
    for root in paths:
        if os.path.isfile(root):
            if root.endswith(".py"):
                yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames
                                 if not d.startswith(".") and d != "__pycache__")
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def run_analysis(paths: Sequence[str],
                 rules: Optional[Iterable[str]] = None) -> List[Finding]:
    """Run ``rules`` (default: all registered) over every file under ``paths``.

    A file that fails to parse produces a single ``parse-error`` finding
    instead of aborting the run — CI should report the broken file, not
    crash the linter.
    """
    selected = ([get_rule(name) for name in rules] if rules is not None
                else [_REGISTRY[name] for name in sorted(_REGISTRY)])
    findings: List[Finding] = []
    for filepath in iter_python_files(paths):
        try:
            module = ModuleSource.parse(filepath)
        except SyntaxError as error:
            findings.append(Finding(path=filepath.replace(os.sep, "/"),
                                    line=error.lineno or 0, rule="parse-error",
                                    message=f"file does not parse: {error.msg}"))
            continue
        for rule in selected:
            findings.extend(rule.check(module))
    return sorted(findings)
