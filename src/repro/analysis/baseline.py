"""Baseline (ratchet) support for the lint CLI.

A baseline file grandfathers *existing* findings so the CI job can gate new
violations from day one without requiring a flag-day cleanup.  Each line is a
:attr:`~repro.analysis.findings.Finding.baseline_key` (``rule:path:line``);
``#`` comments and blank lines are ignored.  Semantics:

* a finding whose key appears in the baseline is **suppressed** — but every
  suppression must be justified by a comment in the baseline file itself;
* a finding *not* in the baseline **fails** the run — the ratchet only turns
  one way;
* a baseline entry that no longer matches any finding is **stale** and is
  reported so it can be deleted (the ratchet tightening), without failing
  the run — line drift from unrelated edits should not break CI.

``python -m repro.analysis --update-baseline`` rewrites the file from the
current findings (for the rare deliberate grandfathering).
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.analysis.findings import Finding

_HEADER = """\
# repro.analysis baseline: grandfathered findings (rule:path:line per line).
# New findings are NOT excused by this file -- the static-analysis CI job
# fails on anything not listed here.  Keep this file empty if you can; every
# entry you add must carry a comment explaining why the finding is accepted.
"""


def load_baseline(path: str) -> Set[str]:
    """The set of grandfathered ``rule:path:line`` keys in ``path``.

    A missing file is an empty baseline (the common, healthy case).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return set()
    entries: Set[str] = set()
    for line in lines:
        stripped = line.split("#", 1)[0].strip()
        if stripped:
            entries.add(stripped)
    return entries


def write_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Rewrite ``path`` to grandfather exactly the given findings."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_HEADER)
        for finding in sorted(findings):
            handle.write(f"{finding.baseline_key}  # {finding.message[:80]}\n")


def partition_findings(findings: Iterable[Finding],
                       baseline: Set[str]) -> Tuple[List[Finding], List[Finding], Set[str]]:
    """Split findings into (new, grandfathered) and report stale entries."""
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    seen: Set[str] = set()
    for finding in findings:
        key = finding.baseline_key
        if key in baseline:
            grandfathered.append(finding)
            seen.add(key)
        else:
            new.append(finding)
    stale = baseline - seen
    return new, grandfathered, stale
