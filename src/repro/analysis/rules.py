"""The repo-specific lint rules: one executable contract per past incident.

Each rule class documents the invariant it encodes and the commit/review
finding that motivated it.  Rules are lexical (AST-level) by design: they
check the *shape* the concurrency and determinism contracts require, not
runtime behaviour — the runtime half lives in :mod:`repro.analysis.lockgraph`
and the test suites.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.lint import ModuleSource, register_rule

# --------------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------------- #


def path_components(path: str) -> List[str]:
    """The posix path split into components (for layer matching)."""
    return [part for part in path.split("/") if part]


def basename(path: str) -> str:
    return path_components(path)[-1] if path_components(path) else ""


def walk_excluding_defs(nodes: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Walk ``nodes`` depth-first without entering nested function bodies.

    Code inside a nested ``def``/``lambda`` executes later, outside the
    lexical scope being analysed (e.g. a callback defined under a lock does
    not *run* under it), so scope-sensitive rules skip those subtrees.
    """
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue        # the def statement itself is in scope; its body is not
        stack.extend(ast.iter_child_nodes(node))


def call_name(node: ast.Call) -> str:
    """The trailing name of a call target (``a.b.c()`` -> ``"c"``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def is_self_attribute(node: ast.AST, attrs: Set[str]) -> bool:
    """Whether ``node`` is ``self.<attr>`` for one of ``attrs``."""
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in attrs)


def lock_with_bodies(tree: ast.Module,
                     lock_attrs: Set[str]) -> Iterator[Tuple[ast.AST, List[ast.stmt]]]:
    """Every ``with self.<lock>:`` statement and its body, file-wide."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if is_self_attribute(item.context_expr, lock_attrs):
                    yield node, node.body
                    break


def nodes_under_lock(tree: ast.Module, lock_attrs: Set[str]) -> Set[int]:
    """ids of AST nodes lexically inside a ``with self.<lock>:`` body."""
    covered: Set[int] = set()
    for _, body in lock_with_bodies(tree, lock_attrs):
        for node in walk_excluding_defs(body):
            covered.add(id(node))
    return covered


def edit_distance(a: str, b: str) -> int:
    """Plain Levenshtein distance (small strings only)."""
    if a == b:
        return 0
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            current.append(min(previous[j] + 1, current[j - 1] + 1,
                               previous[j - 1] + (char_a != char_b)))
        previous = current
    return previous[-1]


# --------------------------------------------------------------------------- #
# lock-discipline: no slow work under the pool lock        (incident: fcf99ca)
# --------------------------------------------------------------------------- #


@register_rule("lock-discipline")
class LockDisciplineRule:
    """No known-slow call lexically inside a ``with self._lock:`` block.

    The PR-6 review found ``SessionPool`` holding its (single, global) lock
    across ``prepare()`` and ``close()`` — one tenant's cache miss stalled
    every other tenant's lookup, and an eviction could block behind an
    in-flight run (fixed in fcf99ca by moving slow work outside the lock
    behind per-fingerprint once-guards).  This rule keeps that shape: in the
    serving-layer files, the pool-lock scope may only contain cheap
    bookkeeping — never planning, execution, or session teardown.
    """

    name = "lock-discipline"
    #: attribute names treated as the "cheap bookkeeping only" pool lock.
    LOCK_ATTRS = {"_lock", "_pool_lock"}
    #: operations that plan, execute, wait, or tear down — never under it.
    SLOW_CALLS = {"prepare", "close", "infer", "infer_many", "plan",
                  "execute", "flush_deltas", "apply_delta"}

    def applies_to(self, path: str) -> bool:
        return (basename(path) in {"pool.py", "session.py", "gateway.py"}
                or "serving" in path_components(path)[:-1])

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not self.applies_to(module.path):
            return
        for _, body in lock_with_bodies(module.tree, self.LOCK_ATTRS):
            for node in walk_excluding_defs(body):
                if isinstance(node, ast.Call) and call_name(node) in self.SLOW_CALLS:
                    yield module.finding(
                        node, self.name,
                        f"slow operation {call_name(node)}() called while "
                        f"holding the pool lock; move it outside the "
                        f"`with self._lock:` block (one tenant's slow path "
                        f"must never stall every other tenant's lookup)")


# --------------------------------------------------------------------------- #
# fingerprint-under-lock: no tearing tenant hashes          (incident: fcf99ca)
# --------------------------------------------------------------------------- #


@register_rule("fingerprint-under-lock")
class FingerprintUnderLockRule:
    """``graph_fingerprint(...)`` in the pool only inside pool-lock scopes.

    The fingerprint-tear race (fixed in fcf99ca): hashing a tenant graph
    outside the pool lock can read arrays mid-mutation while a concurrent
    ``apply_delta`` mirrors a delta onto the same graph under the lock — a
    corrupted cache key that serves wrong scores.  Every fingerprint of a
    tenant graph in ``pool.py`` must therefore happen under the same lock the
    mirror holds.
    """

    name = "fingerprint-under-lock"
    LOCK_ATTRS = LockDisciplineRule.LOCK_ATTRS

    def applies_to(self, path: str) -> bool:
        return basename(path) == "pool.py"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not self.applies_to(module.path):
            return
        covered = nodes_under_lock(module.tree, self.LOCK_ATTRS)
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and call_name(node) == "graph_fingerprint"
                    and id(node) not in covered):
                yield module.finding(
                    node, self.name,
                    "graph_fingerprint() on a tenant graph outside the pool "
                    "lock can hash half-mutated arrays while apply_delta "
                    "mirrors a delta under the lock (the fingerprint-tear "
                    "race); compute it inside `with self._lock:`")


# --------------------------------------------------------------------------- #
# determinism: compute kernels must be replayable
# --------------------------------------------------------------------------- #


@register_rule("determinism")
class DeterminismRule:
    """No wall-clock, global RNG, or hash-ordered iteration in compute paths.

    The executor contract (PR 5) promises bit-identical scores across the
    serial and process substrates, and incremental inference (PR 3) promises
    bit-identity against full recomputes — both break the moment a kernel
    consults ``time.time()``, an unseeded global RNG, or iterates a hash-set
    while accumulating.  ``time.perf_counter()`` is permitted only where its
    value is *assigned* (metrics timing), never where it feeds computation.
    """

    name = "determinism"
    COMPUTE_DIRS = {"pregel", "batch", "tensor", "gnn"}
    #: np.random functions that produce *seeded* generators when given args.
    SEEDABLE = {"default_rng", "Generator", "SeedSequence", "RandomState"}

    def applies_to(self, path: str) -> bool:
        return bool(self.COMPUTE_DIRS & set(path_components(path)[:-1]))

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not self.applies_to(module.path):
            return
        parents = {id(child): parent for parent in ast.walk(module.tree)
                   for child in ast.iter_child_nodes(parent)}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, parents)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_loop(module, node)

    def _check_call(self, module: ModuleSource, node: ast.Call,
                    parents: Dict[int, ast.AST]) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        owner = func.value
        # time.time / datetime.now / datetime.utcnow
        if isinstance(owner, ast.Name) and owner.id == "time":
            if func.attr == "time":
                yield module.finding(
                    node, self.name,
                    "time.time() in a compute path breaks replay determinism; "
                    "use time.perf_counter() for metrics timing")
            elif func.attr == "perf_counter" and not self._is_assigned(node, parents):
                yield module.finding(
                    node, self.name,
                    "time.perf_counter() may only be assigned to a metrics "
                    "variable/field in compute paths, never fed into "
                    "computation")
        elif (isinstance(owner, ast.Name) and owner.id == "datetime"
              and func.attr in {"now", "utcnow", "today"}):
            yield module.finding(
                node, self.name,
                f"datetime.{func.attr}() in a compute path breaks replay "
                f"determinism")
        # bare random.<fn>: the process-global, unseeded-per-worker RNG
        elif isinstance(owner, ast.Name) and owner.id == "random":
            yield module.finding(
                node, self.name,
                f"random.{func.attr}() uses the process-global RNG; compute "
                f"paths must thread an explicitly seeded Generator instead")
        # np.random.<fn>: global-state numpy RNG, or unseeded constructors
        elif (isinstance(owner, ast.Attribute) and owner.attr == "random"
              and isinstance(owner.value, ast.Name)
              and owner.value.id in {"np", "numpy"}):
            if func.attr not in self.SEEDABLE:
                yield module.finding(
                    node, self.name,
                    f"np.random.{func.attr}() draws from numpy's global RNG; "
                    f"compute paths must use an explicitly seeded "
                    f"np.random.default_rng(seed)")
            elif not node.args and not node.keywords:
                yield module.finding(
                    node, self.name,
                    f"np.random.{func.attr}() without a seed is entropy-"
                    f"seeded; compute paths must pass an explicit seed")

    @staticmethod
    def _is_assigned(node: ast.Call, parents: Dict[int, ast.AST]) -> bool:
        """Whether the call value lands in an assignment or keyword argument.

        ``started = time.perf_counter()`` and
        ``record(measured_seconds=time.perf_counter() - started)`` are the
        two sanctioned metrics-timing shapes.
        """
        current: ast.AST = node
        while True:
            parent = parents.get(id(current))
            if parent is None:
                return False
            if isinstance(parent, ast.keyword):
                return True
            if isinstance(parent, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                return True
            if isinstance(parent, ast.stmt):
                return False
            current = parent

    def _check_loop(self, module: ModuleSource,
                    node: ast.For) -> Iterator[Finding]:
        iterated = node.iter
        is_set_literal = isinstance(iterated, ast.Set)
        is_set_call = (isinstance(iterated, ast.Call)
                       and isinstance(iterated.func, ast.Name)
                       and iterated.func.id in {"set", "frozenset"})
        if is_set_literal or is_set_call:
            yield module.finding(
                node, self.name,
                "iterating a hash-set in a compute path visits elements in "
                "hash order, which differs across processes/seeds and makes "
                "any accumulation order-dependent; iterate sorted(...) "
                "instead")


# --------------------------------------------------------------------------- #
# broad-except hygiene
# --------------------------------------------------------------------------- #

_BROAD_NAMES = {"Exception", "BaseException"}


def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    names = node.elts if isinstance(node, ast.Tuple) else [node]
    return any(isinstance(name, ast.Name) and name.id in _BROAD_NAMES
               for name in names)


def _comment_text(line: str) -> str:
    """The justification content of a line's comment, pragmas stripped.

    ``# pragma: no cover`` and ``# noqa[:CODES]`` markers alone are tool
    directives, not justifications; text beyond them counts.
    """
    if "#" not in line:
        return ""
    comment = line.split("#", 1)[1]
    for marker in ("pragma: no cover", "pragma:no cover"):
        comment = comment.replace(marker, "")
    words = [w for w in comment.replace("-", " ").replace(":", " ").split()
             if not (w == "noqa" or w.isupper())]
    return " ".join(words)


@register_rule("broad-except")
class BroadExceptRule:
    """Every ``except Exception`` must re-raise or justify itself.

    A swallowed broad exception converted two real bugs into silent
    degradation before this repo grew its serving tier (a typo'd backend
    hook name and a worker-cleanup error both vanished into ``pass``
    blocks).  Best-effort handlers are legitimate — worker teardown must
    not mask the original failure — but each one must say so in a comment
    on the ``except`` line (or the line just above/below it), so the next
    reader can tell intent from accident.
    """

    name = "broad-except"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _handler_is_broad(node):
                continue
            if any(isinstance(inner, ast.Raise)
                   for inner in walk_excluding_defs(node.body)):
                continue
            if self._has_justification(module, node):
                continue
            caught = ("bare except" if node.type is None else
                      f"except {ast.unparse(node.type)}")
            yield module.finding(
                node, self.name,
                f"{caught} neither re-raises nor carries a justification "
                f"comment; narrow it to the concrete exception types, or "
                f"add a comment explaining why best-effort is correct here")

    @staticmethod
    def _has_justification(module: ModuleSource,
                           handler: ast.ExceptHandler) -> bool:
        first_body_line = (handler.body[0].lineno if handler.body
                           else handler.lineno)
        candidates = range(handler.lineno - 1, first_body_line + 1)
        return any(_comment_text(module.line_text(lineno))
                   for lineno in candidates)


# --------------------------------------------------------------------------- #
# backend-protocol completeness
# --------------------------------------------------------------------------- #


@register_rule("backend-protocol")
class BackendProtocolRule:
    """Registered backends must implement the protocol — exactly.

    The session discovers the optional delta hooks via ``getattr``, so a
    typo'd hook name (``apply_deltas``, ``execute_incremenal``) never errors
    — it silently degrades every delta to a full recompute, which is the
    worst kind of performance bug: invisible until someone profiles.  This
    rule checks every ``@register_backend`` class for the required surface
    (``plan`` / ``execute`` / ``default_cluster``), verifies present optional
    hooks match the protocol signatures *exactly*, and flags near-miss
    method names as probable typos.
    """

    name = "backend-protocol"
    REQUIRED = {"plan", "execute", "default_cluster"}
    #: optional hook -> exact positional parameter names.
    HOOKS = {
        "apply_delta": ["self", "plan", "delta"],
        "execute_incremental": ["self", "plan", "metrics",
                                "feature_dirty", "topo_dirty"],
    }

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and self._is_backend(node):
                yield from self._check_backend(module, node)

    @staticmethod
    def _is_backend(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                func = decorator.func
                name = (func.id if isinstance(func, ast.Name)
                        else func.attr if isinstance(func, ast.Attribute)
                        else "")
                if name == "register_backend":
                    return True
        return False

    def _check_backend(self, module: ModuleSource,
                       node: ast.ClassDef) -> Iterator[Finding]:
        methods = {stmt.name: stmt for stmt in node.body
                   if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}
        for required in sorted(self.REQUIRED - set(methods)):
            yield module.finding(
                node, self.name,
                f"backend class {node.name} is missing required protocol "
                f"method {required}(); registration would fail at first use")
        for hook, expected in self.HOOKS.items():
            method = methods.get(hook)
            if method is not None:
                yield from self._check_hook_signature(module, method, expected)
        for name, method in methods.items():
            if name.startswith("_") or name in self.REQUIRED or name in self.HOOKS:
                continue
            for hook in self.HOOKS:
                if edit_distance(name, hook) <= 2:
                    yield module.finding(
                        method, self.name,
                        f"method {name}() looks like a misspelling of the "
                        f"optional hook {hook}(); the session discovers hooks "
                        f"by exact name via getattr, so this would silently "
                        f"degrade every delta to a full recompute")

    def _check_hook_signature(self, module: ModuleSource,
                              method: ast.FunctionDef,
                              expected: Sequence[str]) -> Iterator[Finding]:
        args = method.args
        actual = [arg.arg for arg in args.posonlyargs + args.args]
        clean = (actual == list(expected)
                 and not args.vararg and not args.kwarg
                 and not args.kwonlyargs and not args.defaults)
        if not clean:
            yield module.finding(
                method, self.name,
                f"optional hook {method.name}({', '.join(actual)}) does not "
                f"match the protocol signature "
                f"{method.name}({', '.join(expected)}); the session calls "
                f"hooks positionally, so a drifted signature fails (or "
                f"worse, silently misbinds) at serving time")
