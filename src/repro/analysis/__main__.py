"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit status: 0 when every finding is grandfathered (or none exist), 1 when
new findings are present, 2 on usage errors.  The ``static-analysis`` CI job
runs ``python -m repro.analysis src`` and treats the output as the job
summary.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.baseline import (
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.analysis.lint import available_rules, run_analysis

DEFAULT_BASELINE = "analysis-baseline.txt"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analysis (concurrency, determinism "
                    "and plugin-protocol contracts).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyse (default: src)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"grandfathered-findings file "
                             f"(default: {DEFAULT_BASELINE}; missing = empty)")
    parser.add_argument("--rule", action="append", dest="rules", default=None,
                        metavar="NAME",
                        help="run only this rule (repeatable; default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rule names and exit")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="findings output format (default: text)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline file to grandfather every "
                             "current finding, then exit 0")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(available_rules()):
            print(name)
        return 0

    paths = args.paths or ["src"]
    findings = run_analysis(paths, rules=args.rules)

    if args.update_baseline:
        write_baseline(args.baseline, findings)
        print(f"baseline updated: {len(findings)} finding(s) grandfathered "
              f"in {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    new, grandfathered, stale = partition_findings(findings, baseline)

    if args.format == "json":
        print(json.dumps({
            "new": [f.describe() for f in new],
            "grandfathered": [f.describe() for f in grandfathered],
            "stale_baseline_entries": sorted(stale),
        }, indent=2))
    else:
        for finding in new:
            print(finding.describe())
        if grandfathered:
            print(f"-- {len(grandfathered)} grandfathered finding(s) "
                  f"suppressed by {args.baseline}")
        for key in sorted(stale):
            print(f"-- stale baseline entry (fixed or moved -- delete it): "
                  f"{key}")
        verdict = "FAIL" if new else "OK"
        print(f"{verdict}: {len(new)} new finding(s), "
              f"{len(grandfathered)} grandfathered, "
              f"{len(stale)} stale baseline entr(y/ies) "
              f"[{len(sorted(available_rules()))} rule(s) over "
              f"{', '.join(paths)}]")
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
