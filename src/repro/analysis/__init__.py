"""Repo-specific static analysis: executable correctness contracts.

PRs 5-7 turned this reproduction into a concurrent serving stack, and the
invariants that keep it correct — what may run under the pool lock, where
graphs may be fingerprinted, which operations must stay deterministic, what a
backend plugin must look like — lived only in prose (``docs/ARCHITECTURE.md``)
until the first refactor quietly broke them.  This package makes those
contracts machine-checked:

* :mod:`repro.analysis.lint` — a small AST rule framework (rules register
  through :func:`~repro.analysis.lint.register_rule`, exactly like inference
  backends register through ``register_backend``) with the repo-specific rule
  set in :mod:`repro.analysis.rules`;
* :mod:`repro.analysis.lockgraph` — an opt-in (``REPRO_LOCK_TRACK=1``)
  runtime lock-acquisition tracker that fails threaded test runs on
  lock-order cycles and on slow operations executed while holding a
  no-slow-work lock (the bug class fixed in the PR-6 review);
* ``python -m repro.analysis [paths]`` — the CLI the ``static-analysis`` CI
  job runs; a checked-in baseline file makes it a ratchet, not a flag-day.

Each rule documents the incident (commit) that motivated it; see
``docs/ARCHITECTURE.md`` ("Machine-checked invariants") for the full list.
"""

from repro.analysis.baseline import load_baseline, partition_findings, write_baseline
from repro.analysis.findings import Finding
from repro.analysis.lint import (
    LintRule,
    ModuleSource,
    UnknownRuleError,
    available_rules,
    get_rule,
    iter_python_files,
    register_rule,
    run_analysis,
    unregister_rule,
)

# Importing the rules module registers the built-in rule set.
import repro.analysis.rules  # noqa: F401  (registration side effect)

__all__ = [
    "Finding",
    "LintRule",
    "ModuleSource",
    "UnknownRuleError",
    "available_rules",
    "get_rule",
    "iter_python_files",
    "load_baseline",
    "partition_findings",
    "register_rule",
    "run_analysis",
    "unregister_rule",
    "write_baseline",
]
