"""The structured result type every lint rule emits."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Findings sort by location (path, line, rule) so reports and baselines are
    stable across runs regardless of rule execution order.
    """

    #: Repo-relative posix path of the offending file.
    path: str
    #: 1-based line of the offending node.
    line: int
    #: Registry name of the rule that fired.
    rule: str
    #: Human-readable description of the violated contract.
    message: str

    @property
    def baseline_key(self) -> str:
        """The grandfathering key: rule + location, message excluded.

        Messages may be reworded without un-grandfathering a finding; moving
        the offending code (or fixing it) invalidates the entry, which is the
        ratchet working as intended.
        """
        return f"{self.rule}:{self.path}:{self.line}"

    def describe(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"
