"""Evaluation metrics used by the training loop and the Table II experiment."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.tensor.losses import accuracy, micro_f1


def evaluate_single_label(logits: np.ndarray, labels: np.ndarray) -> Dict[str, float]:
    """Accuracy for single-label node classification."""
    return {"accuracy": accuracy(logits, labels)}


def evaluate_multi_label(logits: np.ndarray, targets: np.ndarray) -> Dict[str, float]:
    """Micro-F1 for multi-label node classification (PPI-style)."""
    return {"micro_f1": micro_f1(logits, targets)}


def prediction_labels(logits: np.ndarray, multilabel: bool = False) -> np.ndarray:
    """Hard predictions from logits: argmax, or per-label threshold at 0."""
    logits = np.asarray(logits)
    if multilabel:
        return (logits > 0.0).astype(np.int64)
    return logits.argmax(axis=-1)
