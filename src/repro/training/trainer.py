"""Mini-batch trainer over (sampled) k-hop neighbourhoods.

Reproduces the training half of the paper's collaborative setting: seeds are
the labelled nodes (often ≤1% of the graph), batches of seeds get their k-hop
neighbourhoods extracted (optionally with uniform neighbour sampling for
speed), the model forward/backward runs locally on the subgraph tensors, and
the optimiser updates shared parameters.  The trained model is later exported
via :func:`repro.gnn.signature.export_signature` for full-graph inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.gnn.model import GNNModel
from repro.graph.graph import Graph
from repro.graph.khop import khop_neighborhood
from repro.graph.sampling import FullNeighborSampler, NeighborSampler, UniformNeighborSampler
from repro.tensor.losses import (
    accuracy,
    binary_cross_entropy_with_logits,
    micro_f1,
    softmax_cross_entropy,
)
from repro.tensor.optim import Adam
from repro.tensor.tensor import Tensor, no_grad


@dataclass
class TrainConfig:
    """Hyper-parameters of the mini-batch training loop."""

    num_epochs: int = 10
    batch_size: int = 64
    learning_rate: float = 0.01
    weight_decay: float = 0.0
    fanout: Optional[int] = 10          # neighbours sampled per hop; None = full
    multilabel: bool = False
    seed: int = 0
    log_every: int = 0                  # 0 disables progress records


@dataclass
class TrainResult:
    """Outcome of a training run: loss curve and final metrics."""

    losses: List[float] = field(default_factory=list)
    train_metric: float = 0.0
    history: List[Dict[str, float]] = field(default_factory=list)


class Trainer:
    """Mini-batch k-hop trainer for :class:`~repro.gnn.model.GNNModel`."""

    def __init__(self, model: GNNModel, graph: Graph, config: Optional[TrainConfig] = None) -> None:
        self.model = model
        self.graph = graph
        self.config = config or TrainConfig()
        if graph.labels is None:
            raise ValueError("training requires a labelled graph")
        self._rng = np.random.default_rng(self.config.seed)
        self._sampler: NeighborSampler
        if self.config.fanout is None:
            self._sampler = FullNeighborSampler()
        else:
            self._sampler = UniformNeighborSampler(self.config.fanout)
        self._optimizer = Adam(model.parameters(), lr=self.config.learning_rate,
                               weight_decay=self.config.weight_decay)

    # ------------------------------------------------------------------ #
    def _loss_and_metric(self, logits: Tensor, labels: np.ndarray) -> tuple:
        if self.config.multilabel:
            loss = binary_cross_entropy_with_logits(logits, labels)
            metric = micro_f1(logits, labels)
        else:
            loss = softmax_cross_entropy(logits, labels)
            metric = accuracy(logits, labels)
        return loss, metric

    def _forward_batch(self, seeds: np.ndarray, train_mode: bool) -> tuple:
        subgraph = khop_neighborhood(
            self.graph, seeds, self.model.num_layers,
            sampler=self._sampler if train_mode else FullNeighborSampler(),
            rng=self._rng,
        )
        features = Tensor(subgraph.node_features)
        edge_features = None if subgraph.edge_features is None else Tensor(subgraph.edge_features)
        logits = self.model.forward(features, subgraph.src, subgraph.dst,
                                    edge_features=edge_features,
                                    num_nodes=subgraph.num_nodes)
        seed_logits = logits[subgraph.target_positions]
        seed_labels = self.graph.labels[seeds]
        return seed_logits, seed_labels

    # ------------------------------------------------------------------ #
    def fit(self, train_nodes: Sequence[int]) -> TrainResult:
        """Train on the given labelled seed nodes and return the loss history."""
        train_nodes = np.asarray(list(train_nodes), dtype=np.int64)
        result = TrainResult()
        self.model.train()
        for epoch in range(self.config.num_epochs):
            order = self._rng.permutation(train_nodes)
            epoch_losses: List[float] = []
            epoch_metrics: List[float] = []
            for start in range(0, order.size, self.config.batch_size):
                seeds = order[start:start + self.config.batch_size]
                self._optimizer.zero_grad()
                seed_logits, seed_labels = self._forward_batch(seeds, train_mode=True)
                loss, metric = self._loss_and_metric(seed_logits, seed_labels)
                loss.backward()
                self._optimizer.step()
                epoch_losses.append(float(loss.data))
                epoch_metrics.append(metric)
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
            mean_metric = float(np.mean(epoch_metrics)) if epoch_metrics else 0.0
            result.losses.append(mean_loss)
            result.history.append({"epoch": epoch, "loss": mean_loss, "metric": mean_metric})
            result.train_metric = mean_metric
        return result

    def evaluate(self, eval_nodes: Sequence[int], batch_size: Optional[int] = None) -> Dict[str, float]:
        """Evaluate with full (unsampled) k-hop neighbourhoods — deterministic."""
        eval_nodes = np.asarray(list(eval_nodes), dtype=np.int64)
        batch_size = batch_size or self.config.batch_size
        self.model.eval()
        all_logits: List[np.ndarray] = []
        all_labels: List[np.ndarray] = []
        with no_grad():
            for start in range(0, eval_nodes.size, batch_size):
                seeds = eval_nodes[start:start + batch_size]
                seed_logits, seed_labels = self._forward_batch(seeds, train_mode=False)
                all_logits.append(seed_logits.data)
                all_labels.append(np.asarray(seed_labels))
        self.model.train()
        logits = np.concatenate(all_logits, axis=0)
        labels = np.concatenate(all_labels, axis=0)
        if self.config.multilabel:
            return {"micro_f1": micro_f1(logits, labels)}
        return {"accuracy": accuracy(logits, labels)}
