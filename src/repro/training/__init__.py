"""Mini-batch training of GAS GNN models over k-hop neighbourhoods.

The training phase follows the traditional pipeline the paper keeps: labelled
seed nodes are batched, their (sampled) k-hop neighbourhoods are extracted,
and the model's local :meth:`~repro.gnn.model.GNNModel.forward` runs over each
subgraph.  The resulting well-trained model is exported through
:mod:`repro.gnn.signature` and handed to the InferTurbo inference engine.
"""

from repro.training.trainer import Trainer, TrainConfig
from repro.training.metrics import evaluate_single_label, evaluate_multi_label

__all__ = ["Trainer", "TrainConfig", "evaluate_single_label", "evaluate_multi_label"]
