"""Annotation decorators for the GAS computation stages.

The paper marks each overridden computation method with a decorator
(``@Gather(partial=True)``, ``@ApplyNode``, ``@ApplyEdge``); the decorator
records, per layer, which stage the function implements and whether the stage
may be relocated (partial-gather pushes the aggregate computation onto the
sender side / the backend combiner).  At model-export time the annotations are
written into the layer-wise signature file so the inference adaptors can
reorganise the computation flow without manual configuration.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional


@dataclass(frozen=True)
class StageAnnotation:
    """Metadata attached to a stage implementation.

    Attributes
    ----------
    stage:
        One of ``"gather"``, ``"apply_node"``, ``"apply_edge"``.
    partial:
        For the gather stage only: whether the aggregate computation obeys the
        commutative and associative laws, making partial-gather (combiner-side
        pre-aggregation) legal.
    options:
        Free-form extra flags recorded into the signature file (e.g. the
        pooling kind), available to the inference adaptors.
    """

    stage: str
    partial: bool = False
    options: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"stage": self.stage, "partial": self.partial, "options": dict(self.options)}

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "StageAnnotation":
        return StageAnnotation(stage=payload["stage"], partial=bool(payload.get("partial", False)),
                               options=dict(payload.get("options", {})))


_ANNOTATION_ATTR = "__gas_stage_annotation__"


def _annotate(func: Callable, annotation: StageAnnotation) -> Callable:
    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        return func(*args, **kwargs)

    setattr(wrapper, _ANNOTATION_ATTR, annotation)
    return wrapper


def gather_stage(partial: bool = False, **options: Any) -> Callable[[Callable], Callable]:
    """Mark a method as the *aggregate* computation of the Gather stage.

    ``partial=True`` asserts the computation is commutative and associative,
    enabling the partial-gather strategy (sender-side / combiner pre-reduce).
    """

    def decorator(func: Callable) -> Callable:
        return _annotate(func, StageAnnotation("gather", partial=partial, options=options))

    return decorator


def apply_node_stage(func: Optional[Callable] = None, **options: Any):
    """Mark a method as the Apply stage (node state update)."""

    def decorator(inner: Callable) -> Callable:
        return _annotate(inner, StageAnnotation("apply_node", options=options))

    if func is not None:
        return decorator(func)
    return decorator


def apply_edge_stage(func: Optional[Callable] = None, **options: Any):
    """Mark a method as the apply_edge computation of the Scatter stage."""

    def decorator(inner: Callable) -> Callable:
        return _annotate(inner, StageAnnotation("apply_edge", options=options))

    if func is not None:
        return decorator(func)
    return decorator


def stage_annotation(func: Callable) -> Optional[StageAnnotation]:
    """Return the :class:`StageAnnotation` attached to ``func`` (or None)."""
    return getattr(func, _ANNOTATION_ATTR, None)


def collect_annotations(obj: Any) -> Dict[str, StageAnnotation]:
    """Collect stage annotations from an object's bound methods.

    Returns a mapping from method name to annotation; used when exporting the
    layer-wise signature files.
    """
    annotations: Dict[str, StageAnnotation] = {}
    for name in dir(obj):
        if name.startswith("__"):
            continue
        try:
            attribute = getattr(obj, name)
        except AttributeError:  # pragma: no cover - defensive
            continue
        if callable(attribute):
            annotation = stage_annotation(attribute)
            if annotation is not None:
                annotations[name] = annotation
    return annotations
