"""GraphSAGE layer in the GAS-like abstraction.

The aggregate stage is a pooling function (mean by default, sum/max available)
and therefore commutative and associative — the layer is annotated with
``@gather_stage(partial=True)`` and is the canonical beneficiary of the
partial-gather strategy.  A fused ``scatter_and_gather`` implementation based
on a generalised sparse-dense matmul is provided for the training path, as in
the paper's Fig. 3.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gnn.annotations import apply_edge_stage, apply_node_stage, gather_stage
from repro.gnn.gasconv import GASConv
from repro.tensor import ops
from repro.tensor.nn import Linear
from repro.tensor.tensor import Tensor


class SAGEConv(GASConv):
    """GraphSAGE convolution: ``h' = act(W_self h + W_nbr AGG(messages))``.

    Parameters
    ----------
    in_dim, out_dim:
        Input and output embedding widths.
    aggregator:
        ``"mean"`` (default), ``"sum"`` or ``"max"``.
    edge_dim:
        Width of edge features; when positive, edge features are projected and
        added to the per-edge message in ``apply_edge``.
    activation:
        ``"relu"`` or ``"none"`` (the last layer of a model typically uses
        ``"none"`` so logits are produced by the prediction head).
    """

    def __init__(self, in_dim: int, out_dim: int, aggregator: str = "mean",
                 edge_dim: int = 0, activation: str = "relu",
                 seed: int = 0) -> None:
        super().__init__(in_dim, out_dim)
        if aggregator not in ("mean", "sum", "max"):
            raise ValueError("aggregator must be mean, sum or max")
        rng = np.random.default_rng(seed)
        self.aggregator = aggregator
        self.edge_dim = int(edge_dim)
        self.activation = activation
        self.self_linear = Linear(in_dim, out_dim, rng=rng)
        self.neighbor_linear = Linear(in_dim, out_dim, rng=rng)
        self.edge_linear = Linear(edge_dim, in_dim, rng=rng) if edge_dim > 0 else None

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #
    @property
    def aggregate_kind(self) -> str:
        return self.aggregator

    @property
    def message_dim(self) -> int:
        # Messages carry the (possibly edge-augmented) previous-layer state.
        return self.in_dim

    def apply_edge_is_identity(self, has_edge_features: bool) -> bool:
        # Messages are raw previous-layer states unless edge features feed in.
        return self.edge_linear is None or not has_edge_features

    def config(self):
        return {
            "in_dim": self.in_dim,
            "out_dim": self.out_dim,
            "aggregator": self.aggregator,
            "edge_dim": self.edge_dim,
            "activation": self.activation,
        }

    # ------------------------------------------------------------------ #
    # computation stages
    # ------------------------------------------------------------------ #
    @gather_stage(partial=True)
    def gather(self, message: Tensor, dst_index: np.ndarray, num_nodes: int,
               counts: Optional[np.ndarray] = None) -> Tensor:
        """Pool in-edge messages per destination node.

        ``counts`` carries the number of raw messages folded into each row by
        the sender-side combiner: the mean aggregator divides the summed
        payloads by the summed counts so partial-gather is exact.
        """
        message = message if isinstance(message, Tensor) else Tensor(message)
        if self.aggregator == "max":
            return ops.segment_max(message, dst_index, num_nodes)
        summed = ops.segment_sum(message, dst_index, num_nodes)
        if self.aggregator == "sum":
            return summed
        if counts is None:
            counts = np.ones(message.shape[0], dtype=np.float64)
        denom = np.zeros(num_nodes, dtype=np.float64)
        np.add.at(denom, np.asarray(dst_index, dtype=np.int64), np.asarray(counts, dtype=np.float64))
        denom = np.maximum(denom, 1.0)
        return summed * Tensor(1.0 / denom.reshape(-1, 1))

    @apply_node_stage
    def apply_node(self, node_state: Tensor, aggr_state: Tensor) -> Tensor:
        """Combine the node's own state with the pooled neighbourhood."""
        out = self.self_linear(node_state) + self.neighbor_linear(aggr_state)
        if self.activation == "relu":
            out = out.relu()
        return out

    @apply_edge_stage
    def apply_edge(self, message: Tensor, edge_state: Optional[Tensor]) -> Tensor:
        """Augment the outgoing message with projected edge features, if any."""
        if edge_state is None or self.edge_linear is None:
            return message
        edge_state = edge_state if isinstance(edge_state, Tensor) else Tensor(edge_state)
        return message + self.edge_linear(edge_state)

    # ------------------------------------------------------------------ #
    # fused training shortcut (paper Fig. 3)
    # ------------------------------------------------------------------ #
    def scatter_and_gather(self, node_state: Tensor, src_index: np.ndarray,
                           dst_index: np.ndarray, num_nodes: int) -> Tensor:
        """Fused scatter→apply_edge→gather via sparse matmul (training only).

        Only exact for the mean/sum aggregators without edge features; the
        base class falls back to the default path otherwise.
        """
        if self.aggregator == "max":
            message = self.scatter(node_state, src_index)
            return self.gather(message, dst_index, num_nodes)
        summed = ops.spmm(dst_index, src_index, None, node_state, num_nodes)
        if self.aggregator == "sum":
            return summed
        counts = np.zeros(num_nodes, dtype=np.float64)
        np.add.at(counts, np.asarray(dst_index, dtype=np.int64), 1.0)
        counts = np.maximum(counts, 1.0)
        return summed * Tensor(1.0 / counts.reshape(-1, 1))
