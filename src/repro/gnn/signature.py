"""Layer-wise model signature files.

When a well-trained model is saved, the system writes a *signature* per layer
recording (a) which class implements it and with which configuration, (b) the
stage annotations (including the ``partial`` flag that authorises
partial-gather), and (c) the trained parameters.  The inference adaptors load
the signature to rebuild the exact computation flow and to decide which
optimisation strategies may be enabled — no manual configuration, as the paper
emphasises in Section IV-B1.

On disk a signature is a directory with ``signature.json`` (structure and
annotations) and ``parameters.npz`` (flat name → array parameter map).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.gnn.gasconv import GASConv
from repro.gnn.model import GNNModel, layer_class
from repro.tensor.nn import Linear


@dataclass
class LayerSignature:
    """Signature of one GAS layer."""

    class_name: str
    config: Dict[str, Any]
    annotations: Dict[str, Dict[str, Any]]
    aggregate_kind: str
    supports_partial_gather: bool
    message_dim: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "class_name": self.class_name,
            "config": self.config,
            "annotations": self.annotations,
            "aggregate_kind": self.aggregate_kind,
            "supports_partial_gather": self.supports_partial_gather,
            "message_dim": self.message_dim,
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "LayerSignature":
        return LayerSignature(
            class_name=payload["class_name"],
            config=dict(payload["config"]),
            annotations=dict(payload["annotations"]),
            aggregate_kind=payload["aggregate_kind"],
            supports_partial_gather=bool(payload["supports_partial_gather"]),
            message_dim=int(payload["message_dim"]),
        )


@dataclass
class ModelSignature:
    """Signature of a whole model: encoder, layers, head, trained parameters."""

    feature_dim: int
    hidden_dim: int
    output_dim: int
    has_head: bool
    layers: List[LayerSignature]
    parameters: Dict[str, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "feature_dim": self.feature_dim,
            "hidden_dim": self.hidden_dim,
            "output_dim": self.output_dim,
            "has_head": self.has_head,
            "layers": [layer.to_dict() for layer in self.layers],
        }

    def save(self, directory: str) -> None:
        """Write ``signature.json`` and ``parameters.npz`` under ``directory``."""
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "signature.json"), "w", encoding="utf-8") as handle:
            json.dump(self.to_json_dict(), handle, indent=2)
        np.savez(os.path.join(directory, "parameters.npz"), **self.parameters)

    @staticmethod
    def load(directory: str) -> "ModelSignature":
        with open(os.path.join(directory, "signature.json"), encoding="utf-8") as handle:
            payload = json.load(handle)
        archive = np.load(os.path.join(directory, "parameters.npz"))
        parameters = {name: archive[name] for name in archive.files}
        return ModelSignature(
            feature_dim=int(payload["feature_dim"]),
            hidden_dim=int(payload["hidden_dim"]),
            output_dim=int(payload["output_dim"]),
            has_head=bool(payload["has_head"]),
            layers=[LayerSignature.from_dict(item) for item in payload["layers"]],
            parameters=parameters,
        )

    # ------------------------------------------------------------------ #
    def build_model(self) -> GNNModel:
        """Reconstruct the model object and load its trained parameters."""
        rng = np.random.default_rng(0)
        encoder = Linear(self.feature_dim, self.hidden_dim, rng=rng)
        layers: List[GASConv] = []
        for layer_sig in self.layers:
            cls = layer_class(layer_sig.class_name)
            layers.append(cls(**layer_sig.config))
        head = None
        if self.has_head:
            last_width = getattr(layers[-1], "output_dim", layers[-1].out_dim)
            head = Linear(last_width, self.output_dim, rng=rng)
        model = GNNModel(encoder, layers, head)
        if self.parameters:
            model.load_state_dict(self.parameters)
        return model


def export_signature(model: GNNModel) -> ModelSignature:
    """Create a :class:`ModelSignature` from a (trained) model."""
    layer_signatures = [
        LayerSignature(
            class_name=type(layer).__name__,
            config=layer.config(),
            annotations=layer.annotations(),
            aggregate_kind=layer.aggregate_kind,
            supports_partial_gather=layer.supports_partial_gather,
            message_dim=layer.message_dim,
        )
        for layer in model.layers
    ]
    return ModelSignature(
        feature_dim=model.encoder.in_features,
        hidden_dim=model.encoder.out_features,
        output_dim=model.output_dim,
        has_head=model.head is not None,
        layers=layer_signatures,
        parameters=model.state_dict(),
    )


def load_signature(directory: str) -> ModelSignature:
    """Load a signature previously written by :meth:`ModelSignature.save`."""
    return ModelSignature.load(directory)
