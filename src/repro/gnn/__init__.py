"""GNN layers expressed in the InferTurbo GAS-like abstraction.

The abstraction (paper Section IV-B) splits a GNN layer into five stages:

=============  ===========  =====================================================
stage          kind         meaning
=============  ===========  =====================================================
gather_nbrs    data flow    receive in-edge messages and vectorise them
aggregate      computation  commutative/associative pre-reduction of messages
apply_node     computation  update node state from (old state, aggregated msg)
apply_edge     computation  produce per-out-edge messages from the new state
scatter_nbrs   data flow    send messages along out-edges
=============  ===========  =====================================================

The data-flow stages are built-in (tensors during training, backend messaging
during inference); model authors override the three computation stages on
:class:`~repro.gnn.gasconv.GASConv` and mark them with the annotation
decorators so the inference adaptors know where each piece may be re-deployed
(the *partial-gather* optimisation is only legal when the aggregate stage is
commutative and associative — declared via ``@gather_stage(partial=True)``).
"""

from repro.gnn.annotations import (
    gather_stage,
    apply_node_stage,
    apply_edge_stage,
    stage_annotation,
    StageAnnotation,
)
from repro.gnn.gasconv import GASConv, LayerMode
from repro.gnn.sage import SAGEConv
from repro.gnn.gat import GATConv
from repro.gnn.gcn import GCNConv
from repro.gnn.model import GNNModel, build_model
from repro.gnn.signature import ModelSignature, export_signature, load_signature

__all__ = [
    "gather_stage",
    "apply_node_stage",
    "apply_edge_stage",
    "stage_annotation",
    "StageAnnotation",
    "GASConv",
    "LayerMode",
    "SAGEConv",
    "GATConv",
    "GCNConv",
    "GNNModel",
    "build_model",
    "ModelSignature",
    "export_signature",
    "load_signature",
]
