"""Graph Attention Network layer in the GAS-like abstraction.

GAT's reduction is an attention-weighted sum whose softmax normaliser depends
on *all* in-edge messages of a node, so it is **not** commutative/associative
over partial message subsets.  Following the paper, the gather stage is
annotated ``partial=False`` and simply unions the incoming messages; the
attention computation (softmax + weighted sum) lives in ``apply_node``.  The
partial-gather strategy is therefore automatically disabled for this layer,
while broadcast and shadow-nodes (which do not alter message contents) remain
applicable.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gnn.annotations import apply_edge_stage, apply_node_stage, gather_stage
from repro.gnn.gasconv import GASConv
from repro.tensor import ops
from repro.tensor.nn import Linear, Parameter
from repro.tensor.nn import xavier_uniform
from repro.tensor.tensor import Tensor, concatenate


class GATConv(GASConv):
    """Multi-head graph attention convolution.

    The per-edge message carries the transformed source state for each head
    plus the source half of the (additive) attention logit, so that the
    receiver can finish the attention score with only its own state:

    ``alpha_uv = softmax_v( leaky_relu( a_src · W h_u + a_dst · W h_v ) )``.

    Heads are concatenated (``concat=True``) or averaged (final layer).
    """

    def __init__(self, in_dim: int, out_dim: int, heads: int = 1,
                 concat: bool = True, negative_slope: float = 0.2,
                 edge_dim: int = 0, activation: str = "none", seed: int = 0) -> None:
        super().__init__(in_dim, out_dim)
        rng = np.random.default_rng(seed)
        self.heads = int(heads)
        self.concat = bool(concat)
        self.negative_slope = float(negative_slope)
        self.edge_dim = int(edge_dim)
        self.activation = activation
        # One shared projection producing all heads at once: [in, heads*out].
        self.linear = Linear(in_dim, self.heads * out_dim, bias=False, rng=rng)
        self.attn_src = Parameter(xavier_uniform((self.heads, out_dim), rng), name="attn_src")
        self.attn_dst = Parameter(xavier_uniform((self.heads, out_dim), rng), name="attn_dst")
        self.bias = Parameter(np.zeros(self.heads * out_dim if concat else out_dim), name="bias")
        self.edge_linear = Linear(edge_dim, self.heads * out_dim, rng=rng) if edge_dim > 0 else None

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #
    @property
    def aggregate_kind(self) -> str:
        return "union"

    @property
    def message_dim(self) -> int:
        # heads * out_dim transformed features + heads source-side attention logits.
        return self.heads * self.out_dim + self.heads

    @property
    def output_dim(self) -> int:
        """Actual width of apply_node's output (depends on head concatenation)."""
        return self.heads * self.out_dim if self.concat else self.out_dim

    def config(self):
        return {
            "in_dim": self.in_dim,
            "out_dim": self.out_dim,
            "heads": self.heads,
            "concat": self.concat,
            "negative_slope": self.negative_slope,
            "edge_dim": self.edge_dim,
            "activation": self.activation,
        }

    # ------------------------------------------------------------------ #
    # computation stages
    # ------------------------------------------------------------------ #
    @gather_stage(partial=False)
    def gather(self, message: Tensor, dst_index: np.ndarray, num_nodes: int,
               counts: Optional[np.ndarray] = None) -> Tuple[Tensor, np.ndarray]:
        """Union the incoming messages (attention needs the full multiset)."""
        if counts is not None and np.any(np.asarray(counts) != 1):
            raise RuntimeError("GATConv cannot consume partially aggregated messages")
        message = message if isinstance(message, Tensor) else Tensor(message)
        return message, np.asarray(dst_index, dtype=np.int64)

    @apply_node_stage
    def apply_node(self, node_state: Tensor, aggr_state: Tuple[Tensor, np.ndarray]) -> Tensor:
        """Finish attention: softmax per destination, weighted sum, head merge."""
        message, dst_index = aggr_state
        num_nodes = node_state.shape[0]
        feat_width = self.heads * self.out_dim

        src_features = message[:, :feat_width] if isinstance(message, Tensor) else Tensor(message[:, :feat_width])
        src_logits = message[:, feat_width:]

        dst_proj = self.linear(node_state)  # [N, heads*out]
        dst_proj_heads = dst_proj.reshape(num_nodes, self.heads, self.out_dim)
        dst_logits = (dst_proj_heads * self.attn_dst).sum(axis=-1)  # [N, heads]

        if message.shape[0] == 0:
            # No in-edges anywhere in the block: the update degenerates to bias.
            base = dst_proj if self.concat else dst_proj_heads.mean(axis=1)
            out = base * Tensor(np.zeros((num_nodes, 1))) + self.bias
            return out.relu() if self.activation == "relu" else out

        logits = src_logits + ops.gather_rows(dst_logits, dst_index)  # [M, heads]
        logits = logits.leaky_relu(self.negative_slope)
        attention = ops.segment_softmax(logits, dst_index, num_nodes)  # [M, heads]

        src_heads = src_features.reshape(message.shape[0], self.heads, self.out_dim)
        weighted = src_heads * attention.reshape(message.shape[0], self.heads, 1)
        pooled = ops.segment_sum(weighted, dst_index, num_nodes)  # [N, heads, out]

        if self.concat:
            out = pooled.reshape(num_nodes, self.heads * self.out_dim) + self.bias
        else:
            out = pooled.mean(axis=1) + self.bias
        if self.activation == "relu":
            out = out.relu()
        return out

    @apply_edge_stage
    def apply_edge(self, message: Tensor, edge_state: Optional[Tensor]) -> Tensor:
        """Build the out-edge message: projected source state + source logits."""
        message = message if isinstance(message, Tensor) else Tensor(message)
        num_rows = message.shape[0]
        projected = self.linear(message)  # [E, heads*out]
        if edge_state is not None and self.edge_linear is not None:
            edge_state = edge_state if isinstance(edge_state, Tensor) else Tensor(edge_state)
            projected = projected + self.edge_linear(edge_state)
        heads_view = projected.reshape(num_rows, self.heads, self.out_dim)
        src_logits = (heads_view * self.attn_src).sum(axis=-1)  # [E, heads]
        return concatenate([projected, src_logits], axis=-1)
