"""Multi-layer GNN model: encoder → stacked GAS layers → prediction head.

``GNNModel`` is the object both phases share.  During training its
:meth:`forward` runs all layers over a local (k-hop) subgraph; for inference
the backend adaptors walk the ``layers`` list and call individual stages,
using :meth:`encode` in the initial superstep and :meth:`predict` after the
last ``apply_node``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.gnn.gasconv import GASConv, LayerMode
from repro.gnn.gat import GATConv
from repro.gnn.gcn import GCNConv
from repro.gnn.sage import SAGEConv
from repro.tensor.nn import Linear, Module
from repro.tensor.tensor import Tensor


def _layer_output_dim(layer: GASConv) -> int:
    """Width of the embedding a layer hands to the next layer."""
    return getattr(layer, "output_dim", layer.out_dim)


class GNNModel(Module):
    """A k-layer GNN with a feature encoder and a prediction head.

    Parameters
    ----------
    encoder:
        Linear projection of raw node features into the first layer's input
        width (applied once, in the initial superstep during inference).
    layers:
        GAS layers; layer i+1's ``in_dim`` must equal layer i's output width.
    head:
        Prediction head mapping the last layer's output to class logits; pass
        ``None`` to make the model emit embeddings instead of scores.
    """

    def __init__(self, encoder: Linear, layers: Sequence[GASConv],
                 head: Optional[Linear]) -> None:
        super().__init__()
        if not layers:
            raise ValueError("GNNModel requires at least one layer")
        expected = encoder.out_features
        for position, layer in enumerate(layers):
            if layer.in_dim != expected:
                raise ValueError(
                    f"layer {position} expects in_dim={layer.in_dim} but receives {expected}"
                )
            expected = _layer_output_dim(layer)
        if head is not None and head.in_features != expected:
            raise ValueError(
                f"prediction head expects in_features={head.in_features} but receives {expected}"
            )
        self.encoder = encoder
        self.layers = list(layers)
        self.head = head

    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def output_dim(self) -> int:
        if self.head is not None:
            return self.head.out_features
        return _layer_output_dim(self.layers[-1])

    def encode(self, features: Tensor) -> Tensor:
        """Initial-superstep transform: raw features → layer-0 input state."""
        features = features if isinstance(features, Tensor) else Tensor(features)
        return self.encoder(features).relu()

    def predict(self, node_state: Tensor) -> Tensor:
        """Final-superstep transform: last layer's state → logits (or identity)."""
        if self.head is None:
            return node_state
        return self.head(node_state)

    # ------------------------------------------------------------------ #
    def forward(
        self,
        features: Tensor,
        src_index: np.ndarray,
        dst_index: np.ndarray,
        edge_features: Optional[Tensor] = None,
        num_nodes: Optional[int] = None,
        mode: LayerMode = LayerMode.TRAIN,
    ) -> Tensor:
        """Full local forward pass over a subgraph (training / baseline path)."""
        state = self.encode(features)
        if num_nodes is None:
            num_nodes = state.shape[0]
        for layer in self.layers:
            state = layer.forward(state, src_index, dst_index,
                                  edge_state=edge_features, num_nodes=num_nodes, mode=mode)
        return self.predict(state)


_LAYER_REGISTRY = {
    "SAGEConv": SAGEConv,
    "GATConv": GATConv,
    "GCNConv": GCNConv,
}


def build_model(
    arch: str,
    feature_dim: int,
    hidden_dim: int,
    num_classes: int,
    num_layers: int = 2,
    heads: int = 4,
    aggregator: str = "mean",
    edge_dim: int = 0,
    seed: int = 0,
) -> GNNModel:
    """Construct a standard k-layer model of the given architecture.

    ``arch`` is one of ``"sage"``, ``"gat"``, ``"gcn"``.  Hidden layers use the
    architecture's default non-linearity; the last layer keeps a linear output
    feeding the prediction head, matching the OGB example configurations the
    paper follows.
    """
    arch = arch.lower()
    rng = np.random.default_rng(seed)
    encoder = Linear(feature_dim, hidden_dim, rng=rng)
    layers: List[GASConv] = []
    in_dim = hidden_dim
    for index in range(num_layers):
        last = index == num_layers - 1
        layer_seed = seed + index + 1
        if arch == "sage":
            layer = SAGEConv(in_dim, hidden_dim, aggregator=aggregator, edge_dim=edge_dim,
                             activation="none" if last else "relu", seed=layer_seed)
            in_dim = hidden_dim
        elif arch == "gat":
            layer = GATConv(in_dim, hidden_dim // heads if hidden_dim % heads == 0 else hidden_dim,
                            heads=heads, concat=not last, edge_dim=edge_dim,
                            activation="none" if last else "relu", seed=layer_seed)
            in_dim = layer.output_dim
        elif arch == "gcn":
            layer = GCNConv(in_dim, hidden_dim, edge_dim=edge_dim,
                            activation="none" if last else "relu", seed=layer_seed)
            in_dim = hidden_dim
        else:
            raise ValueError(f"unknown architecture {arch!r}")
        layers.append(layer)
    head = Linear(in_dim, num_classes, rng=rng)
    return GNNModel(encoder, layers, head)


def layer_class(name: str):
    """Look up a GAS layer class by name (used when loading signatures)."""
    if name not in _LAYER_REGISTRY:
        raise KeyError(f"unknown layer class {name!r}")
    return _LAYER_REGISTRY[name]
