"""GCN-style layer in the GAS-like abstraction.

Implements the widely used mean-normalised graph convolution
``h' = act( W * MEAN({h_u : u in N_in(v)} ∪ {h_v}) )`` — i.e. Kipf & Welling's
GCN with the symmetric normalisation replaced by in-neighbour mean plus a
self-connection, which keeps the aggregate stage commutative/associative and
therefore compatible with partial-gather (like GraphSAGE, and unlike GAT).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gnn.annotations import apply_edge_stage, apply_node_stage, gather_stage
from repro.gnn.gasconv import GASConv
from repro.tensor import ops
from repro.tensor.nn import Linear
from repro.tensor.tensor import Tensor


class GCNConv(GASConv):
    """Mean-aggregation graph convolution with a self-connection."""

    def __init__(self, in_dim: int, out_dim: int, activation: str = "relu",
                 edge_dim: int = 0, seed: int = 0) -> None:
        super().__init__(in_dim, out_dim)
        rng = np.random.default_rng(seed)
        self.activation = activation
        self.edge_dim = int(edge_dim)
        self.linear = Linear(in_dim, out_dim, rng=rng)
        self.edge_linear = Linear(edge_dim, in_dim, rng=rng) if edge_dim > 0 else None

    @property
    def aggregate_kind(self) -> str:
        return "mean"

    @property
    def message_dim(self) -> int:
        return self.in_dim

    def apply_edge_is_identity(self, has_edge_features: bool) -> bool:
        # Messages are raw previous-layer states unless edge features feed in.
        return self.edge_linear is None or not has_edge_features

    def config(self):
        return {
            "in_dim": self.in_dim,
            "out_dim": self.out_dim,
            "activation": self.activation,
            "edge_dim": self.edge_dim,
        }

    @gather_stage(partial=True)
    def gather(self, message: Tensor, dst_index: np.ndarray, num_nodes: int,
               counts: Optional[np.ndarray] = None) -> Tensor:
        """Mean-pool in-edge messages per destination (partial-gather aware)."""
        message = message if isinstance(message, Tensor) else Tensor(message)
        summed = ops.segment_sum(message, dst_index, num_nodes)
        if counts is None:
            counts = np.ones(message.shape[0], dtype=np.float64)
        denom = np.zeros(num_nodes, dtype=np.float64)
        np.add.at(denom, np.asarray(dst_index, dtype=np.int64), np.asarray(counts, dtype=np.float64))
        denom = np.maximum(denom, 1.0)
        return summed * Tensor(1.0 / denom.reshape(-1, 1))

    @apply_node_stage
    def apply_node(self, node_state: Tensor, aggr_state: Tensor) -> Tensor:
        """Average the pooled neighbourhood with the node itself, then project."""
        mixed = (aggr_state + node_state) * 0.5
        out = self.linear(mixed)
        if self.activation == "relu":
            out = out.relu()
        return out

    @apply_edge_stage
    def apply_edge(self, message: Tensor, edge_state: Optional[Tensor]) -> Tensor:
        """Messages are the raw previous-layer states (edge features added if any)."""
        if edge_state is None or self.edge_linear is None:
            return message
        edge_state = edge_state if isinstance(edge_state, Tensor) else Tensor(edge_state)
        return message + self.edge_linear(edge_state)
