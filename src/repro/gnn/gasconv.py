"""GASConv — the base class every GNN layer implements in this system.

A layer describes its computation flow through three overridable methods
(``gather``, ``apply_node``, ``apply_edge``) plus the built-in, final
``scatter``.  The same object is used in two modes:

* **training** — :meth:`forward` runs the whole layer over a local (k-hop)
  subgraph held in tensors, exactly as the paper's Fig. 3 pseudo-code;
* **inference** — the backend adaptors call the individual stages: messages
  arrive from the data-flow layer (Pregel messages or MapReduce shuffle), are
  vectorised, pushed through ``gather``/``apply_node``, and the new state is
  turned into out-edge messages by ``apply_edge``/``scatter``.

The ``aggregate_kind`` property declares the reduction semantics of the
gather stage (``sum``/``mean``/``max``/``union``); together with the
``partial`` annotation flag it tells the inference engine whether messages may
be pre-aggregated on the sender side (partial-gather) and how partially
aggregated payloads are merged.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.gnn.annotations import collect_annotations, stage_annotation
from repro.tensor import ops
from repro.tensor.nn import Module
from repro.tensor.tensor import Tensor


class LayerMode(enum.Enum):
    """Execution mode passed to :meth:`GASConv.forward`."""

    TRAIN = "train"
    PREDICT = "predict"


class GASConv(Module):
    """Base class for GNN layers in the GAS-like abstraction.

    Subclasses must override :meth:`gather`, :meth:`apply_node` and
    :meth:`apply_edge`, decorating them with
    :func:`~repro.gnn.annotations.gather_stage`,
    :func:`~repro.gnn.annotations.apply_node_stage` and
    :func:`~repro.gnn.annotations.apply_edge_stage` respectively, and declare
    ``in_dim`` / ``out_dim`` / ``message_dim`` so the inference engine can size
    message buffers.
    """

    def __init__(self, in_dim: int, out_dim: int) -> None:
        super().__init__()
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)

    # ------------------------------------------------------------------ #
    # declarative metadata
    # ------------------------------------------------------------------ #
    @property
    def aggregate_kind(self) -> str:
        """Reduction semantics of the gather stage: sum / mean / max / union."""
        raise NotImplementedError

    @property
    def message_dim(self) -> int:
        """Width of the per-edge message produced by :meth:`apply_edge`."""
        return self.out_dim

    @property
    def supports_partial_gather(self) -> bool:
        """Whether the gather stage was annotated with ``partial=True``."""
        annotation = stage_annotation(type(self).gather)
        return bool(annotation is not None and annotation.partial)

    def apply_edge_is_identity(self, has_edge_features: bool) -> bool:
        """Whether ``apply_edge`` returns its input rows unchanged.

        When True, a per-edge message is literally the source node's state
        row, so incremental inference may materialise any *subset* of edge
        messages by a plain row gather — exactly the bytes a full run would
        produce.  Layers that transform messages (projections, attention
        logits) must return False; the incremental scatter then computes
        ``apply_edge`` at full edge-table shape before slicing, because BLAS
        kernels are not bit-stable across differing matrix shapes.
        """
        return False

    def config(self) -> Dict[str, Any]:
        """Constructor arguments needed to rebuild this layer (for signatures)."""
        return {"in_dim": self.in_dim, "out_dim": self.out_dim}

    def annotations(self) -> Dict[str, Any]:
        """Stage annotations of this layer, serialisable for the signature file."""
        return {name: ann.to_dict() for name, ann in collect_annotations(self).items()}

    # ------------------------------------------------------------------ #
    # the five stages
    # ------------------------------------------------------------------ #
    def gather(self, message: Tensor, dst_index: np.ndarray, num_nodes: int,
               counts: Optional[np.ndarray] = None):
        """Aggregate computation of the Gather stage.

        Parameters
        ----------
        message:
            [M, message_dim] message rows (possibly already partially
            aggregated by the sender-side combiner).
        dst_index:
            [M] local destination index of each message row.
        num_nodes:
            Number of local destination slots.
        counts:
            [M] number of original messages folded into each row; ``None``
            means every row is a single raw message.  Only meaningful for
            layers whose ``aggregate_kind`` needs it (mean).
        """
        raise NotImplementedError

    def apply_node(self, node_state: Tensor, aggr_state) -> Tensor:
        """Apply stage: combine previous node state with the gathered messages."""
        raise NotImplementedError

    def apply_edge(self, message: Tensor, edge_state: Optional[Tensor]) -> Tensor:
        """apply_edge computation of the Scatter stage (per-out-edge message)."""
        raise NotImplementedError

    def scatter(self, node_state: Tensor, src_index: np.ndarray) -> Tensor:
        """Built-in (final) data-flow part of Scatter: read state rows per edge."""
        return ops.gather_rows(node_state, src_index)

    # ------------------------------------------------------------------ #
    # training / local forward
    # ------------------------------------------------------------------ #
    def forward(
        self,
        node_state: Tensor,
        src_index: np.ndarray,
        dst_index: np.ndarray,
        edge_state: Optional[Tensor] = None,
        num_nodes: Optional[int] = None,
        mode: LayerMode = LayerMode.TRAIN,
    ) -> Tensor:
        """Run the full layer over a local subgraph held in tensors.

        This is the path used by mini-batch training and by the traditional
        inference baseline.  ``mode=PREDICT`` forces the un-fused default
        scatter→apply_edge→gather→apply_node path (matching the paper's
        pseudo-code, where the fused ``scatter_and_gather`` shortcut is a
        training-only optimisation).
        """
        if num_nodes is None:
            num_nodes = node_state.shape[0]

        def default_scatter_and_gather() -> Any:
            message = self.scatter(node_state, src_index)
            message = self.apply_edge(message, edge_state)
            return self.gather(message, dst_index, num_nodes)

        if mode is LayerMode.PREDICT:
            aggr_state = default_scatter_and_gather()
        else:
            fused = getattr(self, "scatter_and_gather", None)
            if fused is not None and edge_state is None:
                aggr_state = fused(node_state, src_index, dst_index, num_nodes)
            else:
                aggr_state = default_scatter_and_gather()
        return self.apply_node(node_state, aggr_state)

    # ------------------------------------------------------------------ #
    # partial-aggregation helpers shared by the inference engine
    # ------------------------------------------------------------------ #
    def partial_reduce(self, message: np.ndarray, counts: Optional[np.ndarray] = None
                       ) -> Tuple[np.ndarray, int]:
        """Fold a block of raw/partial message rows bound for one destination.

        Returns ``(payload_row, count)`` where ``payload_row`` is a single row
        that, merged with other partials through the same rule, reproduces the
        exact full aggregation.  Only valid when
        :attr:`supports_partial_gather` is True.
        """
        if not self.supports_partial_gather:
            raise RuntimeError(
                f"{type(self).__name__} does not declare a commutative/associative "
                "aggregate; partial reduction is not legal"
            )
        message = np.asarray(message, dtype=np.float64)
        if counts is None:
            counts = np.ones(message.shape[0], dtype=np.int64)
        total = int(np.asarray(counts).sum())
        kind = self.aggregate_kind
        if kind in ("sum", "mean"):
            # Mean is carried as (partial sum, count); the division happens in
            # gather() once all partials have arrived.
            return message.sum(axis=0), total
        if kind == "max":
            return message.max(axis=0), total
        raise RuntimeError(f"aggregate kind {kind!r} cannot be partially reduced")
