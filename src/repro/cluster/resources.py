"""Worker and cluster specifications.

The defaults mirror the paper's two deployments:

* Pregel-like backend — ~1000 instances, 2 CPUs and 10 GB memory each;
* MapReduce backend — ~5000 instances, 2 CPUs and 2 GB memory each;
* 20 Gb/s network.

The experiments scale these down together with the graphs, so only the ratios
matter.
"""

from __future__ import annotations

from dataclasses import dataclass


class OutOfMemoryError(RuntimeError):
    """Raised when a simulated instance exceeds its memory budget."""

    def __init__(self, instance: str, needed_bytes: float, budget_bytes: float) -> None:
        super().__init__(
            f"instance {instance} needs {needed_bytes / 1e9:.2f} GB "
            f"but only {budget_bytes / 1e9:.2f} GB are available"
        )
        self.instance = instance
        self.needed_bytes = float(needed_bytes)
        self.budget_bytes = float(budget_bytes)


@dataclass(frozen=True)
class WorkerSpec:
    """Resources of a single worker instance."""

    cpu_cores: int = 2
    memory_bytes: float = 10e9
    # Sustained effective throughput of one core on the GNN kernels, in
    # "compute units" (≈ multiply-accumulate) per second.  This is a model
    # parameter, not a measurement; only ratios between pipelines matter.  The
    # default is low enough that GNN inference is compute-bound (as in the
    # paper, whose workers sit at 90%+ CPU utilisation), so the redundant
    # computation of the traditional pipeline — not the network — drives the
    # comparison.
    compute_units_per_second: float = 2e8
    network_bandwidth_bytes_per_second: float = 2.5e9  # 20 Gb/s
    # External (spill) storage throughput for the MapReduce backend.
    disk_bandwidth_bytes_per_second: float = 500e6

    @property
    def compute_rate(self) -> float:
        """Total compute units per second across all cores of the worker."""
        return self.cpu_cores * self.compute_units_per_second


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``num_workers`` identical workers."""

    num_workers: int
    worker: WorkerSpec = WorkerSpec()

    @property
    def total_cores(self) -> int:
        return self.num_workers * self.worker.cpu_cores

    @staticmethod
    def pregel_default(num_workers: int = 8) -> "ClusterSpec":
        """Scaled-down analogue of the paper's graph-processing cluster."""
        return ClusterSpec(num_workers=num_workers,
                           worker=WorkerSpec(cpu_cores=2, memory_bytes=10e9))

    @staticmethod
    def mapreduce_default(num_workers: int = 8) -> "ClusterSpec":
        """Scaled-down analogue of the paper's MapReduce cluster."""
        return ClusterSpec(num_workers=num_workers,
                           worker=WorkerSpec(cpu_cores=2, memory_bytes=2e9))

    @staticmethod
    def traditional_default(num_workers: int = 8) -> "ClusterSpec":
        """Scaled-down analogue of the paper's traditional-pipeline workers."""
        return ClusterSpec(num_workers=num_workers,
                           worker=WorkerSpec(cpu_cores=10, memory_bytes=10e9))
