"""Pluggable per-partition executors: in-process loop or one OS process each.

Every sharded engine in the system — the Pregel superstep loop, the MapReduce
round driver — used to *simulate* its workers with a sequential in-process
loop.  That preserves the data-flow shape (message volumes, per-worker skew,
superstep structure) but validates the cost model only against simulated
parallelism.  This module makes the worker substrate itself pluggable:

* :class:`SerialExecutor` — the historical behaviour, bit for bit: per-slot
  work runs in the calling process, in slot order, against the engine's live
  objects.  Zero copies, zero pickling.
* :class:`ProcessExecutor` — one **OS process per slot**, started once and
  reused across runs.  Large read-only (or in-place-patched) numpy buffers —
  graph partitions, feature matrices, :class:`~repro.cluster.layout.ClusterLayout`
  tables — are shipped **once** through ``multiprocessing.shared_memory``
  (:class:`SharedArrayPack`); per-step message traffic travels as pickled
  numpy bundles that the parent relays between workers *without unpickling*
  (opaque byte blobs, so the coordinator does memcpy, not serialisation).

Engines talk to executors through two shapes of work:

* :meth:`Executor.run_tasks` — stateless fan-out: ``fn(*task)`` per task,
  results in task order.  One wave of at most ``num_slots`` outstanding tasks
  at a time (bulk-synchronous, like the engines themselves), which also keeps
  the pipe protocol trivially deadlock-free.
* :meth:`Executor.open` / :meth:`Executor.step` / :meth:`Executor.close` — a
  stateful *harness* per slot for engines whose workers keep state across
  steps (Pregel partitions keep node state across supersteps).  A harness is
  built worker-side by a picklable factory, receives per-step control plus
  the messages other slots addressed to it, and returns a control result plus
  its own outgoing ``(target_slot, messages)`` buckets; the executor owns the
  transport between steps.

Determinism contract: an engine that routes its per-slot work through the
executor interface produces **the same results under both executors** — the
serial executor calls the very same harness code in the same order, and the
process executor runs the same numpy ops on the same arrays (BLAS kernels are
deterministic for identical shapes and inputs on one machine).  Message
buckets are delivered in sending-slot order, matching the serial loop's
mailbox extension order, so order-sensitive reductions see identical operand
sequences.  The conformance suite (``tests/test_backend_conformance.py``)
asserts this for every registered backend.
"""

from __future__ import annotations

import os
import pickle
import traceback
import weakref
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

import numpy as np

#: environment variable naming the default executor (``build_executor(None)``).
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"
#: environment variable overriding the multiprocessing start method.
START_METHOD_ENV_VAR = "REPRO_EXECUTOR_START_METHOD"

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


class UnknownExecutorError(ValueError):
    """Raised when an executor name is not in the registry."""


class WorkerHarness:
    """Per-slot stateful worker protocol for :meth:`Executor.open` sessions.

    Instances live where the slot runs (in-process for serial, inside the
    worker process for process execution) and are built by a **picklable**
    factory ``factory(slot_id, payload) -> harness``.
    """

    def step(self, control: Any,
             incoming: List[Any]) -> Tuple[Any, List[Tuple[int, List[Any]]]]:
        """Run one synchronized step.

        ``incoming`` lists the messages other slots addressed to this one last
        step, in sending-slot order.  Returns ``(result, outgoing)`` where
        ``outgoing`` is ``[(target_slot, messages), ...]`` — the executor
        delivers each bucket to ``target_slot``'s next ``step``.
        """
        raise NotImplementedError

    def finish(self) -> Any:
        """Tear down and return the final state the engine should keep."""
        return None


# --------------------------------------------------------------------------- #
# shared-memory array shipping
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable descriptor of one shared array (or an inline empty one).

    ``name`` is the ``multiprocessing.shared_memory`` segment name; ``None``
    means the array was empty (zero bytes cannot back a segment) and the
    worker rebuilds it locally from shape/dtype alone.
    """

    name: Optional[str]
    shape: Tuple[int, ...]
    dtype: str


def _attach_segment_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it with the resource tracker.

    Attaching workers must not *own* the segment: Python < 3.13 registers
    every ``SharedMemory(name=...)`` with the (process-tree-shared) resource
    tracker, which would unlink the parent's live segment when a worker exits
    — and several workers attaching the same segment would unregister it more
    than once, spamming the tracker with KeyErrors.  Registration is
    suppressed for the duration of the attach; the creating parent remains
    the sole registered owner.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _skip_shared_memory(resource_name: str, rtype: str) -> None:
            if rtype != "shared_memory":
                original_register(resource_name, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    except AttributeError:
        return shared_memory.SharedMemory(name=name)


class SharedArrayPack:
    """Parent-side registry of numpy arrays exported to shared memory.

    :meth:`share` copies an array into a fresh segment **once** and returns a
    shm-backed view with identical contents; the caller is expected to replace
    its live reference with that view, so later in-place writes (e.g. feature
    rows scattered by a :class:`~repro.inference.delta.GraphDelta`) land
    directly in shared memory and are visible to every attached worker without
    re-shipping.  Re-sharing the *same* array object under the same key is a
    no-op returning the cached spec; sharing a different object (the engine
    swapped the array wholesale, e.g. an edge delta) replaces the segment.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._arrays: Dict[str, np.ndarray] = {}
        self._specs: Dict[str, SharedArraySpec] = {}
        self._finalizer = weakref.finalize(self, _unlink_segments,
                                           self._segments)

    def share(self, key: str, array: np.ndarray) -> SharedArraySpec:
        array = np.ascontiguousarray(array)
        cached = self._arrays.get(key)
        if cached is not None and cached is array:
            return self._specs[key]
        old = self._segments.pop(key, None)
        if old is not None:
            _unlink_segments({key: old})
        if array.nbytes == 0:
            spec = SharedArraySpec(name=None, shape=array.shape,
                                   dtype=array.dtype.str)
            self._arrays[key] = array
            self._specs[key] = spec
            return spec
        segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        self._segments[key] = segment
        self._arrays[key] = view
        spec = SharedArraySpec(name=segment.name, shape=array.shape,
                               dtype=array.dtype.str)
        self._specs[key] = spec
        return spec

    def array_for(self, key: str) -> np.ndarray:
        """The parent-side (shm-backed) view registered under ``key``."""
        return self._arrays[key]

    def spec_for(self, key: str) -> SharedArraySpec:
        """The picklable descriptor of the array registered under ``key``."""
        return self._specs[key]

    def is_current(self, key: str, array: np.ndarray) -> bool:
        """Whether ``array`` is exactly the view already shared under ``key``."""
        return self._arrays.get(key) is array

    def close(self) -> None:
        """Unlink every segment (views become invalid)."""
        self._finalizer()
        self._segments = {}
        self._arrays = {}
        self._specs = {}
        self._finalizer = weakref.finalize(self, _unlink_segments, self._segments)


def _unlink_segments(segments: Dict[str, shared_memory.SharedMemory]) -> None:
    # Unlink before close: unlinking works regardless of live mappings, while
    # closing raises BufferError while numpy views still reference the buffer
    # (those views keep their mapping alive until they are garbage collected).
    for segment in segments.values():
        try:
            segment.unlink()
        except Exception:  # pragma: no cover - cleanup best effort
            pass
        try:
            segment.close()
        except Exception:  # pragma: no cover - views may still be exported
            pass


#: worker-side segment cache so repeated attaches reuse one mapping and the
#: buffers outlive the numpy views built on them.
_ATTACHED_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}


def attach_shared_array(spec: SharedArraySpec) -> np.ndarray:
    """Worker-side view of a :class:`SharedArraySpec` (read/write, zero copy)."""
    if spec.name is None:
        return np.empty(spec.shape, dtype=np.dtype(spec.dtype))
    segment = _ATTACHED_SEGMENTS.get(spec.name)
    if segment is None:
        segment = _attach_segment_untracked(spec.name)
        _ATTACHED_SEGMENTS[spec.name] = segment
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)


def prune_attached_segments(live_names: Iterable[str]) -> None:
    """Worker-side: release cached mappings of superseded segments.

    A wholesale array replacement (an edge delta's ``replace_out_edges``)
    makes the parent allocate a fresh segment and unlink the old one — but
    unlinked shm pages stay allocated until the *last mapping* closes, and a
    long-lived worker would otherwise keep every superseded mapping forever.
    Harness factories call this with the names their open payload references;
    anything else in the cache is stale and gets closed (best effort — a
    mapping still referenced by a live numpy view survives until that view is
    garbage collected).
    """
    keep = {name for name in live_names if name is not None}
    for name in list(_ATTACHED_SEGMENTS):
        if name not in keep:
            segment = _ATTACHED_SEGMENTS.pop(name)
            try:
                segment.close()
            except Exception:  # pragma: no cover - exported views keep it alive
                pass


# --------------------------------------------------------------------------- #
# executors
# --------------------------------------------------------------------------- #
class Executor:
    """Common interface; see the module docstring for the two work shapes."""

    name: str = "base"

    def __init__(self, num_slots: int) -> None:
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        self.num_slots = int(num_slots)

    # -- stateless fan-out ------------------------------------------------ #
    def run_tasks(self, fn: Callable[..., Any], tasks: Sequence[Tuple[Any, ...]]) -> List[Any]:
        raise NotImplementedError

    # -- stateful harness sessions ---------------------------------------- #
    def open(self, factory: Callable[..., Any], payloads: Sequence[Any]) -> None:
        raise NotImplementedError

    def step(self, controls: Sequence[Any]) -> List[Any]:
        raise NotImplementedError

    def close(self) -> List[Any]:
        raise NotImplementedError

    # -- lifecycle --------------------------------------------------------- #
    def shutdown(self) -> None:
        """Release every resource (worker processes, transport buffers)."""

    @property
    def is_in_process(self) -> bool:
        """True when harnesses run inside the calling process on live objects."""
        return False

    @property
    def start_method(self) -> Optional[str]:
        """The multiprocessing start method, or None for in-process executors.

        Engines consult this for placement stability: Python's salted
        ``hash()`` only agrees across workers that inherited the parent's
        hash seed (``fork``) or run under a pinned ``PYTHONHASHSEED``.
        """
        return None


class SerialExecutor(Executor):
    """The historical in-process loop: slot ``i`` runs ``i``-th, same process.

    Harnesses operate on the engine's live objects (payloads are passed by
    reference), so behaviour — including every mutation of partition state —
    is bit-identical to the pre-executor code path.
    """

    name = "serial"

    def __init__(self, num_slots: int) -> None:
        super().__init__(num_slots)
        self._harnesses: Optional[List[Any]] = None
        self._mailboxes: List[List[Any]] = [[] for _ in range(self.num_slots)]

    def run_tasks(self, fn: Callable[..., Any], tasks: Sequence[Tuple[Any, ...]]) -> List[Any]:
        return [fn(*task) for task in tasks]

    def open(self, factory: Callable[..., Any], payloads: Sequence[Any]) -> None:
        if self._harnesses is not None:
            raise RuntimeError("executor already has an open harness session")
        if len(payloads) != self.num_slots:
            raise ValueError(f"expected {self.num_slots} payloads, got {len(payloads)}")
        self._harnesses = [factory(slot, payload)
                           for slot, payload in enumerate(payloads)]
        self._mailboxes = [[] for _ in range(self.num_slots)]

    def step(self, controls: Sequence[Any]) -> List[Any]:
        if self._harnesses is None:
            raise RuntimeError("no open harness session")
        results: List[Any] = []
        next_mailboxes: List[List[Any]] = [[] for _ in range(self.num_slots)]
        for slot, harness in enumerate(self._harnesses):
            result, outgoing = harness.step(controls[slot], self._mailboxes[slot])
            results.append(result)
            for target, messages in outgoing:
                next_mailboxes[target].extend(messages)
        self._mailboxes = next_mailboxes
        return results

    def close(self) -> List[Any]:
        if self._harnesses is None:
            raise RuntimeError("no open harness session")
        harnesses, self._harnesses = self._harnesses, None
        self._mailboxes = [[] for _ in range(self.num_slots)]
        return [harness.finish() for harness in harnesses]

    @property
    def is_in_process(self) -> bool:
        return True


# --------------------------------------------------------------------------- #
# process executor: worker loop + coordinator
# --------------------------------------------------------------------------- #
class _RemoteWorkerError(RuntimeError):
    """A worker failed and the original exception could not be re-raised."""


class WorkerCrashError(RuntimeError):
    """A worker process died (killed, OOM, segfault) mid-protocol.

    The executor resets itself before raising: the surviving workers are torn
    down and the next use respawns a fresh pool, so a single crash degrades
    one run instead of permanently poisoning the session (or the pool entry)
    that holds the executor.
    """


def _process_worker_main(conn: Connection, slot_id: int) -> None:
    """Command loop of one worker process (module-level: spawn-safe).

    Protocol: strict request/response — the coordinator never has more than
    one outstanding command per worker within a wave, and workers only send
    when replying, so neither side can deadlock on a full pipe.
    """
    harness = None
    while True:
        message = conn.recv()
        command = message[0]
        try:
            if command == "task":
                fn, args = message[1], message[2]
                conn.send(("ok", fn(*args)))
            elif command == "open":
                factory, payload = message[1], message[2]
                harness = factory(slot_id, payload)
                conn.send(("ok", None))
            elif command == "step":
                control, blobs = message[1], message[2]
                incoming: List[Any] = []
                for blob in blobs:
                    incoming.extend(pickle.loads(blob))
                result, outgoing = harness.step(control, incoming)
                packed = [(target, pickle.dumps(messages, protocol=_PICKLE_PROTOCOL))
                          for target, messages in outgoing if messages]
                conn.send(("ok", (result, packed)))
            elif command == "close":
                final = harness.finish() if harness is not None else None
                harness = None
                conn.send(("ok", final))
            elif command == "exit":
                conn.send(("ok", None))
                break
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", None, f"unknown command {command!r}"))
        except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
            try:
                conn.send(("error", exc, traceback.format_exc()))
            except Exception:  # unpicklable exception: ship text only
                conn.send(("error", None, traceback.format_exc()))
    conn.close()


def _shutdown_workers(processes: Sequence[BaseProcess],
                      connections: Sequence[Connection]) -> None:
    # Best-effort teardown throughout: a worker that already died (crash,
    # kill, interpreter exit) leaves a broken pipe behind, and shutdown must
    # keep going so the remaining workers are reaped rather than leaked.
    for conn in connections:
        try:
            conn.send(("exit",))
        except (OSError, EOFError, BrokenPipeError):
            pass
    for conn in connections:
        try:
            conn.recv()
        except (OSError, EOFError, BrokenPipeError):
            pass
        try:
            conn.close()
        except OSError:
            pass
    for process in processes:
        process.join(timeout=5)
        if process.is_alive():  # pragma: no cover - stuck worker
            process.terminate()
            process.join(timeout=5)


def default_start_method() -> str:
    """``fork`` where available (fast, inherits the loaded numpy), else spawn."""
    override = os.environ.get(START_METHOD_ENV_VAR)
    if override:
        return override
    try:
        from multiprocessing import get_all_start_methods

        return "fork" if "fork" in get_all_start_methods() else "spawn"
    except ImportError:  # pragma: no cover - minimal interpreter builds only
        return "spawn"


class ProcessExecutor(Executor):
    """One persistent OS process per slot; the coordinator only relays bytes.

    Workers are started lazily on first use and reused across ``run_tasks``
    waves and harness sessions alike, so engines that execute many runs (a
    serving session's ``infer_many``) pay the process start-up cost once.
    Per-step message buckets cross the coordinator as pre-pickled opaque
    blobs — the parent never deserialises another worker's traffic.
    """

    name = "process"

    def __init__(self, num_slots: int, start_method: Optional[str] = None) -> None:
        super().__init__(num_slots)
        self._start_method = start_method or default_start_method()
        self._context = get_context(self._start_method)
        self._processes: List[Any] = []
        self._connections: List[Any] = []
        self._session_open = False
        self._mail_blobs: List[List[bytes]] = [[] for _ in range(self.num_slots)]
        self._finalizer: Optional[weakref.finalize] = None

    @property
    def start_method(self) -> Optional[str]:
        return self._start_method

    # ------------------------------------------------------------------ #
    def _ensure_workers(self) -> None:
        if self._processes:
            return
        processes, connections = [], []
        for slot in range(self.num_slots):
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=_process_worker_main, args=(child_conn, slot),
                daemon=True, name=f"repro-executor-{slot}")
            process.start()
            child_conn.close()
            processes.append(process)
            connections.append(parent_conn)
        self._processes = processes
        self._connections = connections
        self._finalizer = weakref.finalize(self, _shutdown_workers,
                                           processes, connections)

    def _reset_after_crash(self, dead_slots: Sequence[int]) -> None:
        """Tear the pool down after a worker death; the next use respawns."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._processes = []
        self._connections = []
        self._session_open = False
        self._mail_blobs = [[] for _ in range(self.num_slots)]
        raise WorkerCrashError(
            f"worker process(es) {sorted(set(dead_slots))} died mid-run "
            "(killed / out of memory?); the executor pool was reset and will "
            "respawn workers on its next use")

    def _send(self, slot: int, message: Any, dead: List[int]) -> None:
        """Send to one worker, recording (not raising on) a dead pipe."""
        try:
            self._connections[slot].send(message)
        except (BrokenPipeError, EOFError, OSError):
            dead.append(slot)

    def _collect(self, slots: Sequence[int]) -> List[Any]:
        """Receive one response per slot; drain everything before raising.

        Draining keeps the request/response protocol in sync when a worker
        *fails* — the remaining workers' responses are consumed, so the
        session (and the next run) can proceed after the caller handles the
        error.  A worker that *died* (closed pipe) instead resets the whole
        pool via :class:`WorkerCrashError`.
        """
        responses: List[Any] = []
        dead: List[int] = []
        for slot in slots:
            try:
                responses.append(self._connections[slot].recv())
            except (EOFError, BrokenPipeError, OSError):
                responses.append(("error", None, f"worker {slot} died"))
                dead.append(slot)
        if dead:
            self._reset_after_crash(dead)
        results: List[Any] = []
        first_error: Optional[Tuple[int, Any, str]] = None
        for slot, response in zip(slots, responses):
            status, *rest = response
            if status == "ok":
                results.append(rest[0])
            else:
                results.append(None)
                if first_error is None:
                    first_error = (slot, rest[0], rest[1])
        if first_error is not None:
            slot, exc, text = first_error
            if isinstance(exc, BaseException):
                raise exc
            raise _RemoteWorkerError(f"worker {slot} failed:\n{text}")
        return results

    # ------------------------------------------------------------------ #
    def run_tasks(self, fn: Callable[..., Any], tasks: Sequence[Tuple[Any, ...]]) -> List[Any]:
        self._ensure_workers()
        results: List[Any] = [None] * len(tasks)
        for wave_start in range(0, len(tasks), self.num_slots):
            wave = range(wave_start, min(wave_start + self.num_slots, len(tasks)))
            dead: List[int] = []
            for index in wave:
                self._send(index - wave_start, ("task", fn, tasks[index]), dead)
            if dead:
                self._reset_after_crash(dead)
            wave_results = self._collect([index - wave_start for index in wave])
            for index, value in zip(wave, wave_results):
                results[index] = value
        return results

    # ------------------------------------------------------------------ #
    def open(self, factory: Callable[..., Any], payloads: Sequence[Any]) -> None:
        if self._session_open:
            raise RuntimeError("executor already has an open harness session")
        if len(payloads) != self.num_slots:
            raise ValueError(f"expected {self.num_slots} payloads, got {len(payloads)}")
        self._ensure_workers()
        dead: List[int] = []
        for slot in range(self.num_slots):
            self._send(slot, ("open", factory, payloads[slot]), dead)
        if dead:
            self._reset_after_crash(dead)
        try:
            self._collect(range(self.num_slots))
        except BaseException:
            # Some harnesses may exist worker-side; close them so the session
            # slot is reusable (best effort — never mask the open failure).
            try:
                for slot in range(self.num_slots):
                    self._connections[slot].send(("close",))
                self._collect(range(self.num_slots))
            except Exception:
                # Best effort by design: the cleanup close may fail on the
                # very worker whose open failed; the original open failure
                # re-raised below is the error that matters.
                pass
            raise
        self._session_open = True
        self._mail_blobs = [[] for _ in range(self.num_slots)]

    def step(self, controls: Sequence[Any]) -> List[Any]:
        if not self._session_open:
            raise RuntimeError("no open harness session")
        dead: List[int] = []
        for slot in range(self.num_slots):
            self._send(slot, ("step", controls[slot], self._mail_blobs[slot]),
                       dead)
        if dead:
            self._reset_after_crash(dead)
        stepped = self._collect(range(self.num_slots))
        results: List[Any] = []
        next_blobs: List[List[bytes]] = [[] for _ in range(self.num_slots)]
        for result, packed in stepped:
            results.append(result)
            for target, blob in packed:
                next_blobs[target].append(blob)
        self._mail_blobs = next_blobs
        return results

    def close(self) -> List[Any]:
        if not self._session_open:
            raise RuntimeError("no open harness session")
        dead: List[int] = []
        for slot in range(self.num_slots):
            self._send(slot, ("close",), dead)
        try:
            if dead:
                self._reset_after_crash(dead)
            finals = self._collect(range(self.num_slots))
        finally:
            self._session_open = False
            self._mail_blobs = [[] for _ in range(self.num_slots)]
        return finals

    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._processes = []
        self._connections = []
        self._session_open = False


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_EXECUTORS: Dict[str, Type[Executor]] = {
    SerialExecutor.name: SerialExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def available_executors() -> Set[str]:
    """The names of all known executor substrates."""
    return set(_EXECUTORS)


def default_executor_name() -> str:
    """``$REPRO_EXECUTOR`` when set (validated), else ``"serial"``."""
    name = os.environ.get(EXECUTOR_ENV_VAR, SerialExecutor.name)
    if name not in _EXECUTORS:
        known = ", ".join(repr(n) for n in sorted(_EXECUTORS))
        raise UnknownExecutorError(
            f"{EXECUTOR_ENV_VAR}={name!r} names no executor; known: {known}")
    return name


def build_executor(name: Optional[str] = None, num_slots: int = 1) -> Executor:
    """Instantiate an executor by registry name (None → the env default)."""
    resolved = default_executor_name() if name is None else name
    try:
        cls = _EXECUTORS[resolved]
    except KeyError:
        known = ", ".join(repr(n) for n in sorted(_EXECUTORS))
        raise UnknownExecutorError(
            f"unknown executor {resolved!r}; known executors: {known}") from None
    return cls(num_slots)
