"""Cluster resource model and cost accounting.

The paper reports wall-clock time, ``cpu*min`` resource usage, per-instance
latency and per-instance IO bytes measured on Ant Group production clusters.
This package provides the analytic stand-in: execution engines record
per-instance counters (compute units, bytes in/out, records, peak memory) into
a :class:`~repro.cluster.metrics.MetricsCollector`, and the
:class:`~repro.cluster.cost_model.CostModel` converts them into simulated
wall-clock / cpu*min numbers for a configurable
:class:`~repro.cluster.resources.ClusterSpec`, including out-of-memory
detection.  Absolute values are not meaningful; relative shape (who wins, by
what factor, where the OOM cliff is) is what the experiments reproduce.
"""

from repro.cluster.resources import WorkerSpec, ClusterSpec, OutOfMemoryError
from repro.cluster.layout import ClusterLayout
from repro.cluster.metrics import InstanceMetrics, MetricsCollector
from repro.cluster.cost_model import CostModel, CostSummary, CostValidation, PhaseValidation
from repro.cluster.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    SharedArrayPack,
    UnknownExecutorError,
    WorkerCrashError,
    WorkerHarness,
    available_executors,
    build_executor,
    default_executor_name,
)

__all__ = [
    "WorkerSpec",
    "ClusterSpec",
    "ClusterLayout",
    "OutOfMemoryError",
    "InstanceMetrics",
    "MetricsCollector",
    "CostModel",
    "CostSummary",
    "CostValidation",
    "PhaseValidation",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "SharedArrayPack",
    "WorkerHarness",
    "UnknownExecutorError",
    "WorkerCrashError",
    "available_executors",
    "build_executor",
    "default_executor_name",
]
