"""Per-instance execution counters.

Execution engines (Pregel, MapReduce, the traditional pipeline) record what
each simulated instance did in each phase; the cost model turns that into
time.  Counters are deterministic functions of the workload, which keeps the
experiments reproducible and the property tests meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np


@dataclass
class InstanceMetrics:
    """Counters for one instance (worker) within one phase (superstep/round)."""

    phase: str
    instance_id: int
    compute_units: float = 0.0
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    records_in: int = 0
    records_out: int = 0
    peak_memory_bytes: float = 0.0
    disk_bytes: float = 0.0
    #: real (host) wall-clock seconds this instance's work took, as measured
    #: by the executor harness running it — 0 when nothing was measured.
    #: Unlike every other counter this is *not* deterministic; the cost model
    #: only uses it for its predicted-vs-measured validation path.
    measured_seconds: float = 0.0

    def merge(self, other: "InstanceMetrics") -> None:
        """Accumulate another metrics record into this one (same phase/instance)."""
        self.compute_units += other.compute_units
        self.bytes_in += other.bytes_in
        self.bytes_out += other.bytes_out
        self.records_in += other.records_in
        self.records_out += other.records_out
        self.peak_memory_bytes = max(self.peak_memory_bytes, other.peak_memory_bytes)
        self.disk_bytes += other.disk_bytes
        self.measured_seconds += other.measured_seconds


class MetricsCollector:
    """Accumulates :class:`InstanceMetrics` keyed by (phase, instance)."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, int], InstanceMetrics] = {}
        self.phase_order: List[str] = []

    # ------------------------------------------------------------------ #
    def record(
        self,
        phase: str,
        instance_id: int,
        compute_units: float = 0.0,
        bytes_in: float = 0.0,
        bytes_out: float = 0.0,
        records_in: int = 0,
        records_out: int = 0,
        peak_memory_bytes: float = 0.0,
        disk_bytes: float = 0.0,
        measured_seconds: float = 0.0,
    ) -> None:
        """Add counters for one instance in one phase (accumulating)."""
        key = (phase, int(instance_id))
        if key not in self._metrics:
            self._metrics[key] = InstanceMetrics(phase=phase, instance_id=int(instance_id))
            if phase not in self.phase_order:
                self.phase_order.append(phase)
        self._metrics[key].merge(InstanceMetrics(
            phase=phase, instance_id=int(instance_id), compute_units=compute_units,
            bytes_in=bytes_in, bytes_out=bytes_out, records_in=records_in,
            records_out=records_out, peak_memory_bytes=peak_memory_bytes,
            disk_bytes=disk_bytes, measured_seconds=measured_seconds,
        ))

    # ------------------------------------------------------------------ #
    def phases(self) -> List[str]:
        return list(self.phase_order)

    def instances(self, phase: Optional[str] = None) -> List[InstanceMetrics]:
        """All instance records, optionally restricted to one phase."""
        if phase is None:
            return list(self._metrics.values())
        return [metric for (p, _), metric in self._metrics.items() if p == phase]

    def get(self, phase: str, instance_id: int) -> Optional[InstanceMetrics]:
        return self._metrics.get((phase, int(instance_id)))

    def total(self, field_name: str, phase: Optional[str] = None) -> float:
        """Sum a counter over all instances (optionally one phase)."""
        return float(sum(getattr(metric, field_name) for metric in self.instances(phase)))

    def per_instance(self, field_name: str, phase: Optional[str] = None) -> Dict[int, float]:
        """Sum a counter per instance id across phases (or within one phase)."""
        out: Dict[int, float] = {}
        for metric in self.instances(phase):
            out[metric.instance_id] = out.get(metric.instance_id, 0.0) + float(getattr(metric, field_name))
        return out

    def merge_from(self, other: "MetricsCollector") -> None:
        """Fold another collector's records into this one."""
        for (phase, instance_id), metric in other._metrics.items():
            self.record(
                phase, instance_id,
                compute_units=metric.compute_units, bytes_in=metric.bytes_in,
                bytes_out=metric.bytes_out, records_in=metric.records_in,
                records_out=metric.records_out, peak_memory_bytes=metric.peak_memory_bytes,
                disk_bytes=metric.disk_bytes, measured_seconds=metric.measured_seconds,
            )


# --------------------------------------------------------------------------- #
# payload size estimation
# --------------------------------------------------------------------------- #
FLOAT_BYTES = 8
ID_BYTES = 8
RECORD_OVERHEAD_BYTES = 16


def message_bytes(num_rows: int, payload_dim: int, ids_per_row: int = 1) -> float:
    """Estimated wire size of ``num_rows`` messages with ``payload_dim`` floats."""
    per_row = payload_dim * FLOAT_BYTES + ids_per_row * ID_BYTES + RECORD_OVERHEAD_BYTES
    return float(num_rows) * per_row


def tensor_bytes(shape: Iterable[int]) -> float:
    """In-memory size of a dense float tensor of the given shape."""
    total = 1.0
    for dim in shape:
        total *= float(dim)
    return total * FLOAT_BYTES


def estimate_payload_bytes(payload: object) -> float:
    """Best-effort size estimate of an arbitrary (nested) message payload."""
    if payload is None:
        return 0.0
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8.0
    if isinstance(payload, (bytes, str)):
        return float(len(payload))
    if isinstance(payload, dict):
        return sum(estimate_payload_bytes(k) + estimate_payload_bytes(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set)):
        return sum(estimate_payload_bytes(item) for item in payload)
    return float(RECORD_OVERHEAD_BYTES)
