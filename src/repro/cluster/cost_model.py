"""Analytic cost model: instance counters → simulated time and resource usage.

For each phase (superstep / MapReduce round / inference batch wave) an
instance's busy time is::

    compute_units / worker.compute_rate
    + max(bytes_in, bytes_out) / worker.network_bandwidth
    + disk_bytes / worker.disk_bandwidth

The phase's wall-clock time is the **maximum** busy time across instances
(bulk-synchronous execution — stragglers dominate, which is exactly the
long-tail effect the optimisation strategies attack), and the job's wall-clock
time is the sum over phases.  ``cpu*min`` charges every instance for its own
busy time times its core count, matching how the paper reports resource usage.

Out-of-memory is declared when any instance's recorded peak memory exceeds the
worker budget; callers may either ask for a report (``check_memory=False``)
or let the model raise :class:`~repro.cluster.resources.OutOfMemoryError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.metrics import InstanceMetrics, MetricsCollector
from repro.cluster.resources import ClusterSpec, OutOfMemoryError


@dataclass
class PhaseCost:
    """Cost breakdown of a single phase."""

    phase: str
    wall_clock_seconds: float
    cpu_seconds: float
    total_bytes: float
    instance_seconds: Dict[int, float] = field(default_factory=dict)
    straggler_instance: int = -1
    oom_instances: List[int] = field(default_factory=list)


@dataclass
class PhaseValidation:
    """Predicted vs measured timing of one phase, instance by instance.

    ``predicted`` holds the cost model's busy seconds per instance;
    ``measured`` the real wall-clock seconds each instance's executor harness
    reported (one OS process per instance under the process executor, the
    shared calling process under the serial one).  The phase-level wall
    clocks take the straggler (max) on both sides, mirroring how the
    bulk-synchronous model prices a phase.
    """

    phase: str
    predicted: Dict[int, float] = field(default_factory=dict)
    measured: Dict[int, float] = field(default_factory=dict)

    @property
    def predicted_wall_seconds(self) -> float:
        return max(self.predicted.values(), default=0.0)

    @property
    def measured_wall_seconds(self) -> float:
        return max(self.measured.values(), default=0.0)

    @property
    def stragglers_match(self) -> bool:
        """Whether predicted and measured agree on which instance dominates."""
        if not self.predicted or not self.measured:
            return False
        return (max(self.predicted, key=self.predicted.get)
                == max(self.measured, key=self.measured.get))


@dataclass
class CostValidation:
    """Job-level roll-up of the predicted-vs-measured comparison.

    The absolute scale of the two sides is not comparable — predictions price
    a configurable simulated cluster, measurements time this host — so the
    meaningful signals are *relative*: ``time_scale`` (one global factor
    mapping predicted to measured seconds) and ``straggler_match_rate`` (how
    often the model points at the instance that really dominated the phase —
    the long-tail shape the paper's strategies attack).
    """

    phases: List[PhaseValidation] = field(default_factory=list)

    @property
    def predicted_total_seconds(self) -> float:
        return sum(phase.predicted_wall_seconds for phase in self.phases)

    @property
    def measured_total_seconds(self) -> float:
        return sum(phase.measured_wall_seconds for phase in self.phases)

    @property
    def time_scale(self) -> float:
        """measured / predicted total wall seconds (0 when nothing predicted)."""
        predicted = self.predicted_total_seconds
        return self.measured_total_seconds / predicted if predicted > 0 else 0.0

    @property
    def straggler_match_rate(self) -> float:
        """Fraction of phases whose dominant instance the model identified."""
        comparable = [phase for phase in self.phases
                      if phase.predicted and phase.measured]
        if not comparable:
            return 0.0
        return sum(phase.stragglers_match for phase in comparable) / len(comparable)

    def describe(self) -> str:
        return (f"{len(self.phases)} phase(s): predicted "
                f"{self.predicted_total_seconds:.3f}s vs measured "
                f"{self.measured_total_seconds:.3f}s wall "
                f"(scale {self.time_scale:.3g}, straggler agreement "
                f"{100.0 * self.straggler_match_rate:.0f}%)")


@dataclass
class CostSummary:
    """Aggregate cost of a whole job."""

    wall_clock_seconds: float
    cpu_minutes: float
    total_bytes: float
    phases: List[PhaseCost] = field(default_factory=list)
    oom: bool = False
    oom_instances: List[str] = field(default_factory=list)
    #: predicted-vs-measured comparison, present when the executed run carried
    #: real per-instance wall-clock measurements (see
    #: :attr:`~repro.cluster.metrics.InstanceMetrics.measured_seconds`).
    validation: Optional[CostValidation] = None

    @property
    def wall_clock_minutes(self) -> float:
        return self.wall_clock_seconds / 60.0

    def instance_times(self, phase: Optional[str] = None) -> Dict[int, float]:
        """Total busy seconds per instance (optionally for one phase)."""
        out: Dict[int, float] = {}
        for phase_cost in self.phases:
            if phase is not None and phase_cost.phase != phase:
                continue
            for instance_id, seconds in phase_cost.instance_seconds.items():
                out[instance_id] = out.get(instance_id, 0.0) + seconds
        return out


class CostModel:
    """Convert recorded metrics into a :class:`CostSummary` for a cluster."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster

    # ------------------------------------------------------------------ #
    def instance_seconds(self, metric: InstanceMetrics) -> float:
        """Busy time of a single instance record."""
        worker = self.cluster.worker
        compute_time = metric.compute_units / worker.compute_rate
        network_time = max(metric.bytes_in, metric.bytes_out) / worker.network_bandwidth_bytes_per_second
        disk_time = metric.disk_bytes / worker.disk_bandwidth_bytes_per_second
        return compute_time + network_time + disk_time

    def memory_exceeded(self, metric: InstanceMetrics) -> bool:
        return metric.peak_memory_bytes > self.cluster.worker.memory_bytes

    # ------------------------------------------------------------------ #
    def summarize(self, collector: MetricsCollector, check_memory: bool = False,
                  validate_measured: Optional[bool] = None) -> CostSummary:
        """Compute per-phase and total costs from a metrics collector.

        With ``check_memory=True`` an :class:`OutOfMemoryError` is raised as
        soon as any instance exceeds the memory budget (mirroring the paper's
        OOM entries in Table IV); otherwise the OOM condition is only reported
        in the summary.

        ``validate_measured`` controls the predicted-vs-measured path: when a
        run carried real per-instance wall-clock measurements (the executor
        harnesses record :attr:`~repro.cluster.metrics.InstanceMetrics.measured_seconds`
        — one OS process per instance under the process executor), the summary
        gains a :class:`CostValidation` comparing the model's predicted
        instance-seconds against them.  ``None`` (default) attaches it
        whenever measurements are present, ``True`` forces attachment (raising
        ``ValueError`` when nothing was measured), ``False`` skips it.
        """
        phases: List[PhaseCost] = []
        validations: List[PhaseValidation] = []
        any_measured = False
        total_wall = 0.0
        total_cpu_seconds = 0.0
        total_bytes = 0.0
        oom_instances: List[str] = []

        for phase in collector.phases():
            records = collector.instances(phase)
            instance_seconds: Dict[int, float] = {}
            measured_seconds: Dict[int, float] = {}
            phase_bytes = 0.0
            phase_oom: List[int] = []
            for metric in records:
                seconds = self.instance_seconds(metric)
                instance_seconds[metric.instance_id] = instance_seconds.get(metric.instance_id, 0.0) + seconds
                phase_bytes += metric.bytes_in + metric.bytes_out
                if metric.measured_seconds > 0.0:
                    any_measured = True
                    measured_seconds[metric.instance_id] = (
                        measured_seconds.get(metric.instance_id, 0.0)
                        + metric.measured_seconds)
                if self.memory_exceeded(metric):
                    phase_oom.append(metric.instance_id)
                    label = f"{phase}/instance{metric.instance_id}"
                    oom_instances.append(label)
                    if check_memory:
                        raise OutOfMemoryError(label, metric.peak_memory_bytes,
                                               self.cluster.worker.memory_bytes)
            if instance_seconds:
                straggler = max(instance_seconds, key=instance_seconds.get)
                wall = instance_seconds[straggler]
            else:
                straggler, wall = -1, 0.0
            cpu_seconds = sum(instance_seconds.values()) * self.cluster.worker.cpu_cores
            phases.append(PhaseCost(
                phase=phase, wall_clock_seconds=wall, cpu_seconds=cpu_seconds,
                total_bytes=phase_bytes, instance_seconds=instance_seconds,
                straggler_instance=straggler, oom_instances=phase_oom,
            ))
            validations.append(PhaseValidation(
                phase=phase, predicted=dict(instance_seconds),
                measured=measured_seconds,
            ))
            total_wall += wall
            total_cpu_seconds += cpu_seconds
            total_bytes += phase_bytes

        if validate_measured is True and not any_measured:
            raise ValueError(
                "validate_measured=True but the collector carries no "
                "measured_seconds — run through an executor that records "
                "per-instance wall clock first")
        validation = None
        if validate_measured is not False and any_measured:
            validation = CostValidation(phases=validations)

        return CostSummary(
            wall_clock_seconds=total_wall,
            cpu_minutes=total_cpu_seconds / 60.0,
            total_bytes=total_bytes,
            phases=phases,
            oom=bool(oom_instances),
            oom_instances=oom_instances,
            validation=validation,
        )


def gnn_layer_compute_units(num_messages: int, message_dim: int, num_nodes: int,
                            in_dim: int, out_dim: int) -> float:
    """Rule-of-thumb compute cost of one GNN layer on one instance.

    * gather: one pass over every message element;
    * apply_node: a dense [in_dim × out_dim] transform per node;
    * apply_edge/scatter: one pass over every outgoing message element
      (charged by the caller on the sending side).
    """
    gather_cost = float(num_messages) * float(message_dim)
    apply_cost = float(num_nodes) * float(in_dim) * float(out_dim)
    return gather_cost + apply_cost
