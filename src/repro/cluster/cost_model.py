"""Analytic cost model: instance counters → simulated time and resource usage.

For each phase (superstep / MapReduce round / inference batch wave) an
instance's busy time is::

    compute_units / worker.compute_rate
    + max(bytes_in, bytes_out) / worker.network_bandwidth
    + disk_bytes / worker.disk_bandwidth

The phase's wall-clock time is the **maximum** busy time across instances
(bulk-synchronous execution — stragglers dominate, which is exactly the
long-tail effect the optimisation strategies attack), and the job's wall-clock
time is the sum over phases.  ``cpu*min`` charges every instance for its own
busy time times its core count, matching how the paper reports resource usage.

Out-of-memory is declared when any instance's recorded peak memory exceeds the
worker budget; callers may either ask for a report (``check_memory=False``)
or let the model raise :class:`~repro.cluster.resources.OutOfMemoryError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.metrics import InstanceMetrics, MetricsCollector
from repro.cluster.resources import ClusterSpec, OutOfMemoryError


@dataclass
class PhaseCost:
    """Cost breakdown of a single phase."""

    phase: str
    wall_clock_seconds: float
    cpu_seconds: float
    total_bytes: float
    instance_seconds: Dict[int, float] = field(default_factory=dict)
    straggler_instance: int = -1
    oom_instances: List[int] = field(default_factory=list)


@dataclass
class CostSummary:
    """Aggregate cost of a whole job."""

    wall_clock_seconds: float
    cpu_minutes: float
    total_bytes: float
    phases: List[PhaseCost] = field(default_factory=list)
    oom: bool = False
    oom_instances: List[str] = field(default_factory=list)

    @property
    def wall_clock_minutes(self) -> float:
        return self.wall_clock_seconds / 60.0

    def instance_times(self, phase: Optional[str] = None) -> Dict[int, float]:
        """Total busy seconds per instance (optionally for one phase)."""
        out: Dict[int, float] = {}
        for phase_cost in self.phases:
            if phase is not None and phase_cost.phase != phase:
                continue
            for instance_id, seconds in phase_cost.instance_seconds.items():
                out[instance_id] = out.get(instance_id, 0.0) + seconds
        return out


class CostModel:
    """Convert recorded metrics into a :class:`CostSummary` for a cluster."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster

    # ------------------------------------------------------------------ #
    def instance_seconds(self, metric: InstanceMetrics) -> float:
        """Busy time of a single instance record."""
        worker = self.cluster.worker
        compute_time = metric.compute_units / worker.compute_rate
        network_time = max(metric.bytes_in, metric.bytes_out) / worker.network_bandwidth_bytes_per_second
        disk_time = metric.disk_bytes / worker.disk_bandwidth_bytes_per_second
        return compute_time + network_time + disk_time

    def memory_exceeded(self, metric: InstanceMetrics) -> bool:
        return metric.peak_memory_bytes > self.cluster.worker.memory_bytes

    # ------------------------------------------------------------------ #
    def summarize(self, collector: MetricsCollector, check_memory: bool = False) -> CostSummary:
        """Compute per-phase and total costs from a metrics collector.

        With ``check_memory=True`` an :class:`OutOfMemoryError` is raised as
        soon as any instance exceeds the memory budget (mirroring the paper's
        OOM entries in Table IV); otherwise the OOM condition is only reported
        in the summary.
        """
        phases: List[PhaseCost] = []
        total_wall = 0.0
        total_cpu_seconds = 0.0
        total_bytes = 0.0
        oom_instances: List[str] = []

        for phase in collector.phases():
            records = collector.instances(phase)
            instance_seconds: Dict[int, float] = {}
            phase_bytes = 0.0
            phase_oom: List[int] = []
            for metric in records:
                seconds = self.instance_seconds(metric)
                instance_seconds[metric.instance_id] = instance_seconds.get(metric.instance_id, 0.0) + seconds
                phase_bytes += metric.bytes_in + metric.bytes_out
                if self.memory_exceeded(metric):
                    phase_oom.append(metric.instance_id)
                    label = f"{phase}/instance{metric.instance_id}"
                    oom_instances.append(label)
                    if check_memory:
                        raise OutOfMemoryError(label, metric.peak_memory_bytes,
                                               self.cluster.worker.memory_bytes)
            if instance_seconds:
                straggler = max(instance_seconds, key=instance_seconds.get)
                wall = instance_seconds[straggler]
            else:
                straggler, wall = -1, 0.0
            cpu_seconds = sum(instance_seconds.values()) * self.cluster.worker.cpu_cores
            phases.append(PhaseCost(
                phase=phase, wall_clock_seconds=wall, cpu_seconds=cpu_seconds,
                total_bytes=phase_bytes, instance_seconds=instance_seconds,
                straggler_instance=straggler, oom_instances=phase_oom,
            ))
            total_wall += wall
            total_cpu_seconds += cpu_seconds
            total_bytes += phase_bytes

        return CostSummary(
            wall_clock_seconds=total_wall,
            cpu_minutes=total_cpu_seconds / 60.0,
            total_bytes=total_bytes,
            phases=phases,
            oom=bool(oom_instances),
            oom_instances=oom_instances,
        )


def gnn_layer_compute_units(num_messages: int, message_dim: int, num_nodes: int,
                            in_dim: int, out_dim: int) -> float:
    """Rule-of-thumb compute cost of one GNN layer on one instance.

    * gather: one pass over every message element;
    * apply_node: a dense [in_dim × out_dim] transform per node;
    * apply_edge/scatter: one pass over every outgoing message element
      (charged by the caller on the sending side).
    """
    gather_cost = float(num_messages) * float(message_dim)
    apply_cost = float(num_nodes) * float(in_dim) * float(out_dim)
    return gather_cost + apply_cost
