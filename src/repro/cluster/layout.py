"""Cluster-wide columnar routing tables.

A :class:`ClusterLayout` is the shared answer to the two questions every
shuffle in the system asks about a global node id:

* **who owns it?** — ``owner_of[g]`` is the partition (worker) id;
* **where does it live there?** — ``local_of[g]`` is the node's dense local
  index inside its owner's storage (row index into the partition's state
  matrices).

Both tables are plain dense ``int64`` arrays computed **once** per
partitioning, so every layer that moves rows — the Pregel superstep router,
the MapReduce scatter, shadow-node destination expansion — translates whole
message batches with two fancy-indexing gathers instead of per-element Python
dict lookups.  The layout is immutable after construction and safe to share
across partitions, executions and sessions.

The local index convention matches the partitioners: within a partition,
owned global ids are stored in ascending order, so ``nodes_of(pid)`` is
sorted and ``nodes_of(pid)[local_of[g]] == g`` for every owned ``g``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a graph<->cluster cycle
    from repro.graph.partition import HashPartitioner


def stable_group_by(keys: np.ndarray,
                    num_buckets: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group row positions by an integer bucket key in one stable pass.

    Returns ``(order, counts, starts)``: ``order`` lists row positions grouped
    by bucket (rows within a bucket keep their original relative order, i.e.
    ``order[starts[b]:starts[b] + counts[b]]`` are bucket ``b``'s rows
    ascending).  This is the one group-by idiom behind layout construction,
    partition slicing and message-block bucketing.

    ``keys`` must already lie in ``[0, num_buckets)`` — callers validate.
    Bucket keys are bounded by the worker count, so they almost always fit
    uint16, where numpy's stable sort switches to radix sort (about 4x faster
    than the int64 mergesort path).
    """
    keys = np.asarray(keys, dtype=np.int64)
    sort_keys = keys.astype(np.uint16) if int(num_buckets) <= 65536 else keys
    order = np.argsort(sort_keys, kind="stable")
    counts = np.bincount(keys, minlength=int(num_buckets))
    starts = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]])
    return order, counts, starts


def csr_gather(indptr: np.ndarray, values: np.ndarray,
               ids: np.ndarray) -> np.ndarray:
    """Concatenate ``values[indptr[i]:indptr[i+1]]`` for every ``i`` in ``ids``.

    The ranged multi-gather behind every CSR walk in the system — shadow
    replica fan-out, batched out-neighbour expansion — in one
    repeat/arange pass with no per-id Python.  Ranges appear in ``ids`` order,
    each range in its stored order.
    """
    ids = np.asarray(ids, dtype=np.int64)
    counts = indptr[ids + 1] - indptr[ids]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=values.dtype)
    run_starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(run_starts, counts)
    return values[np.repeat(indptr[ids], counts) + within]


class ClusterLayout:
    """Dense global→owner and global→local translation tables.

    Parameters
    ----------
    owner_of:
        ``int64 [num_nodes]`` — partition id owning each global node id.
    local_of:
        ``int64 [num_nodes]`` — local row index of each global node id
        inside its owner (rank among the owner's nodes in ascending id order).
    num_partitions:
        Total partition count; every ``owner_of`` entry is in
        ``[0, num_partitions)``.
    """

    __slots__ = ("num_partitions", "owner_of", "local_of", "_order", "_starts", "_counts")

    def __init__(self, owner_of: np.ndarray, local_of: np.ndarray,
                 num_partitions: int) -> None:
        self.owner_of = np.asarray(owner_of, dtype=np.int64)
        self.local_of = np.asarray(local_of, dtype=np.int64)
        if self.owner_of.shape != self.local_of.shape or self.owner_of.ndim != 1:
            raise ValueError("owner_of and local_of must be matching 1-D arrays")
        self.num_partitions = int(num_partitions)
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if self.owner_of.size and (int(self.owner_of.min()) < 0
                                   or int(self.owner_of.max()) >= self.num_partitions):
            raise ValueError("owner_of entries must lie in [0, num_partitions)")
        # Grouped view: ``_order`` lists global ids grouped by owner (each
        # group ascending); ``_starts``/``_counts`` slice it per partition.
        # Built lazily — :meth:`from_assignments` already has the grouping as
        # a by-product of computing ``local_of`` and injects it instead of
        # paying a second argsort.
        self._order: Optional[np.ndarray] = None
        self._counts: Optional[np.ndarray] = None
        self._starts: Optional[np.ndarray] = None

    def _ensure_grouping(self) -> None:
        if self._order is None:
            self._order, self._counts, self._starts = stable_group_by(
                self.owner_of, self.num_partitions)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_assignments(cls, assignments: np.ndarray, num_partitions: int) -> "ClusterLayout":
        """Build the layout from a dense ``global id -> partition id`` array."""
        assignments = np.asarray(assignments, dtype=np.int64)
        num_nodes = assignments.size
        order, counts, starts = stable_group_by(assignments, int(num_partitions))
        local_of = np.empty(num_nodes, dtype=np.int64)
        # Rank of each node within its partition group: position in the
        # grouped order minus the group's start offset.
        local_of[order] = np.arange(num_nodes, dtype=np.int64) - np.repeat(starts, counts)
        layout = cls(owner_of=assignments, local_of=local_of,
                     num_partitions=int(num_partitions))
        layout._order, layout._counts, layout._starts = order, counts, starts
        return layout

    @classmethod
    def build(cls, num_nodes: int, partitioner: "HashPartitioner") -> "ClusterLayout":
        """Build the layout for ``num_nodes`` global ids under ``partitioner``."""
        assignments = partitioner.assign_many(np.arange(int(num_nodes), dtype=np.int64))
        return cls.from_assignments(assignments, partitioner.num_partitions)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return int(self.owner_of.size)

    def _check_ids(self, global_ids: np.ndarray) -> np.ndarray:
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if global_ids.size and (int(global_ids.min()) < 0
                                or int(global_ids.max()) >= self.owner_of.size):
            bad = global_ids[(global_ids < 0) | (global_ids >= self.owner_of.size)][0]
            raise ValueError(
                f"global id {int(bad)} is outside this layout's id space "
                f"[0, {self.owner_of.size})")
        return global_ids

    def owners(self, global_ids: np.ndarray) -> np.ndarray:
        """Owning partition id of every id in ``global_ids`` (one gather)."""
        return self.owner_of[self._check_ids(global_ids)]

    def local_indices(self, global_ids: np.ndarray) -> np.ndarray:
        """Local row index of every id inside its own owner (one gather)."""
        return self.local_of[self._check_ids(global_ids)]

    def translate(self, global_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(owners, local_indices)`` for a batch of global ids in one pass."""
        global_ids = self._check_ids(global_ids)
        return self.owner_of[global_ids], self.local_of[global_ids]

    def group_by_owner(self, global_ids: np.ndarray,
                       ) -> Iterator[Tuple[int, np.ndarray]]:
        """Group row positions of ``global_ids`` by owning partition.

        Yields ``(partition_id, positions)`` for *every* partition in id
        order — empty ones included, so callers that must overwrite
        per-partition state (e.g. an edge regroup after a delta) cannot skip
        a partition that just lost its last row.  ``positions`` index into
        ``global_ids``; rows within a partition keep their original relative
        order (stable grouping), which is what keeps delta-time regroups
        bit-identical to a from-scratch partitioning.
        """
        owners = self.owners(global_ids)
        order, counts, starts = stable_group_by(owners, self.num_partitions)
        for pid in range(self.num_partitions):
            start = int(starts[pid])
            yield pid, order[start:start + int(counts[pid])]

    # ------------------------------------------------------------------ #
    # per-partition views
    # ------------------------------------------------------------------ #
    def nodes_of(self, partition_id: int) -> np.ndarray:
        """Global ids owned by ``partition_id``, in ascending order."""
        pid = int(partition_id)
        if not 0 <= pid < self.num_partitions:
            raise ValueError(f"partition id {pid} out of range "
                             f"[0, {self.num_partitions})")
        self._ensure_grouping()
        start = int(self._starts[pid])
        return self._order[start:start + int(self._counts[pid])]

    def partition_sizes(self) -> np.ndarray:
        """Number of owned nodes per partition (``int64 [num_partitions]``)."""
        self._ensure_grouping()
        return self._counts.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ClusterLayout(num_nodes={self.num_nodes}, "
                f"num_partitions={self.num_partitions})")
