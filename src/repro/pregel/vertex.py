"""Message types, contexts and program interfaces for the Pregel engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.cluster.layout import stable_group_by
from repro.cluster.metrics import ID_BYTES, RECORD_OVERHEAD_BYTES, estimate_payload_bytes


@dataclass
class VertexMessage:
    """A single message addressed to one vertex (classic Pregel style)."""

    dst: int
    value: Any

    def nbytes(self) -> float:
        return ID_BYTES + RECORD_OVERHEAD_BYTES + estimate_payload_bytes(self.value)

    def num_records(self) -> int:
        return 1


@dataclass
class MessageBlock:
    """A packed batch of messages sharing a payload matrix.

    Row i is a message for vertex ``dst_ids[i]`` with payload ``payload[i]``
    that stands for ``counts[i]`` original messages (counts > 1 appear when a
    sender-side combiner pre-aggregated messages — the partial-gather case).
    """

    dst_ids: np.ndarray
    payload: np.ndarray
    counts: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.dst_ids = np.asarray(self.dst_ids, dtype=np.int64)
        self.payload = np.asarray(self.payload, dtype=np.float64)
        if self.payload.ndim == 1:
            self.payload = self.payload.reshape(-1, 1)
        if self.counts is None:
            self.counts = np.ones(self.dst_ids.shape[0], dtype=np.int64)
        else:
            self.counts = np.asarray(self.counts, dtype=np.int64)
        if not (self.dst_ids.shape[0] == self.payload.shape[0] == self.counts.shape[0]):
            raise ValueError("dst_ids, payload and counts must have matching lengths")

    # Whether a sender-side combiner may fold this block's rows.  Deliberately
    # unannotated so the dataclass machinery treats it as a plain class
    # attribute (subclasses override it), not an instance field.
    combinable = True

    def nbytes(self) -> float:
        return (self.dst_ids.shape[0] * (ID_BYTES + RECORD_OVERHEAD_BYTES)
                + float(self.payload.nbytes))

    def num_records(self) -> int:
        return int(self.dst_ids.shape[0])

    def dense_payload(self) -> np.ndarray:
        """Payload rows aligned with ``dst_ids`` (identity for plain blocks)."""
        return self.payload

    def take(self, rows: np.ndarray) -> "MessageBlock":
        """A new block containing only the selected rows (same concrete type)."""
        return MessageBlock(dst_ids=self.dst_ids[rows], payload=self.payload[rows],
                            counts=self.counts[rows])

    def split_by(self, targets: np.ndarray,
                 num_buckets: int) -> List[Tuple[int, "MessageBlock"]]:
        """Columnar bucketing: split rows by an integer target per row.

        ``targets[i]`` names the bucket (destination partition) of row ``i``.
        One stable argsort groups all rows at once — there is no per-bucket
        mask pass — and each non-empty bucket becomes one :meth:`take` slice,
        so subclasses (e.g. broadcast blocks) keep their concrete type.
        Returns ``(bucket, block)`` pairs in ascending bucket order; rows
        within a bucket keep their original relative order, matching what a
        per-bucket ``nonzero`` scan would produce.
        """
        targets = np.asarray(targets, dtype=np.int64)
        if targets.shape[0] != self.dst_ids.shape[0]:
            raise ValueError("targets must assign one bucket per block row")
        if targets.size == 0:
            return []
        if int(targets.min()) < 0 or int(targets.max()) >= int(num_buckets):
            raise ValueError(
                f"targets must lie in [0, {int(num_buckets)}); "
                f"got range [{int(targets.min())}, {int(targets.max())}]")
        order, counts, starts = stable_group_by(targets, int(num_buckets))
        pieces: List[Tuple[int, MessageBlock]] = []
        for bucket in np.nonzero(counts)[0]:
            rows = order[starts[bucket]:starts[bucket] + counts[bucket]]
            pieces.append((int(bucket), self.take(rows)))
        return pieces


@dataclass
class PregelPartitionState:
    """Mutable per-partition vertex storage for per-vertex programs."""

    values: Dict[int, Any] = field(default_factory=dict)
    halted: Dict[int, bool] = field(default_factory=dict)


class VertexContext:
    """Hands a single vertex its state and messaging capabilities."""

    def __init__(self, vertex_id: int, partition_context: "PartitionContext") -> None:
        self.vertex_id = vertex_id
        self._partition = partition_context

    # -- state ---------------------------------------------------------- #
    @property
    def superstep(self) -> int:
        return self._partition.superstep

    @property
    def value(self) -> Any:
        return self._partition.get_value(self.vertex_id)

    @value.setter
    def value(self, new_value: Any) -> None:
        self._partition.set_value(self.vertex_id, new_value)

    def out_edges(self) -> np.ndarray:
        """Destination ids of this vertex's out-edges."""
        return self._partition.out_edges_of(self.vertex_id)

    @property
    def num_vertices(self) -> int:
        return self._partition.num_graph_vertices

    # -- actions -------------------------------------------------------- #
    def send_message(self, dst: int, value: Any) -> None:
        self._partition.send_message(dst, value)

    def send_message_to_all_neighbors(self, value: Any) -> None:
        for dst in self.out_edges():
            self._partition.send_message(int(dst), value)

    def vote_to_halt(self) -> None:
        self._partition.vote_to_halt(self.vertex_id)

    def aggregate(self, name: str, value: Any) -> None:
        self._partition.aggregate(name, value)

    def get_aggregated(self, name: str) -> Any:
        return self._partition.get_aggregated(name)


class PartitionContext:
    """Per-partition view handed to programs during one superstep.

    It exposes the owned vertices, out-edges and the outgoing mailbox, and it
    accumulates the compute/memory accounting that the cost model consumes.
    """

    def __init__(self, partition, superstep: int, aggregated: Dict[str, Any],
                 num_graph_vertices: int) -> None:
        self._partition = partition
        self.superstep = superstep
        self._aggregated = aggregated
        self.num_graph_vertices = num_graph_vertices
        self.outgoing_vertex_messages: List[VertexMessage] = []
        self.outgoing_blocks: List[MessageBlock] = []
        self.aggregator_inputs: Dict[str, List[Any]] = {}
        self.compute_units: float = 0.0
        self.peak_memory_bytes: float = 0.0
        self._halt_votes: List[int] = []
        #: local row indices this superstep is restricted to, or None for a
        #: full superstep.  Set by the engine when it runs with a frontier
        #: schedule (incremental inference); block programs that support
        #: frontier-restricted supersteps read it in ``compute_partition``.
        self.frontier_rows: Optional[np.ndarray] = None

    # -- state access ---------------------------------------------------- #
    @property
    def partition(self):
        """The :class:`~repro.pregel.engine.PregelPartition` being processed."""
        return self._partition

    @property
    def partition_id(self) -> int:
        return self._partition.partition_id

    @property
    def vertex_ids(self) -> np.ndarray:
        return self._partition.node_ids

    def get_value(self, vertex_id: int) -> Any:
        return self._partition.state.values.get(vertex_id)

    def set_value(self, vertex_id: int, value: Any) -> None:
        self._partition.state.values[vertex_id] = value

    def out_edges_of(self, vertex_id: int) -> np.ndarray:
        return self._partition.out_edges_of(vertex_id)

    # -- messaging -------------------------------------------------------- #
    def send_message(self, dst: int, value: Any) -> None:
        self.outgoing_vertex_messages.append(VertexMessage(dst=int(dst), value=value))

    def send_block(self, block: MessageBlock) -> None:
        self.outgoing_blocks.append(block)

    def vote_to_halt(self, vertex_id: int) -> None:
        self._halt_votes.append(vertex_id)
        self._partition.state.halted[vertex_id] = True

    # -- aggregators ------------------------------------------------------ #
    def aggregate(self, name: str, value: Any) -> None:
        self.aggregator_inputs.setdefault(name, []).append(value)

    def get_aggregated(self, name: str) -> Any:
        return self._aggregated.get(name)

    # -- accounting -------------------------------------------------------- #
    def add_compute(self, units: float) -> None:
        self.compute_units += float(units)

    def observe_memory(self, bytes_used: float) -> None:
        self.peak_memory_bytes = max(self.peak_memory_bytes, float(bytes_used))


class VertexProgram:
    """Per-vertex program: override :meth:`compute`."""

    def compute(self, vertex: VertexContext, messages: List[Any]) -> None:
        raise NotImplementedError

    def initial_value(self, vertex_id: int) -> Any:
        """Initial vertex value before superstep 0 (default None)."""
        return None


class BlockVertexProgram:
    """Per-partition block program: override :meth:`compute_partition`.

    ``incoming`` is the list of :class:`MessageBlock`s whose destinations are
    owned by the partition; the program is responsible for its own
    vectorisation and for sending outgoing blocks through the context.

    Programs running under a process executor may additionally declare two
    optional attributes (read via ``getattr``; ``None``/absent means
    "everything", which is always safe):

    * ``block_state_ship_keys`` — the ``partition.block_state`` keys a run
      *reads* from previous runs, shipped to the worker at open time;
    * ``block_state_return_keys`` — the keys a run leaves behind for later
      runs or output collection, shipped back at close time.

    Declaring them precisely avoids round-tripping large state matrices the
    program would reset anyway.
    """

    def compute_partition(self, context: PartitionContext,
                          incoming: List[MessageBlock]) -> None:
        raise NotImplementedError

    def setup_partition(self, partition) -> None:
        """Hook called once before superstep 0 for each partition."""

    def max_supersteps(self) -> int:
        raise NotImplementedError
