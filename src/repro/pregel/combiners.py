"""Sender-side message combiners.

A combiner folds the messages a worker is about to send to the *same
destination vertex* into fewer messages before they hit the network — Pregel's
classic bandwidth optimisation, and the mechanism the paper reuses to
implement the partial-gather strategy (the GNN's aggregate stage runs inside
the combiner, which is legal exactly when that stage is commutative and
associative).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from repro.pregel.vertex import MessageBlock


class MessageCombiner:
    """Interface for combining per-destination messages on the sender side."""

    def combine(self, values: List[Any]) -> Any:
        """Fold plain vertex-message values bound for one destination."""
        raise NotImplementedError

    def combine_block(self, block: MessageBlock) -> MessageBlock:
        """Fold a packed block so each destination id appears at most once."""
        dst_ids = block.dst_ids
        if dst_ids.size == 0:
            return block
        unique, inverse = np.unique(dst_ids, return_inverse=True)
        payload = self._reduce_payload(block.payload, inverse, unique.size)
        counts = np.zeros(unique.size, dtype=np.int64)
        np.add.at(counts, inverse, block.counts)
        return MessageBlock(dst_ids=unique, payload=payload, counts=counts)

    def _reduce_payload(self, payload: np.ndarray, inverse: np.ndarray,
                        num_groups: int) -> np.ndarray:
        raise NotImplementedError


class SumCombiner(MessageCombiner):
    """Sum messages per destination (also carries partial sums for mean)."""

    def combine(self, values: List[Any]) -> Any:
        return sum(values[1:], start=values[0])

    def _reduce_payload(self, payload: np.ndarray, inverse: np.ndarray,
                        num_groups: int) -> np.ndarray:
        out = np.zeros((num_groups,) + payload.shape[1:], dtype=np.float64)
        np.add.at(out, inverse, payload)
        return out


class MeanCombiner(SumCombiner):
    """Identical wire format to :class:`SumCombiner`.

    Mean aggregation is carried as (partial sum, count): the payload holds the
    partial sum and ``MessageBlock.counts`` holds how many raw messages it
    stands for, so the receiver can finish the division exactly.
    """


class MaxCombiner(MessageCombiner):
    """Element-wise maximum per destination."""

    def combine(self, values: List[Any]) -> Any:
        result = values[0]
        for value in values[1:]:
            result = np.maximum(result, value)
        return result

    def _reduce_payload(self, payload: np.ndarray, inverse: np.ndarray,
                        num_groups: int) -> np.ndarray:
        out = np.full((num_groups,) + payload.shape[1:], -np.inf, dtype=np.float64)
        np.maximum.at(out, inverse, payload)
        return out


def combiner_for_aggregate_kind(kind: str) -> Optional[MessageCombiner]:
    """Map a GAS layer's ``aggregate_kind`` to the matching combiner.

    ``union`` (GAT) returns ``None`` — its reduction is order-dependent through
    the softmax normaliser, so sender-side combining would change results and
    partial-gather must stay disabled.
    """
    if kind in ("sum",):
        return SumCombiner()
    if kind in ("mean",):
        return MeanCombiner()
    if kind == "max":
        return MaxCombiner()
    if kind == "union":
        return None
    raise ValueError(f"unknown aggregate kind {kind!r}")
