"""Global aggregators.

An aggregator collects values contributed by vertices during superstep *s*
and makes the reduced value available to every vertex in superstep *s + 1* —
Pregel's mechanism for global coordination.  The paper implements its
broadcast strategy "with the built-in aggregator class": hub nodes publish one
(uuid → message) entry per worker instead of per out-edge, and receivers look
the payload up by uuid.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np


class Aggregator:
    """Interface: reduce a list of contributions into one global value."""

    def reduce(self, values: List[Any]) -> Any:
        raise NotImplementedError

    def identity(self) -> Any:
        """Value exposed when nothing was contributed."""
        return None


class SumAggregator(Aggregator):
    def reduce(self, values: List[Any]) -> Any:
        total = values[0]
        for value in values[1:]:
            total = total + value
        return total

    def identity(self) -> Any:
        return 0.0


class MaxAggregator(Aggregator):
    def reduce(self, values: List[Any]) -> Any:
        best = values[0]
        for value in values[1:]:
            best = np.maximum(best, value)
        return best

    def identity(self) -> Any:
        return -np.inf


class DictUnionAggregator(Aggregator):
    """Union of dict contributions — the uuid → payload table for broadcast."""

    def reduce(self, values: List[Any]) -> Any:
        merged: Dict[Any, Any] = {}
        for value in values:
            merged.update(value)
        return merged

    def identity(self) -> Any:
        return {}
