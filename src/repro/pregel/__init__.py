"""A Pregel-like bulk-synchronous graph processing engine.

The engine follows the "think like a vertex" model: the graph is hash
partitioned by node id (each partition holds its nodes and their out-edges),
computation proceeds in supersteps, and vertices exchange messages that are
delivered at the start of the next superstep.  Message *combiners* can
pre-reduce messages bound for the same destination on the sender side, and
*aggregators* provide global shared values — both mechanisms the paper reuses
for its partial-gather and broadcast strategies.

Two program styles are supported:

* :class:`~repro.pregel.vertex.VertexProgram` — classic per-vertex
  ``compute(vertex, messages)`` (PageRank and friends; see the examples);
* :class:`~repro.pregel.vertex.BlockVertexProgram` — per-partition block
  compute over packed :class:`~repro.pregel.vertex.MessageBlock`s, which is
  what the InferTurbo adaptor uses so tensorised GNN stages stay vectorised.
"""

from repro.pregel.vertex import (
    VertexMessage,
    MessageBlock,
    VertexContext,
    PartitionContext,
    VertexProgram,
    BlockVertexProgram,
)
from repro.pregel.combiners import MessageCombiner, SumCombiner, MeanCombiner, MaxCombiner
from repro.pregel.aggregators import Aggregator, SumAggregator, MaxAggregator, DictUnionAggregator
from repro.pregel.engine import PregelEngine, PregelPartition, PregelResult

__all__ = [
    "VertexMessage",
    "MessageBlock",
    "VertexContext",
    "PartitionContext",
    "VertexProgram",
    "BlockVertexProgram",
    "MessageCombiner",
    "SumCombiner",
    "MeanCombiner",
    "MaxCombiner",
    "Aggregator",
    "SumAggregator",
    "MaxAggregator",
    "DictUnionAggregator",
    "PregelEngine",
    "PregelPartition",
    "PregelResult",
]
