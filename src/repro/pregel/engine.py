"""The Pregel-like bulk-synchronous execution engine.

The engine owns graph partitions (nodes + their out-edges + in-memory state),
runs supersteps, routes messages between partitions, applies sender-side
combiners, reduces aggregators, and records per-instance counters into a
:class:`~repro.cluster.metrics.MetricsCollector` so the cost model can derive
wall-clock / cpu*min numbers afterwards.

Everything runs in-process: a "worker" is a partition processed sequentially,
which preserves the system's data-flow shape (message volumes, per-worker skew,
superstep structure) while staying laptop-sized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.cluster.metrics import MetricsCollector, estimate_payload_bytes
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner, Partition, partition_graph
from repro.pregel.aggregators import Aggregator
from repro.pregel.combiners import MessageCombiner
from repro.pregel.vertex import (
    BlockVertexProgram,
    MessageBlock,
    PartitionContext,
    PregelPartitionState,
    VertexContext,
    VertexMessage,
    VertexProgram,
)

AnyMessage = Union[VertexMessage, MessageBlock]


class PregelPartition:
    """A worker's share of the graph plus its in-memory vertex state."""

    def __init__(self, partition: Partition) -> None:
        self.partition_id = partition.partition_id
        self.node_ids = partition.node_ids
        self.node_features = partition.node_features
        self.labels = partition.labels
        self.out_src = partition.out_src
        self.out_dst = partition.out_dst
        self.out_edge_features = partition.out_edge_features
        self.state = PregelPartitionState()
        # Local index for owned vertices and a CSR over owned out-edges.
        self._local_of: Dict[int, int] = {int(node): i for i, node in enumerate(self.node_ids)}
        order = np.argsort(self.out_src, kind="stable")
        self._out_sorted_src = self.out_src[order]
        self._out_sorted_dst = self.out_dst[order]
        self._out_sorted_edge_ids = order
        # Extra, engine-agnostic scratch space used by block programs.
        self.block_state: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.size)

    @property
    def num_out_edges(self) -> int:
        return int(self.out_src.size)

    def owns(self, vertex_id: int) -> bool:
        return int(vertex_id) in self._local_of

    def local_index(self, vertex_id: int) -> int:
        return self._local_of[int(vertex_id)]

    def local_indices(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Vectorised global → local index translation for owned vertices."""
        return np.asarray([self._local_of[int(v)] for v in vertex_ids], dtype=np.int64)

    def out_edges_of(self, vertex_id: int) -> np.ndarray:
        left = np.searchsorted(self._out_sorted_src, vertex_id, side="left")
        right = np.searchsorted(self._out_sorted_src, vertex_id, side="right")
        return self._out_sorted_dst[left:right]


@dataclass
class PregelResult:
    """Outcome of a Pregel run."""

    num_supersteps: int
    vertex_values: Dict[int, Any] = field(default_factory=dict)
    partitions: List[PregelPartition] = field(default_factory=list)
    metrics: MetricsCollector = field(default_factory=MetricsCollector)
    aggregated: Dict[str, Any] = field(default_factory=dict)


class PregelEngine:
    """Bulk-synchronous superstep executor over hash-partitioned graphs."""

    def __init__(
        self,
        graph: Graph,
        num_workers: int,
        combiner: Optional[MessageCombiner] = None,
        aggregators: Optional[Dict[str, Aggregator]] = None,
        metrics: Optional[MetricsCollector] = None,
        partitioner: Optional[HashPartitioner] = None,
    ) -> None:
        self.graph = graph
        self.num_workers = int(num_workers)
        self.partitioner = partitioner or HashPartitioner(self.num_workers)
        self.partitions = [PregelPartition(p) for p in partition_graph(graph, self.partitioner)]
        self.combiner = combiner
        self.aggregators = aggregators or {}
        self.metrics = metrics or MetricsCollector()

    # ------------------------------------------------------------------ #
    def _route(self, sender_id: int, superstep: int, context: PartitionContext,
               program_combiner: Optional[MessageCombiner]) -> List[List[AnyMessage]]:
        """Split a partition's outgoing messages by destination partition.

        The effective combiner (program-provided, else engine-level) is applied
        per destination partition before the messages are "sent", and the
        sender's bytes/records-out counters reflect the post-combine volume —
        this is how partial-gather shrinks IO in this simulation, exactly as
        the real combiner does on the wire.
        """
        outgoing: List[List[AnyMessage]] = [[] for _ in range(self.num_workers)]
        combiner = program_combiner if program_combiner is not None else self.combiner

        # Plain vertex messages: group by destination partition (and combine).
        by_partition: Dict[int, Dict[int, List[Any]]] = {}
        for message in context.outgoing_vertex_messages:
            target = self.partitioner.assign(message.dst)
            by_partition.setdefault(target, {}).setdefault(message.dst, []).append(message.value)
        for target, per_vertex in by_partition.items():
            for dst, values in per_vertex.items():
                if combiner is not None and len(values) > 1:
                    values = [combiner.combine(values)]
                for value in values:
                    outgoing[target].append(VertexMessage(dst=dst, value=value))

        # Packed blocks: split rows by destination partition (and combine).
        for block in context.outgoing_blocks:
            if block.dst_ids.size == 0:
                continue
            targets = self.partitioner.assign_many(block.dst_ids)
            for target in np.unique(targets):
                rows = np.nonzero(targets == target)[0]
                piece = block.take(rows)
                if combiner is not None and piece.combinable:
                    piece = combiner.combine_block(piece)
                outgoing[int(target)].append(piece)

        phase = f"superstep_{superstep}"
        bytes_out = sum(m.nbytes() for bucket in outgoing for m in bucket)
        records_out = sum(m.num_records() for bucket in outgoing for m in bucket)
        self.metrics.record(phase, sender_id, bytes_out=bytes_out, records_out=records_out)
        return outgoing

    # ------------------------------------------------------------------ #
    def run(self, program: Union[VertexProgram, BlockVertexProgram],
            max_supersteps: int = 30) -> PregelResult:
        """Execute ``program`` until it halts or ``max_supersteps`` is reached."""
        is_block = isinstance(program, BlockVertexProgram)
        if is_block:
            max_supersteps = program.max_supersteps()
            for partition in self.partitions:
                program.setup_partition(partition)
        else:
            for partition in self.partitions:
                for vertex_id in partition.node_ids:
                    partition.state.values[int(vertex_id)] = program.initial_value(int(vertex_id))
                    partition.state.halted[int(vertex_id)] = False

        mailboxes: List[List[AnyMessage]] = [[] for _ in range(self.num_workers)]
        aggregated: Dict[str, Any] = {name: agg.identity() for name, agg in self.aggregators.items()}
        superstep = 0

        while superstep < max_supersteps:
            next_mailboxes: List[List[AnyMessage]] = [[] for _ in range(self.num_workers)]
            aggregator_contribs: Dict[str, List[Any]] = {name: [] for name in self.aggregators}
            messages_sent = 0
            any_active = False
            phase = f"superstep_{superstep}"

            for partition in self.partitions:
                incoming = mailboxes[partition.partition_id]
                bytes_in = sum(m.nbytes() for m in incoming)
                records_in = sum(m.num_records() for m in incoming)
                context = PartitionContext(partition, superstep, aggregated, self.graph.num_nodes)

                if is_block:
                    blocks = [m for m in incoming if isinstance(m, MessageBlock)]
                    program.compute_partition(context, blocks)
                    any_active = True
                else:
                    grouped: Dict[int, List[Any]] = {}
                    for message in incoming:
                        if isinstance(message, VertexMessage):
                            grouped.setdefault(message.dst, []).append(message.value)
                        else:  # pragma: no cover - blocks to per-vertex programs
                            for row in range(message.num_records()):
                                grouped.setdefault(int(message.dst_ids[row]), []).append(
                                    message.payload[row])
                    for vertex_id in partition.node_ids:
                        vertex_id = int(vertex_id)
                        vertex_messages = grouped.get(vertex_id, [])
                        if partition.state.halted.get(vertex_id, False) and not vertex_messages:
                            continue
                        partition.state.halted[vertex_id] = False
                        any_active = True
                        program.compute(VertexContext(vertex_id, context), vertex_messages)

                self.metrics.record(
                    phase, partition.partition_id,
                    compute_units=context.compute_units,
                    bytes_in=bytes_in, records_in=records_in,
                    peak_memory_bytes=context.peak_memory_bytes,
                )
                program_combiner = None
                if is_block and hasattr(program, "combiner_for_superstep"):
                    program_combiner = program.combiner_for_superstep(superstep)
                routed = self._route(partition.partition_id, superstep, context, program_combiner)
                for target, bucket in enumerate(routed):
                    next_mailboxes[target].extend(bucket)
                    messages_sent += len(bucket)
                for name, values in context.aggregator_inputs.items():
                    if name in aggregator_contribs:
                        aggregator_contribs[name].extend(values)

            for name, aggregator in self.aggregators.items():
                contributions = aggregator_contribs[name]
                aggregated[name] = aggregator.reduce(contributions) if contributions else aggregator.identity()

            mailboxes = next_mailboxes
            superstep += 1
            if not is_block and messages_sent == 0 and not any_active:
                break
            if not is_block and messages_sent == 0:
                all_halted = all(
                    partition.state.halted.get(int(v), False)
                    for partition in self.partitions for v in partition.node_ids
                )
                if all_halted:
                    break

        vertex_values: Dict[int, Any] = {}
        if not is_block:
            for partition in self.partitions:
                vertex_values.update(partition.state.values)
        return PregelResult(
            num_supersteps=superstep,
            vertex_values=vertex_values,
            partitions=self.partitions,
            metrics=self.metrics,
            aggregated=aggregated,
        )
