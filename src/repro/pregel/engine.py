"""The Pregel-like bulk-synchronous execution engine.

The engine owns graph partitions (nodes + their out-edges + in-memory state),
runs supersteps, routes messages between partitions, applies sender-side
combiners, reduces aggregators, and records per-instance counters into a
:class:`~repro.cluster.metrics.MetricsCollector` so the cost model can derive
wall-clock / cpu*min numbers afterwards.

Everything runs in-process: a "worker" is a partition processed sequentially,
which preserves the system's data-flow shape (message volumes, per-worker skew,
superstep structure) while staying laptop-sized.

How message routing works
-------------------------

Routing is columnar, built on the shared
:class:`~repro.cluster.layout.ClusterLayout` the partitioner produces once per
partitioning:

* ``layout.owner_of`` and ``layout.local_of`` are dense ``int64`` tables
  mapping every global node id to its owning partition and to its local row
  there.  Senders and receivers consult the same tables, so placement needs no
  coordination and no per-id hashing on the hot path.
* At the end of a superstep each partition's outgoing
  :class:`~repro.pregel.vertex.MessageBlock`\\ s are bucketed by destination
  partition in a single vectorised pass per block: one ``owner_of`` gather
  yields the target of every row, and
  :meth:`~repro.pregel.vertex.MessageBlock.split_by` groups the rows with one
  stable argsort + ``bincount`` (no per-target masks).  The effective
  sender-side combiner is applied to each combinable bucket before it is
  "sent", so bytes/records-out reflect post-combine volume.
* On the receiving side, destination global ids translate to dense local rows
  with one ``local_of`` gather (:meth:`PregelPartition.local_indices`).
* Only the legacy per-vertex program path still groups
  :class:`~repro.pregel.vertex.VertexMessage` values through Python dicts —
  per-vertex messages carry arbitrary payloads and are not columnar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.cluster.layout import ClusterLayout
from repro.cluster.metrics import MetricsCollector
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner, Partition, partition_graph_with_layout
from repro.pregel.aggregators import Aggregator
from repro.pregel.combiners import MessageCombiner
from repro.pregel.vertex import (
    BlockVertexProgram,
    MessageBlock,
    PartitionContext,
    PregelPartitionState,
    VertexContext,
    VertexMessage,
    VertexProgram,
)

AnyMessage = Union[VertexMessage, MessageBlock]


class PregelPartition:
    """A worker's share of the graph plus its in-memory vertex state.

    Global→local translation goes through the cluster-wide
    :class:`~repro.cluster.layout.ClusterLayout` tables (shared across all
    partitions of one engine); when a partition is built stand-alone a
    single-partition layout is derived from its own node ids.
    """

    def __init__(self, partition: Partition,
                 layout: Optional[ClusterLayout] = None) -> None:
        self.partition_id = partition.partition_id
        self.node_ids = partition.node_ids
        self.node_features = partition.node_features
        self.labels = partition.labels
        self.out_src = partition.out_src
        self.out_dst = partition.out_dst
        self.out_edge_features = partition.out_edge_features
        self.state = PregelPartitionState()
        if layout is None:
            layout = self._single_partition_layout(partition)
        self.layout = layout
        self._owner_of = layout.owner_of
        self._local_of = layout.local_of
        # CSR over owned out-edges for per-vertex programs.
        order = np.argsort(self.out_src, kind="stable")
        self._out_sorted_src = self.out_src[order]
        self._out_sorted_dst = self.out_dst[order]
        self._out_sorted_edge_ids = order
        # Extra, engine-agnostic scratch space used by block programs.
        self.block_state: Dict[str, Any] = {}

    def _single_partition_layout(self, partition: Partition) -> ClusterLayout:
        """Fallback owner/local tables when no engine-wide layout is given."""
        size = int(partition.node_ids.max()) + 1 if partition.node_ids.size else 0
        owner_of = np.full(size, self.partition_id + 1, dtype=np.int64)
        local_of = np.zeros(size, dtype=np.int64)
        owner_of[partition.node_ids] = self.partition_id
        local_of[partition.node_ids] = np.arange(partition.node_ids.size, dtype=np.int64)
        return ClusterLayout(owner_of=owner_of, local_of=local_of,
                             num_partitions=self.partition_id + 2)

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.size)

    @property
    def num_out_edges(self) -> int:
        return int(self.out_src.size)

    def owns(self, vertex_id: int) -> bool:
        vertex_id = int(vertex_id)
        return (0 <= vertex_id < self._owner_of.size
                and int(self._owner_of[vertex_id]) == self.partition_id)

    def local_index(self, vertex_id: int) -> int:
        if not self.owns(vertex_id):
            raise ValueError(
                f"partition {self.partition_id} does not own vertex {int(vertex_id)}")
        return int(self._local_of[int(vertex_id)])

    def local_indices(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Vectorised global → local index translation for owned vertices.

        One gather through the layout's dense ``local_of`` table.  Asking for
        a vertex this partition does not own is a routing bug; it raises a
        :class:`ValueError` naming the partition and the offending global id.
        """
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        in_range = (vertex_ids >= 0) & (vertex_ids < self._owner_of.size)
        owned = np.zeros(vertex_ids.shape, dtype=bool)
        owned[in_range] = self._owner_of[vertex_ids[in_range]] == self.partition_id
        if not owned.all():
            offender = int(vertex_ids[~owned][0])
            raise ValueError(
                f"partition {self.partition_id} does not own vertex {offender}")
        return self._local_of[vertex_ids]

    def out_edges_of(self, vertex_id: int) -> np.ndarray:
        left = np.searchsorted(self._out_sorted_src, vertex_id, side="left")
        right = np.searchsorted(self._out_sorted_src, vertex_id, side="right")
        return self._out_sorted_dst[left:right]

    def replace_out_edges(self, out_src: np.ndarray, out_dst: np.ndarray,
                          out_edge_features: Optional[np.ndarray] = None) -> None:
        """Swap this partition's out-edge arrays after an in-place edge delta.

        Rebuilds the per-vertex CSR view and drops the layout-derived
        ``out_src_local`` scratch entry so block programs recompute it from
        the new arrays on their next ``setup_partition``.
        """
        self.out_src = np.asarray(out_src, dtype=np.int64)
        self.out_dst = np.asarray(out_dst, dtype=np.int64)
        self.out_edge_features = out_edge_features
        order = np.argsort(self.out_src, kind="stable")
        self._out_sorted_src = self.out_src[order]
        self._out_sorted_dst = self.out_dst[order]
        self._out_sorted_edge_ids = order
        self.block_state.pop("out_src_local", None)


@dataclass
class PregelResult:
    """Outcome of a Pregel run."""

    num_supersteps: int
    vertex_values: Dict[int, Any] = field(default_factory=dict)
    partitions: List[PregelPartition] = field(default_factory=list)
    metrics: MetricsCollector = field(default_factory=MetricsCollector)
    aggregated: Dict[str, Any] = field(default_factory=dict)


class PregelEngine:
    """Bulk-synchronous superstep executor over hash-partitioned graphs."""

    def __init__(
        self,
        graph: Graph,
        num_workers: int,
        combiner: Optional[MessageCombiner] = None,
        aggregators: Optional[Dict[str, Aggregator]] = None,
        metrics: Optional[MetricsCollector] = None,
        partitioner: Optional[HashPartitioner] = None,
        layout: Optional[ClusterLayout] = None,
    ) -> None:
        self.graph = graph
        self.num_workers = int(num_workers)
        self.partitioner = partitioner or HashPartitioner(self.num_workers)
        partitions, self.layout = partition_graph_with_layout(
            graph, self.partitioner, layout)
        self.partitions = [PregelPartition(p, self.layout) for p in partitions]
        self.combiner = combiner
        self.aggregators = aggregators or {}
        self.metrics = metrics or MetricsCollector()

    # ------------------------------------------------------------------ #
    def _route(self, context: PartitionContext,
               program_combiner: Optional[MessageCombiner]) -> List[List[AnyMessage]]:
        """Split a partition's outgoing messages by destination partition.

        Block routing is columnar: one ``owner_of`` gather resolves every
        row's destination partition and one stable argsort
        (:meth:`~repro.pregel.vertex.MessageBlock.split_by`) buckets all rows
        at once — no per-target masks, no per-row Python.  The effective
        combiner (program-provided, else engine-level) is applied per
        destination partition before the messages are "sent", and the sender's
        bytes/records-out counters reflect the post-combine volume — this is
        how partial-gather shrinks IO in this simulation, exactly as the real
        combiner does on the wire.
        """
        outgoing: List[List[AnyMessage]] = [[] for _ in range(self.num_workers)]
        combiner = program_combiner if program_combiner is not None else self.combiner

        # Plain vertex messages (legacy per-vertex path): group by destination
        # partition through dicts — payloads are arbitrary Python values.
        by_partition: Dict[int, Dict[int, List[Any]]] = {}
        for message in context.outgoing_vertex_messages:
            dst = int(message.dst)
            if not 0 <= dst < self.layout.owner_of.size:
                raise ValueError(
                    f"partition {context.partition_id} sent a message to "
                    f"unknown vertex {dst} (graph has "
                    f"{self.layout.owner_of.size} vertices)")
            target = int(self.layout.owner_of[dst])
            by_partition.setdefault(target, {}).setdefault(message.dst, []).append(message.value)
        for target, per_vertex in by_partition.items():
            for dst, values in per_vertex.items():
                if combiner is not None and len(values) > 1:
                    values = [combiner.combine(values)]
                for value in values:
                    outgoing[target].append(VertexMessage(dst=dst, value=value))

        # Packed blocks: one owner gather + one argsort bucketing per block.
        for block in context.outgoing_blocks:
            if block.dst_ids.size == 0:
                continue
            targets = self.layout.owners(block.dst_ids)
            for target, piece in block.split_by(targets, self.num_workers):
                if combiner is not None and piece.combinable:
                    piece = combiner.combine_block(piece)
                outgoing[target].append(piece)
        return outgoing

    # ------------------------------------------------------------------ #
    def run(self, program: Union[VertexProgram, BlockVertexProgram],
            max_supersteps: int = 30,
            frontier: Optional[Sequence[Dict[int, np.ndarray]]] = None) -> PregelResult:
        """Execute ``program`` until it halts or ``max_supersteps`` is reached.

        ``frontier`` restricts supersteps to a dirty-vertex schedule:
        ``frontier[s]`` maps a partition id to the local row indices whose
        state superstep ``s`` may recompute (missing partitions are idle that
        superstep).  The engine only delivers the schedule through
        ``context.frontier_rows``; the block program decides how to exploit it
        — this is how incremental inference reruns just the k-hop region a
        :class:`~repro.inference.delta.GraphDelta` can reach.
        """
        is_block = isinstance(program, BlockVertexProgram)
        if frontier is not None and not is_block:
            raise ValueError("frontier schedules require a block program")
        if is_block:
            max_supersteps = program.max_supersteps()
            for partition in self.partitions:
                program.setup_partition(partition)
        else:
            for partition in self.partitions:
                for vertex_id in partition.node_ids:
                    partition.state.values[int(vertex_id)] = program.initial_value(int(vertex_id))
                    partition.state.halted[int(vertex_id)] = False

        mailboxes: List[List[AnyMessage]] = [[] for _ in range(self.num_workers)]
        aggregated: Dict[str, Any] = {name: agg.identity() for name, agg in self.aggregators.items()}
        superstep = 0

        while superstep < max_supersteps:
            next_mailboxes: List[List[AnyMessage]] = [[] for _ in range(self.num_workers)]
            aggregator_contribs: Dict[str, List[Any]] = {name: [] for name in self.aggregators}
            messages_sent = 0
            any_active = False
            phase = f"superstep_{superstep}"

            for partition in self.partitions:
                incoming = mailboxes[partition.partition_id]
                bytes_in = sum(m.nbytes() for m in incoming)
                records_in = sum(m.num_records() for m in incoming)
                context = PartitionContext(partition, superstep, aggregated, self.graph.num_nodes)
                if frontier is not None and superstep < len(frontier):
                    context.frontier_rows = frontier[superstep].get(
                        partition.partition_id,
                        np.empty(0, dtype=np.int64))

                if is_block:
                    blocks = [m for m in incoming if isinstance(m, MessageBlock)]
                    program.compute_partition(context, blocks)
                    any_active = True
                else:
                    grouped: Dict[int, List[Any]] = {}
                    for message in incoming:
                        if isinstance(message, VertexMessage):
                            grouped.setdefault(message.dst, []).append(message.value)
                        else:  # pragma: no cover - blocks to per-vertex programs
                            for row in range(message.num_records()):
                                grouped.setdefault(int(message.dst_ids[row]), []).append(
                                    message.payload[row])
                    for vertex_id in partition.node_ids:
                        vertex_id = int(vertex_id)
                        vertex_messages = grouped.get(vertex_id, [])
                        if partition.state.halted.get(vertex_id, False) and not vertex_messages:
                            continue
                        partition.state.halted[vertex_id] = False
                        any_active = True
                        program.compute(VertexContext(vertex_id, context), vertex_messages)

                program_combiner = None
                if is_block and hasattr(program, "combiner_for_superstep"):
                    program_combiner = program.combiner_for_superstep(superstep)
                routed = self._route(context, program_combiner)
                bytes_out = sum(m.nbytes() for bucket in routed for m in bucket)
                records_out = sum(m.num_records() for bucket in routed for m in bucket)
                # One record call per partition per superstep: compute, in- and
                # out-volumes land in a single InstanceMetrics entry.
                self.metrics.record(
                    phase, partition.partition_id,
                    compute_units=context.compute_units,
                    bytes_in=bytes_in, records_in=records_in,
                    bytes_out=bytes_out, records_out=records_out,
                    peak_memory_bytes=context.peak_memory_bytes,
                )
                for target, bucket in enumerate(routed):
                    next_mailboxes[target].extend(bucket)
                    messages_sent += len(bucket)
                for name, values in context.aggregator_inputs.items():
                    if name in aggregator_contribs:
                        aggregator_contribs[name].extend(values)

            for name, aggregator in self.aggregators.items():
                contributions = aggregator_contribs[name]
                aggregated[name] = aggregator.reduce(contributions) if contributions else aggregator.identity()

            mailboxes = next_mailboxes
            superstep += 1
            if not is_block and messages_sent == 0 and not any_active:
                break
            if not is_block and messages_sent == 0:
                all_halted = all(
                    partition.state.halted.get(int(v), False)
                    for partition in self.partitions for v in partition.node_ids
                )
                if all_halted:
                    break

        vertex_values: Dict[int, Any] = {}
        if not is_block:
            for partition in self.partitions:
                vertex_values.update(partition.state.values)
        return PregelResult(
            num_supersteps=superstep,
            vertex_values=vertex_values,
            partitions=self.partitions,
            metrics=self.metrics,
            aggregated=aggregated,
        )
