"""The Pregel-like bulk-synchronous execution engine.

The engine owns graph partitions (nodes + their out-edges + in-memory state),
runs supersteps, routes messages between partitions, applies sender-side
combiners, reduces aggregators, and records per-instance counters into a
:class:`~repro.cluster.metrics.MetricsCollector` so the cost model can derive
wall-clock / cpu*min numbers afterwards.

A "worker" is a partition processed through the engine's
:class:`~repro.cluster.executor.Executor`:

* the default :class:`~repro.cluster.executor.SerialExecutor` runs each
  partition sequentially in-process — the historical behaviour, which
  preserves the system's data-flow shape (message volumes, per-worker skew,
  superstep structure) while staying laptop-sized;
* the :class:`~repro.cluster.executor.ProcessExecutor` runs one OS process
  per partition: partition arrays and the
  :class:`~repro.cluster.layout.ClusterLayout` tables ship once through
  ``multiprocessing.shared_memory``, per-superstep message blocks travel as
  pickled numpy bundles, and the per-partition compute (gather, apply_node,
  scatter, combine) runs genuinely in parallel.  Results are bit-identical to
  the serial executor: both run the same
  :class:`PregelPartitionHarness` code on arrays with identical contents, and
  message buckets are delivered in sending-partition order, so every
  order-sensitive reduction sees the same operand sequence.

How message routing works
-------------------------

Routing is columnar, built on the shared
:class:`~repro.cluster.layout.ClusterLayout` the partitioner produces once per
partitioning:

* ``layout.owner_of`` and ``layout.local_of`` are dense ``int64`` tables
  mapping every global node id to its owning partition and to its local row
  there.  Senders and receivers consult the same tables, so placement needs no
  coordination and no per-id hashing on the hot path.
* At the end of a superstep each partition's outgoing
  :class:`~repro.pregel.vertex.MessageBlock`\\ s are bucketed by destination
  partition in a single vectorised pass per block: one ``owner_of`` gather
  yields the target of every row, and
  :meth:`~repro.pregel.vertex.MessageBlock.split_by` groups the rows with one
  stable argsort + ``bincount`` (no per-target masks).  The effective
  sender-side combiner is applied to each combinable bucket before it is
  "sent", so bytes/records-out reflect post-combine volume.
* On the receiving side, destination global ids translate to dense local rows
  with one ``local_of`` gather (:meth:`PregelPartition.local_indices`).
* Only the legacy per-vertex program path still groups
  :class:`~repro.pregel.vertex.VertexMessage` values through Python dicts —
  per-vertex messages carry arbitrary payloads and are not columnar.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.executor import (
    Executor,
    SharedArrayPack,
    WorkerHarness,
    attach_shared_array,
    build_executor,
    prune_attached_segments,
)
from repro.cluster.layout import ClusterLayout
from repro.cluster.metrics import MetricsCollector
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner, Partition, partition_graph_with_layout
from repro.pregel.aggregators import Aggregator
from repro.pregel.combiners import MessageCombiner
from repro.pregel.vertex import (
    BlockVertexProgram,
    MessageBlock,
    PartitionContext,
    PregelPartitionState,
    VertexContext,
    VertexMessage,
    VertexProgram,
)

AnyMessage = Union[VertexMessage, MessageBlock]


class PregelPartition:
    """A worker's share of the graph plus its in-memory vertex state.

    Global→local translation goes through the cluster-wide
    :class:`~repro.cluster.layout.ClusterLayout` tables (shared across all
    partitions of one engine); when a partition is built stand-alone a
    single-partition layout is derived from its own node ids.
    """

    def __init__(self, partition: Partition,
                 layout: Optional[ClusterLayout] = None) -> None:
        self.partition_id = partition.partition_id
        self.node_ids = partition.node_ids
        self.node_features = partition.node_features
        self.labels = partition.labels
        self.out_src = partition.out_src
        self.out_dst = partition.out_dst
        self.out_edge_features = partition.out_edge_features
        self.state = PregelPartitionState()
        if layout is None:
            layout = self._single_partition_layout(partition)
        self.layout = layout
        self._owner_of = layout.owner_of
        self._local_of = layout.local_of
        # CSR over owned out-edges for per-vertex programs.
        order = np.argsort(self.out_src, kind="stable")
        self._out_sorted_src = self.out_src[order]
        self._out_sorted_dst = self.out_dst[order]
        self._out_sorted_edge_ids = order
        # Extra, engine-agnostic scratch space used by block programs.
        self.block_state: Dict[str, Any] = {}

    def _single_partition_layout(self, partition: Partition) -> ClusterLayout:
        """Fallback owner/local tables when no engine-wide layout is given."""
        size = int(partition.node_ids.max()) + 1 if partition.node_ids.size else 0
        owner_of = np.full(size, self.partition_id + 1, dtype=np.int64)
        local_of = np.zeros(size, dtype=np.int64)
        owner_of[partition.node_ids] = self.partition_id
        local_of[partition.node_ids] = np.arange(partition.node_ids.size, dtype=np.int64)
        return ClusterLayout(owner_of=owner_of, local_of=local_of,
                             num_partitions=self.partition_id + 2)

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.size)

    @property
    def num_out_edges(self) -> int:
        return int(self.out_src.size)

    def owns(self, vertex_id: int) -> bool:
        vertex_id = int(vertex_id)
        return (0 <= vertex_id < self._owner_of.size
                and int(self._owner_of[vertex_id]) == self.partition_id)

    def local_index(self, vertex_id: int) -> int:
        if not self.owns(vertex_id):
            raise ValueError(
                f"partition {self.partition_id} does not own vertex {int(vertex_id)}")
        return int(self._local_of[int(vertex_id)])

    def local_indices(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Vectorised global → local index translation for owned vertices.

        One gather through the layout's dense ``local_of`` table.  Asking for
        a vertex this partition does not own is a routing bug; it raises a
        :class:`ValueError` naming the partition and the offending global id.
        """
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        in_range = (vertex_ids >= 0) & (vertex_ids < self._owner_of.size)
        owned = np.zeros(vertex_ids.shape, dtype=bool)
        owned[in_range] = self._owner_of[vertex_ids[in_range]] == self.partition_id
        if not owned.all():
            offender = int(vertex_ids[~owned][0])
            raise ValueError(
                f"partition {self.partition_id} does not own vertex {offender}")
        return self._local_of[vertex_ids]

    def out_edges_of(self, vertex_id: int) -> np.ndarray:
        left = np.searchsorted(self._out_sorted_src, vertex_id, side="left")
        right = np.searchsorted(self._out_sorted_src, vertex_id, side="right")
        return self._out_sorted_dst[left:right]

    def replace_out_edges(self, out_src: np.ndarray, out_dst: np.ndarray,
                          out_edge_features: Optional[np.ndarray] = None) -> None:
        """Swap this partition's out-edge arrays after an in-place edge delta.

        Rebuilds the per-vertex CSR view and drops the layout-derived
        ``out_src_local`` scratch entry so block programs recompute it from
        the new arrays on their next ``setup_partition``.
        """
        self.out_src = np.asarray(out_src, dtype=np.int64)
        self.out_dst = np.asarray(out_dst, dtype=np.int64)
        self.out_edge_features = out_edge_features
        order = np.argsort(self.out_src, kind="stable")
        self._out_sorted_src = self.out_src[order]
        self._out_sorted_dst = self.out_dst[order]
        self._out_sorted_edge_ids = order
        self.block_state.pop("out_src_local", None)


@dataclass
class PregelResult:
    """Outcome of a Pregel run."""

    num_supersteps: int
    vertex_values: Dict[int, Any] = field(default_factory=dict)
    partitions: List[PregelPartition] = field(default_factory=list)
    metrics: MetricsCollector = field(default_factory=MetricsCollector)
    aggregated: Dict[str, Any] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# per-partition superstep harness (shared by the serial and process executors)
# --------------------------------------------------------------------------- #
@dataclass
class PregelStepResult:
    """What one partition reports back to the engine after one superstep."""

    compute_units: float = 0.0
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    records_in: int = 0
    records_out: int = 0
    peak_memory_bytes: float = 0.0
    measured_seconds: float = 0.0
    messages_sent: int = 0
    any_active: bool = False
    all_halted: bool = True
    aggregator_inputs: Dict[str, List[Any]] = field(default_factory=dict)


def _route_outgoing(context: PartitionContext, layout: ClusterLayout,
                    num_workers: int,
                    combiner: Optional[MessageCombiner]) -> List[List[AnyMessage]]:
    """Split a partition's outgoing messages by destination partition.

    Block routing is columnar: one ``owner_of`` gather resolves every row's
    destination partition and one stable argsort
    (:meth:`~repro.pregel.vertex.MessageBlock.split_by`) buckets all rows at
    once — no per-target masks, no per-row Python.  The effective combiner is
    applied per destination partition before the messages are "sent", and the
    sender's bytes/records-out counters reflect the post-combine volume — this
    is how partial-gather shrinks IO, exactly as the real combiner does on
    the wire.
    """
    outgoing: List[List[AnyMessage]] = [[] for _ in range(num_workers)]

    # Plain vertex messages (legacy per-vertex path): group by destination
    # partition through dicts — payloads are arbitrary Python values.
    by_partition: Dict[int, Dict[int, List[Any]]] = {}
    for message in context.outgoing_vertex_messages:
        dst = int(message.dst)
        if not 0 <= dst < layout.owner_of.size:
            raise ValueError(
                f"partition {context.partition_id} sent a message to "
                f"unknown vertex {dst} (graph has "
                f"{layout.owner_of.size} vertices)")
        target = int(layout.owner_of[dst])
        by_partition.setdefault(target, {}).setdefault(message.dst, []).append(message.value)
    for target, per_vertex in by_partition.items():
        for dst, values in per_vertex.items():
            if combiner is not None and len(values) > 1:
                values = [combiner.combine(values)]
            for value in values:
                outgoing[target].append(VertexMessage(dst=dst, value=value))

    # Packed blocks: one owner gather + one argsort bucketing per block.
    for block in context.outgoing_blocks:
        if block.dst_ids.size == 0:
            continue
        targets = layout.owners(block.dst_ids)
        for target, piece in block.split_by(targets, num_workers):
            if combiner is not None and piece.combinable:
                piece = combiner.combine_block(piece)
            outgoing[target].append(piece)
    return outgoing


class PregelPartitionHarness(WorkerHarness):
    """One partition's superstep loop body, hosted by an executor slot.

    The harness runs exactly the per-partition work the engine's historical
    in-process loop performed — compute (or the per-vertex dispatch), routing,
    combining, accounting — and reports a :class:`PregelStepResult` per
    superstep.  Under the serial executor it operates on the engine's live
    :class:`PregelPartition`; under the process executor it operates on a
    worker-side replica built over shared-memory arrays, and
    :meth:`finish` ships the final partition state back to the parent.
    """

    def __init__(self, partition: PregelPartition,
                 program: Union[VertexProgram, BlockVertexProgram],
                 layout: ClusterLayout, num_workers: int,
                 num_graph_vertices: int,
                 engine_combiner: Optional[MessageCombiner],
                 is_block: bool, ship_final_state: bool,
                 return_state_keys: Optional[Sequence[str]] = None) -> None:
        self.partition = partition
        self.program = program
        self.layout = layout
        self.num_workers = int(num_workers)
        self.num_graph_vertices = int(num_graph_vertices)
        self.engine_combiner = engine_combiner
        self.is_block = bool(is_block)
        self.ship_final_state = bool(ship_final_state)
        self.return_state_keys = return_state_keys
        if self.is_block:
            program.setup_partition(partition)
        else:
            for vertex_id in partition.node_ids:
                partition.state.values[int(vertex_id)] = program.initial_value(int(vertex_id))
                partition.state.halted[int(vertex_id)] = False

    # ------------------------------------------------------------------ #
    def step(self, control: Any,
             incoming: List[AnyMessage]) -> Tuple[PregelStepResult,
                                                  List[Tuple[int, List[AnyMessage]]]]:
        superstep, aggregated, frontier_rows = control
        started = time.perf_counter()
        partition = self.partition
        program = self.program

        bytes_in = sum(m.nbytes() for m in incoming)
        records_in = sum(m.num_records() for m in incoming)
        context = PartitionContext(partition, superstep, aggregated,
                                   self.num_graph_vertices)
        context.frontier_rows = frontier_rows

        any_active = False
        if self.is_block:
            blocks = [m for m in incoming if isinstance(m, MessageBlock)]
            program.compute_partition(context, blocks)
            any_active = True
        else:
            grouped: Dict[int, List[Any]] = {}
            for message in incoming:
                if isinstance(message, VertexMessage):
                    grouped.setdefault(message.dst, []).append(message.value)
                else:  # pragma: no cover - blocks to per-vertex programs
                    for row in range(message.num_records()):
                        grouped.setdefault(int(message.dst_ids[row]), []).append(
                            message.payload[row])
            for vertex_id in partition.node_ids:
                vertex_id = int(vertex_id)
                vertex_messages = grouped.get(vertex_id, [])
                if partition.state.halted.get(vertex_id, False) and not vertex_messages:
                    continue
                partition.state.halted[vertex_id] = False
                any_active = True
                program.compute(VertexContext(vertex_id, context), vertex_messages)

        program_combiner = None
        if self.is_block and hasattr(program, "combiner_for_superstep"):
            program_combiner = program.combiner_for_superstep(superstep)
        combiner = program_combiner if program_combiner is not None else self.engine_combiner
        routed = _route_outgoing(context, self.layout, self.num_workers, combiner)

        bytes_out = sum(m.nbytes() for bucket in routed for m in bucket)
        records_out = sum(m.num_records() for bucket in routed for m in bucket)
        all_halted = True
        if not self.is_block:
            all_halted = all(partition.state.halted.get(int(v), False)
                             for v in partition.node_ids)
        result = PregelStepResult(
            compute_units=context.compute_units,
            bytes_in=bytes_in, records_in=records_in,
            bytes_out=bytes_out, records_out=records_out,
            peak_memory_bytes=context.peak_memory_bytes,
            measured_seconds=time.perf_counter() - started,
            messages_sent=sum(len(bucket) for bucket in routed),
            any_active=any_active,
            all_halted=all_halted,
            aggregator_inputs=context.aggregator_inputs,
        )
        outgoing = [(target, bucket) for target, bucket in enumerate(routed) if bucket]
        return result, outgoing

    def finish(self) -> Optional[Dict[str, Any]]:
        """Ship the final partition state back (process mode only).

        ``out_src_local`` is layout-derived and already known to the parent;
        everything else the program declared live (see
        :attr:`BlockVertexProgram.block_state_return_keys`) — e.g. the
        outputs, plus the per-superstep state cache incremental inference
        splices into — and the per-vertex value/halt dictionaries travel back
        so the engine's partitions end the run holding every state a later
        run (or output collection) will read.
        """
        if not self.ship_final_state:
            return None
        partition = self.partition
        keys = self.return_state_keys
        block_state = {key: value for key, value in partition.block_state.items()
                       if key != "out_src_local"
                       and (keys is None or key in keys)}
        return {
            "block_state": block_state,
            "values": partition.state.values,
            "halted": partition.state.halted,
        }


def _build_serial_harness(slot_id: int, payload: Dict[str, Any]) -> PregelPartitionHarness:
    """Serial-executor factory: wrap the engine's live partition (no copies)."""
    return PregelPartitionHarness(
        partition=payload["partition"],
        program=payload["program"],
        layout=payload["layout"],
        num_workers=payload["num_workers"],
        num_graph_vertices=payload["num_graph_vertices"],
        engine_combiner=payload["combiner"],
        is_block=payload["is_block"],
        ship_final_state=False,
    )


def _build_process_harness(slot_id: int, payload: Dict[str, Any]) -> PregelPartitionHarness:
    """Process-executor factory: rebuild the partition over shared memory.

    Array payloads arrive as :class:`~repro.cluster.executor.SharedArraySpec`
    descriptors; attaching is zero-copy, so the worker reads the same bytes
    the parent wrote (including later in-place feature-delta scatters).  The
    seeded ``block_state`` carries whatever the parent-side partition held
    before the run (e.g. the cached superstep states an incremental run
    splices into).
    """
    layout_payload = payload["layout"]
    # The payload names every segment this run reads; anything else cached in
    # this worker is a superseded mapping (an edge delta re-shared the array)
    # whose pages would otherwise stay allocated for the worker's lifetime.
    prune_attached_segments(
        [spec.name for spec in payload["arrays"].values() if spec is not None]
        + [layout_payload["owner_of"].name, layout_payload["local_of"].name])
    layout = ClusterLayout(
        owner_of=attach_shared_array(layout_payload["owner_of"]),
        local_of=attach_shared_array(layout_payload["local_of"]),
        num_partitions=layout_payload["num_partitions"],
    )
    arrays = {name: None if spec is None else attach_shared_array(spec)
              for name, spec in payload["arrays"].items()}
    base = Partition(
        partition_id=payload["partition_id"],
        node_ids=arrays["node_ids"],
        out_src=arrays["out_src"],
        out_dst=arrays["out_dst"],
        out_edge_features=arrays["out_edge_features"],
        node_features=arrays["node_features"],
        labels=arrays["labels"],
    )
    partition = PregelPartition(base, layout)
    partition.block_state.update(payload["block_state"])
    return PregelPartitionHarness(
        partition=partition,
        program=payload["program"],
        layout=layout,
        num_workers=payload["num_workers"],
        num_graph_vertices=payload["num_graph_vertices"],
        engine_combiner=payload["combiner"],
        is_block=payload["is_block"],
        ship_final_state=True,
        return_state_keys=payload["return_state_keys"],
    )


class PregelEngine:
    """Bulk-synchronous superstep executor over hash-partitioned graphs.

    ``executor`` selects the worker substrate: an
    :class:`~repro.cluster.executor.Executor` instance, a registry name
    (``"serial"`` / ``"process"``), or ``None`` for the environment default
    (``$REPRO_EXECUTOR``, falling back to serial).  The executor and the
    shared-memory segments backing process workers are created lazily on the
    first ``run()`` and reused across runs; :meth:`shutdown` releases both.
    """

    def __init__(
        self,
        graph: Graph,
        num_workers: int,
        combiner: Optional[MessageCombiner] = None,
        aggregators: Optional[Dict[str, Aggregator]] = None,
        metrics: Optional[MetricsCollector] = None,
        partitioner: Optional[HashPartitioner] = None,
        layout: Optional[ClusterLayout] = None,
        executor: Union[Executor, str, None] = None,
    ) -> None:
        self.graph = graph
        self.num_workers = int(num_workers)
        self.partitioner = partitioner or HashPartitioner(self.num_workers)
        partitions, self.layout = partition_graph_with_layout(
            graph, self.partitioner, layout)
        self.partitions = [PregelPartition(p, self.layout) for p in partitions]
        self.combiner = combiner
        self.aggregators = aggregators or {}
        self.metrics = metrics or MetricsCollector()
        if isinstance(executor, Executor):
            self._executor: Optional[Executor] = executor
            self.executor_name: Optional[str] = executor.name
        else:
            self._executor = None
            self.executor_name = executor
        self._shm_pack: Optional[SharedArrayPack] = None

    # ------------------------------------------------------------------ #
    @property
    def executor(self) -> Executor:
        """The lazily built executor this engine routes partitions through."""
        if self._executor is None:
            self._executor = build_executor(self.executor_name, self.num_workers)
            self.executor_name = self._executor.name
        return self._executor

    def shutdown(self) -> None:
        """Release worker processes and shared-memory segments (if any)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self._shm_pack is not None:
            self._shm_pack.close()
            self._shm_pack = None

    # ------------------------------------------------------------------ #
    _PARTITION_ARRAYS = ("node_ids", "node_features", "labels",
                         "out_src", "out_dst", "out_edge_features")

    def _shared_spec(self, key: str, array: Optional[np.ndarray],
                     owner: Any, attr: str):
        """Share ``array`` once and point ``owner.attr`` at the shm view.

        Re-sharing is a no-op while ``owner.attr`` still is the shared view;
        an attribute swapped wholesale since the last run (an edge delta's
        ``replace_out_edges``) gets a fresh segment.  Pointing the live object
        at the view is what makes later *in-place* writes (feature-delta
        scatters) visible to attached workers without re-shipping anything.
        """
        if array is None:
            return None
        pack = self._shm_pack
        if not pack.is_current(key, array):
            pack.share(key, array)
            setattr(owner, attr, pack.array_for(key))
        return pack.spec_for(key)

    def _process_payloads(self, program, is_block: bool) -> List[Dict[str, Any]]:
        # Programs may declare which block_state keys a run actually *reads*
        # (ship) and which it leaves behind for later runs / output collection
        # (return); None means "everything", the safe default for arbitrary
        # programs.  GNNInferenceProgram ships nothing into full runs and only
        # the warm caches into incremental ones — the difference is tens of
        # megabytes per serving tick at benchmark scale.
        ship_keys = getattr(program, "block_state_ship_keys", None)
        return_keys = getattr(program, "block_state_return_keys", None)
        if self._shm_pack is None:
            self._shm_pack = SharedArrayPack()
        layout_payload = {
            "owner_of": self._shared_spec("layout/owner_of", self.layout.owner_of,
                                          self.layout, "owner_of"),
            "local_of": self._shared_spec("layout/local_of", self.layout.local_of,
                                          self.layout, "local_of"),
            "num_partitions": self.layout.num_partitions,
        }
        payloads: List[Dict[str, Any]] = []
        for partition in self.partitions:
            pid = partition.partition_id
            arrays = {
                name: self._shared_spec(f"part{pid}/{name}",
                                        getattr(partition, name), partition, name)
                for name in self._PARTITION_ARRAYS
            }
            payloads.append({
                "partition_id": pid,
                "arrays": arrays,
                "layout": layout_payload,
                "program": program,
                "combiner": self.combiner,
                "is_block": is_block,
                "num_workers": self.num_workers,
                "num_graph_vertices": self.graph.num_nodes,
                "block_state": {key: value
                                for key, value in partition.block_state.items()
                                if key != "out_src_local"
                                and (ship_keys is None or key in ship_keys)},
                "return_state_keys": return_keys,
            })
        return payloads

    def _apply_final_states(self, finals: Sequence[Optional[Dict[str, Any]]]) -> None:
        """Fold worker-side final partition state back into the live partitions."""
        for partition, final in zip(self.partitions, finals):
            if final is None:
                continue
            preserved = partition.block_state.get("out_src_local")
            partition.block_state = dict(final["block_state"])
            if preserved is not None:
                partition.block_state["out_src_local"] = preserved
            partition.state.values = final["values"]
            partition.state.halted = final["halted"]

    # ------------------------------------------------------------------ #
    def run(self, program: Union[VertexProgram, BlockVertexProgram],
            max_supersteps: int = 30,
            frontier: Optional[Sequence[Dict[int, np.ndarray]]] = None) -> PregelResult:
        """Execute ``program`` until it halts or ``max_supersteps`` is reached.

        ``frontier`` restricts supersteps to a dirty-vertex schedule:
        ``frontier[s]`` maps a partition id to the local row indices whose
        state superstep ``s`` may recompute (missing partitions are idle that
        superstep).  The engine only delivers the schedule through
        ``context.frontier_rows``; the block program decides how to exploit it
        — this is how incremental inference reruns just the k-hop region a
        :class:`~repro.inference.delta.GraphDelta` can reach.

        All per-partition compute — the program itself, message routing,
        combining, accounting — runs through the engine's executor; the loop
        here only owns the bulk-synchronous structure (superstep barriers,
        aggregator reduction, termination) and the metrics roll-up.
        """
        is_block = isinstance(program, BlockVertexProgram)
        if frontier is not None and not is_block:
            raise ValueError("frontier schedules require a block program")
        if is_block:
            max_supersteps = program.max_supersteps()

        executor = self.executor
        if executor.is_in_process:
            factory = _build_serial_harness
            payloads = [{
                "partition": partition,
                "program": program,
                "layout": self.layout,
                "combiner": self.combiner,
                "is_block": is_block,
                "num_workers": self.num_workers,
                "num_graph_vertices": self.graph.num_nodes,
            } for partition in self.partitions]
        else:
            factory = _build_process_harness
            payloads = self._process_payloads(program, is_block)

        executor.open(factory, payloads)
        aggregated: Dict[str, Any] = {name: agg.identity()
                                      for name, agg in self.aggregators.items()}
        superstep = 0
        finals: Optional[List[Any]] = None
        try:
            while superstep < max_supersteps:
                phase = f"superstep_{superstep}"
                controls = []
                for partition in self.partitions:
                    rows = None
                    if frontier is not None and superstep < len(frontier):
                        rows = frontier[superstep].get(partition.partition_id,
                                                       np.empty(0, dtype=np.int64))
                    controls.append((superstep, aggregated, rows))
                results = executor.step(controls)

                messages_sent = 0
                any_active = False
                aggregator_contribs: Dict[str, List[Any]] = {name: []
                                                             for name in self.aggregators}
                for slot, result in enumerate(results):
                    # One record call per partition per superstep: compute, in-
                    # and out-volumes land in a single InstanceMetrics entry.
                    self.metrics.record(
                        phase, slot,
                        compute_units=result.compute_units,
                        bytes_in=result.bytes_in, records_in=result.records_in,
                        bytes_out=result.bytes_out, records_out=result.records_out,
                        peak_memory_bytes=result.peak_memory_bytes,
                        measured_seconds=result.measured_seconds,
                    )
                    messages_sent += result.messages_sent
                    any_active = any_active or result.any_active
                    for name, values in result.aggregator_inputs.items():
                        if name in aggregator_contribs:
                            aggregator_contribs[name].extend(values)

                for name, aggregator in self.aggregators.items():
                    contributions = aggregator_contribs[name]
                    aggregated[name] = (aggregator.reduce(contributions)
                                        if contributions else aggregator.identity())

                superstep += 1
                if not is_block and messages_sent == 0:
                    if not any_active:
                        break
                    if all(result.all_halted for result in results):
                        break
            finals = executor.close()
        finally:
            if finals is None:
                # The run failed mid-flight; tear the harness session down so
                # the executor can serve the next run, without masking the
                # original exception.
                try:
                    executor.close()
                except Exception:
                    # Best effort by design: the close may fail on the same
                    # broken worker that failed the run; the original
                    # exception propagating out of the try is the one that
                    # matters.
                    pass
        self._apply_final_states(finals)

        vertex_values: Dict[int, Any] = {}
        if not is_block:
            for partition in self.partitions:
                vertex_values.update(partition.state.values)
        return PregelResult(
            num_supersteps=superstep,
            vertex_values=vertex_values,
            partitions=self.partitions,
            metrics=self.metrics,
            aggregated=aggregated,
        )
