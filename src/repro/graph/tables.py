"""Node/edge table format — the "data warehouse" view of a graph.

The paper's MapReduce backend (Section IV-C2) takes two tables from the data
warehouse as input:

* a **node table** with ``node id, node features, ids of all out-edge
  neighbours``;
* an **edge table** with ``source node id, destination node id, edge
  features``.

These classes reproduce that contract and the conversions to and from the
in-memory :class:`~repro.graph.graph.Graph` used by the training phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph


@dataclass
class NodeTable:
    """Columnar node table: id, features, out-neighbour adjacency lists."""

    node_ids: np.ndarray                 # [N] int64
    features: Optional[np.ndarray]       # [N, F] float64 or None
    out_neighbors: List[np.ndarray]      # length N, each [deg_out] int64
    labels: Optional[np.ndarray] = None  # [N] or [N, C] or None

    def __post_init__(self) -> None:
        self.node_ids = np.asarray(self.node_ids, dtype=np.int64)
        if self.features is not None:
            self.features = np.asarray(self.features, dtype=np.float64)
            if self.features.shape[0] != self.node_ids.shape[0]:
                raise ValueError("features rows must match node_ids length")
        if len(self.out_neighbors) != self.node_ids.shape[0]:
            raise ValueError("out_neighbors must have one entry per node")

    def __len__(self) -> int:
        return int(self.node_ids.shape[0])

    def num_out_edges(self) -> int:
        return int(sum(len(nbrs) for nbrs in self.out_neighbors))

    def row(self, position: int) -> Tuple[int, Optional[np.ndarray], np.ndarray]:
        """Return (node_id, feature vector, out-neighbour ids) for a row."""
        feature = None if self.features is None else self.features[position]
        return int(self.node_ids[position]), feature, self.out_neighbors[position]


@dataclass
class EdgeTable:
    """Columnar edge table: src, dst, optional edge features."""

    src: np.ndarray                       # [E] int64
    dst: np.ndarray                       # [E] int64
    features: Optional[np.ndarray] = None  # [E, Fe] float64 or None

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        if self.src.shape != self.dst.shape:
            raise ValueError("src and dst must have the same length")
        if self.features is not None:
            self.features = np.asarray(self.features, dtype=np.float64)
            if self.features.shape[0] != self.src.shape[0]:
                raise ValueError("features rows must match edge count")

    def __len__(self) -> int:
        return int(self.src.shape[0])


def graph_to_tables(graph: Graph) -> Tuple[NodeTable, EdgeTable]:
    """Export an in-memory graph to the warehouse table format."""
    out_neighbors = [graph.out_neighbors(node).copy() for node in range(graph.num_nodes)]
    node_table = NodeTable(
        node_ids=np.arange(graph.num_nodes, dtype=np.int64),
        features=graph.node_features,
        out_neighbors=out_neighbors,
        labels=graph.labels,
    )
    edge_table = EdgeTable(src=graph.src.copy(), dst=graph.dst.copy(),
                           features=graph.edge_features)
    return node_table, edge_table


def tables_to_graph(node_table: NodeTable, edge_table: EdgeTable) -> Graph:
    """Rebuild an in-memory graph from warehouse tables.

    Node ids are assumed to be dense [0, N); the edge table is the source of
    truth for edges (the adjacency lists in the node table are redundant with
    it and are validated for consistency in tests, not here).
    """
    return Graph(
        src=edge_table.src,
        dst=edge_table.dst,
        node_features=node_table.features,
        edge_features=edge_table.features,
        labels=node_table.labels,
        num_nodes=len(node_table),
    )
