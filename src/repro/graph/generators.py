"""Synthetic graph generators.

The experiments need graphs whose *shape* matches the paper's datasets:

* labelled attributed graphs with community structure (stand-ins for PPI,
  OGB-Products and MAG240M, where what matters is that a trained GNN reaches a
  stable accuracy and that both inference pipelines agree);
* power-law graphs with controllable skew on **in**-degree or **out**-degree
  (the Power-Law dataset used for scalability and the hub-node strategy
  analysis, Figs. 8–13).

All generators are seeded and deterministic.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.graph import Graph


def _community_features(labels: np.ndarray, feature_dim: int, num_classes: int,
                        noise: float, rng: np.random.Generator) -> np.ndarray:
    """Features = class centroid + Gaussian noise (learnable but not trivial)."""
    centroids = rng.normal(0.0, 1.0, size=(num_classes, feature_dim))
    features = centroids[labels] + rng.normal(0.0, noise, size=(labels.size, feature_dim))
    return features


def labeled_community_graph(
    num_nodes: int,
    num_classes: int,
    feature_dim: int,
    avg_degree: float = 10.0,
    homophily: float = 0.8,
    noise: float = 1.0,
    edge_feature_dim: int = 0,
    multilabel: bool = False,
    seed: int = 0,
) -> Graph:
    """Directed stochastic-block-style graph with class-correlated features.

    Nodes are assigned to ``num_classes`` communities; each node draws
    ``Poisson(avg_degree)`` out-edges, each of which lands inside the node's own
    community with probability ``homophily`` and in a random other community
    otherwise.  Features are noisy class centroids, so a 2-layer GNN can reach
    non-trivial accuracy, which is all Table II needs.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=num_nodes)

    degrees = rng.poisson(avg_degree, size=num_nodes)
    degrees = np.maximum(degrees, 1)
    src_list = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)

    # Destination selection: same community w.p. homophily, else random.
    nodes_by_class = [np.nonzero(labels == c)[0] for c in range(num_classes)]
    same_mask = rng.random(src_list.size) < homophily
    dst_list = np.empty(src_list.size, dtype=np.int64)
    random_targets = rng.integers(0, num_nodes, size=src_list.size)
    dst_list[~same_mask] = random_targets[~same_mask]
    same_positions = np.nonzero(same_mask)[0]
    for position in same_positions:
        community = nodes_by_class[labels[src_list[position]]]
        dst_list[position] = community[rng.integers(0, community.size)]

    # Drop self loops produced by chance.
    keep = src_list != dst_list
    src_list, dst_list = src_list[keep], dst_list[keep]

    features = _community_features(labels, feature_dim, num_classes, noise, rng)
    edge_features = None
    if edge_feature_dim > 0:
        edge_features = rng.normal(0.0, 1.0, size=(src_list.size, edge_feature_dim))

    final_labels: np.ndarray
    if multilabel:
        onehot = np.zeros((num_nodes, num_classes), dtype=np.float64)
        onehot[np.arange(num_nodes), labels] = 1.0
        # Secondary labels: each node also gets ~2 extra correlated labels.
        extra = rng.random((num_nodes, num_classes)) < (2.0 / num_classes)
        final_labels = np.clip(onehot + extra, 0.0, 1.0)
    else:
        final_labels = labels

    return Graph(src_list, dst_list, node_features=features,
                 edge_features=edge_features, labels=final_labels,
                 num_nodes=num_nodes)


def _powerlaw_degrees(num_nodes: int, exponent: float, min_degree: int,
                      max_degree: int, rng: np.random.Generator) -> np.ndarray:
    """Sample integer degrees from a bounded discrete power law."""
    uniform = rng.random(num_nodes)
    # Inverse-CDF sampling of p(d) ∝ d^-exponent on [min_degree, max_degree].
    low = float(min_degree) ** (1.0 - exponent)
    high = float(max_degree) ** (1.0 - exponent)
    degrees = (low + uniform * (high - low)) ** (1.0 / (1.0 - exponent))
    return np.clip(degrees.astype(np.int64), min_degree, max_degree)


def powerlaw_graph(
    num_nodes: int,
    avg_degree: float = 10.0,
    exponent: float = 2.1,
    skew: str = "out",
    max_degree: Optional[int] = None,
    feature_dim: int = 8,
    num_classes: int = 2,
    seed: int = 0,
) -> Graph:
    """Directed graph with power-law skew on in- or out-degree.

    Parameters
    ----------
    skew:
        ``"out"`` makes out-degree power-law distributed (large out-degree hubs,
        the broadcast / shadow-nodes regime); ``"in"`` makes in-degree
        power-law distributed (large in-degree hubs, the partial-gather
        regime); ``"both"`` applies the power law to both endpoints by
        preferential attachment on each side.
    """
    if skew not in {"in", "out", "both"}:
        raise ValueError("skew must be one of 'in', 'out', 'both'")
    rng = np.random.default_rng(seed)
    max_degree = max_degree or max(int(num_nodes * 0.2), 16)

    degrees = _powerlaw_degrees(num_nodes, exponent, 1, max_degree, rng)
    # Rescale to the requested average degree while preserving the shape.
    scale = (avg_degree * num_nodes) / max(degrees.sum(), 1)
    degrees = np.maximum((degrees * scale).astype(np.int64), 1)

    if skew == "out":
        src = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
        dst = rng.integers(0, num_nodes, size=src.size)
    elif skew == "in":
        dst = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
        src = rng.integers(0, num_nodes, size=dst.size)
    else:
        out_deg = degrees
        in_weights = _powerlaw_degrees(num_nodes, exponent, 1, max_degree, rng).astype(np.float64)
        in_weights /= in_weights.sum()
        src = np.repeat(np.arange(num_nodes, dtype=np.int64), out_deg)
        dst = rng.choice(num_nodes, size=src.size, p=in_weights)

    keep = src != dst
    src, dst = src[keep], dst[keep]

    labels = rng.integers(0, num_classes, size=num_nodes)
    features = _community_features(labels, feature_dim, num_classes, 1.5, rng)
    return Graph(src, dst, node_features=features, labels=labels, num_nodes=num_nodes)


def erdos_renyi_graph(num_nodes: int, avg_degree: float = 4.0, feature_dim: int = 4,
                      num_classes: int = 2, seed: int = 0) -> Graph:
    """Uniform-random directed graph (no skew) — a control case in tests."""
    rng = np.random.default_rng(seed)
    num_edges = int(num_nodes * avg_degree)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    labels = rng.integers(0, num_classes, size=num_nodes)
    features = _community_features(labels, feature_dim, num_classes, 1.0, rng)
    return Graph(src, dst, node_features=features, labels=labels, num_nodes=num_nodes)


def star_graph(num_leaves: int, direction: str = "in", feature_dim: int = 4,
               seed: int = 0) -> Graph:
    """A hub node connected to ``num_leaves`` leaves — the extreme skew case.

    ``direction="in"`` points every edge leaf → hub (hub has huge in-degree);
    ``direction="out"`` points hub → leaf (hub has huge out-degree).  Used by
    the strategy unit tests as the worst-case input.
    """
    rng = np.random.default_rng(seed)
    num_nodes = num_leaves + 1
    leaves = np.arange(1, num_nodes, dtype=np.int64)
    hub = np.zeros(num_leaves, dtype=np.int64)
    if direction == "in":
        src, dst = leaves, hub
    elif direction == "out":
        src, dst = hub, leaves
    else:
        raise ValueError("direction must be 'in' or 'out'")
    features = rng.normal(0.0, 1.0, size=(num_nodes, feature_dim))
    labels = np.zeros(num_nodes, dtype=np.int64)
    return Graph(src, dst, node_features=features, labels=labels, num_nodes=num_nodes)
