"""K-hop neighbourhood extraction.

The paper's Section II-A defines the k-hop neighbourhood of node v as the
induced attributed subgraph over all nodes within (shortest-path) distance k
of v, which provides *sufficient and necessary* information for a k-layer GNN
on v.  Training and the traditional inference baseline both operate on these
subgraphs; the InferTurbo inference path never materialises them (that is the
whole point), but uses this module in tests to validate numerical equivalence.

Neighbours here mean *in-neighbours*: information flows along edge direction
(src → dst), so the receptive field of v is the set of nodes that can reach v
within k hops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.graph.sampling import FullNeighborSampler, NeighborSampler


@dataclass
class KHopSubgraph:
    """A batch of k-hop neighbourhoods merged into one local subgraph.

    Attributes
    ----------
    node_ids:
        Global ids of the nodes in the subgraph; targets come first.
    src, dst:
        Local COO edge index of the subgraph.
    edge_ids:
        Global edge ids for the kept edges (-1 for sampled duplicates that do
        not correspond to a unique global edge — not produced by the current
        samplers, reserved for with-replacement sampling).
    target_positions:
        Local positions of the target (seed) nodes, in seed order.
    node_features / edge_features / labels:
        Sliced attribute arrays (None if absent on the parent graph).
    """

    node_ids: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    edge_ids: np.ndarray
    target_positions: np.ndarray
    node_features: Optional[np.ndarray]
    edge_features: Optional[np.ndarray]
    labels: Optional[np.ndarray]

    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.size)

    @property
    def num_edges(self) -> int:
        return int(self.src.size)


def khop_neighborhood(
    graph: Graph,
    targets: Sequence[int],
    num_hops: int,
    sampler: Optional[NeighborSampler] = None,
    rng: Optional[np.random.Generator] = None,
) -> KHopSubgraph:
    """Extract the (possibly sampled) k-hop in-neighbourhood of ``targets``.

    The extraction proceeds top-down as in the paper: starting from the seed
    nodes, each hop expands the frontier through in-edges, optionally sampling
    a fixed number of in-neighbours per node.  The induced edge set contains,
    for each expanded node, the (sampled) in-edges used to expand it — which is
    exactly the compute graph a k-layer GNN needs for the seeds.
    """
    sampler = sampler or FullNeighborSampler()
    rng = rng or np.random.default_rng()
    targets = np.asarray(list(targets), dtype=np.int64)

    visited: dict[int, int] = {}
    node_order: List[int] = []
    for node in targets:
        node = int(node)
        if node not in visited:
            visited[node] = len(node_order)
            node_order.append(node)

    edge_src: List[int] = []
    edge_dst: List[int] = []
    edge_ids: List[int] = []

    frontier = list(dict.fromkeys(int(t) for t in targets))
    for _hop in range(num_hops):
        next_frontier: List[int] = []
        for node in frontier:
            in_edge_ids = graph.in_edge_ids(node)
            chosen = sampler.sample(in_edge_ids, rng)
            for edge_id in chosen:
                edge_id = int(edge_id)
                neighbor = int(graph.src[edge_id])
                if neighbor not in visited:
                    visited[neighbor] = len(node_order)
                    node_order.append(neighbor)
                    next_frontier.append(neighbor)
                edge_src.append(neighbor)
                edge_dst.append(node)
                edge_ids.append(edge_id)
        frontier = next_frontier
        if not frontier:
            break

    node_ids = np.asarray(node_order, dtype=np.int64)
    lookup = {node: position for position, node in enumerate(node_order)}
    local_src = np.asarray([lookup[s] for s in edge_src], dtype=np.int64)
    local_dst = np.asarray([lookup[d] for d in edge_dst], dtype=np.int64)
    edge_ids_arr = np.asarray(edge_ids, dtype=np.int64)
    target_positions = np.asarray([lookup[int(t)] for t in targets], dtype=np.int64)

    return KHopSubgraph(
        node_ids=node_ids,
        src=local_src,
        dst=local_dst,
        edge_ids=edge_ids_arr,
        target_positions=target_positions,
        node_features=None if graph.node_features is None else graph.node_features[node_ids],
        edge_features=None if graph.edge_features is None or edge_ids_arr.size == 0
        else graph.edge_features[edge_ids_arr],
        labels=None if graph.labels is None else graph.labels[node_ids],
    )


def receptive_field_sizes(graph: Graph, targets: Sequence[int], num_hops: int) -> np.ndarray:
    """Number of nodes in the full k-hop neighbourhood of each target.

    Used by the redundancy analysis (Table IV): the sum over targets of these
    sizes, divided by the number of distinct nodes touched, is the redundant
    computation factor of the traditional pipeline.
    """
    sizes = np.zeros(len(targets), dtype=np.int64)
    for position, target in enumerate(targets):
        subgraph = khop_neighborhood(graph, [int(target)], num_hops)
        sizes[position] = subgraph.num_nodes
    return sizes
