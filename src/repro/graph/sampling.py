"""Neighbour sampling strategies.

K-hop sampling selects, per expanded node and per hop, a subset of in-edges.
The traditional pipeline uses :class:`UniformNeighborSampler` (the "randomly
choose a fixed number of neighbours" strategy the paper describes); InferTurbo
never samples — its full-graph path corresponds to :class:`FullNeighborSampler`
— which is what guarantees prediction consistency across runs (Fig. 7).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class NeighborSampler:
    """Strategy interface: choose which in-edge ids to keep for one node."""

    def sample(self, edge_ids: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    @property
    def is_stochastic(self) -> bool:
        """Whether repeated runs may return different edge subsets."""
        raise NotImplementedError


class FullNeighborSampler(NeighborSampler):
    """Keep every in-edge (no sampling) — deterministic."""

    def sample(self, edge_ids: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return edge_ids

    @property
    def is_stochastic(self) -> bool:
        return False


class UniformNeighborSampler(NeighborSampler):
    """Uniformly sample at most ``fanout`` in-edges without replacement.

    This is the stochastic acceleration strategy whose inference-time
    inconsistency the paper measures in Fig. 7 (fanout 10/50/100/1000).
    """

    def __init__(self, fanout: int) -> None:
        if fanout <= 0:
            raise ValueError("fanout must be positive")
        self.fanout = int(fanout)

    def sample(self, edge_ids: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if edge_ids.size <= self.fanout:
            return edge_ids
        return rng.choice(edge_ids, size=self.fanout, replace=False)

    @property
    def is_stochastic(self) -> bool:
        return True


class TopKNeighborSampler(NeighborSampler):
    """Keep the ``fanout`` in-edges with the smallest edge id — deterministic.

    A deterministic truncation baseline used in ablations: it removes the
    randomness of uniform sampling but still drops information, so it trades
    the consistency problem for a bias problem.
    """

    def __init__(self, fanout: int) -> None:
        if fanout <= 0:
            raise ValueError("fanout must be positive")
        self.fanout = int(fanout)

    def sample(self, edge_ids: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if edge_ids.size <= self.fanout:
            return edge_ids
        return np.sort(edge_ids)[: self.fanout]

    @property
    def is_stochastic(self) -> bool:
        return False
