"""Graph substrate: attributed directed graphs, tables, partitioning, sampling.

This package owns the representation of the input graph at three granularities:

* :class:`~repro.graph.graph.Graph` — an in-memory attributed directed graph in
  COO form with cached CSR/CSC indices, used for training and by the Pregel
  backend's partition loader.
* :class:`~repro.graph.tables.NodeTable` / :class:`~repro.graph.tables.EdgeTable`
  — the "data warehouse" table format (node id, features, out-neighbour ids /
  src, dst, edge features) consumed by the MapReduce backend, mirroring the
  paper's Section IV-C2 input format.
* partitioning, k-hop neighbourhood extraction and neighbour sampling — the
  machinery behind both the mini-batch training phase and the traditional
  (PyG/DGL-style) inference baseline.
"""

from repro.graph.graph import Graph
from repro.graph.tables import NodeTable, EdgeTable, graph_to_tables, tables_to_graph
from repro.graph.partition import (
    HashPartitioner,
    Partition,
    partition_graph,
    partition_graph_with_layout,
)
from repro.graph.khop import khop_neighborhood, KHopSubgraph
from repro.graph.sampling import UniformNeighborSampler, FullNeighborSampler
from repro.graph import generators
from repro.graph import io

__all__ = [
    "Graph",
    "NodeTable",
    "EdgeTable",
    "graph_to_tables",
    "tables_to_graph",
    "HashPartitioner",
    "Partition",
    "partition_graph",
    "partition_graph_with_layout",
    "khop_neighborhood",
    "KHopSubgraph",
    "UniformNeighborSampler",
    "FullNeighborSampler",
    "generators",
    "io",
]
