"""Graph partitioning for the distributed backends.

Following Pregel (and the paper's Section IV-C1), the graph is divided into
partitions by a hash of the node id (``mod N`` by default); each partition
holds a set of nodes **and all out-edges of those nodes**, plus node state and
out-edge state, so that one superstep per GNN layer suffices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.layout import ClusterLayout, stable_group_by
from repro.graph.graph import Graph


class HashPartitioner:
    """Assign nodes to ``num_partitions`` workers by ``node_id mod N``.

    A custom hash function can be supplied (e.g. to reproduce skewed
    placements); it must be deterministic so that senders and receivers agree
    on node placement without coordination.
    """

    def __init__(self, num_partitions: int,
                 hash_fn: Optional[Callable[[int], int]] = None) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = int(num_partitions)
        self._hash_fn = hash_fn

    def assign(self, node_id: int) -> int:
        """Partition index owning ``node_id``."""
        if self._hash_fn is not None:
            return int(self._hash_fn(int(node_id))) % self.num_partitions
        return int(node_id) % self.num_partitions

    def assign_many(self, node_ids: np.ndarray) -> np.ndarray:
        """Vectorised assignment for an array of node ids."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if self._hash_fn is not None:
            # The hash itself is an arbitrary Python callable, so it runs once
            # per id — but through a single fromiter pass (no per-id method
            # dispatch).  The modulo must fold inside the pass: hash values
            # may exceed int64 (e.g. md5-based placements).
            num_partitions = self.num_partitions
            hash_fn = self._hash_fn
            return np.fromiter((int(hash_fn(n)) % num_partitions
                                for n in node_ids.tolist()),
                               dtype=np.int64, count=node_ids.size)
        return node_ids % self.num_partitions

    def build_layout(self, num_nodes: int) -> ClusterLayout:
        """Precompute the dense routing tables for ``num_nodes`` global ids."""
        return ClusterLayout.build(num_nodes, self)


@dataclass
class Partition:
    """One worker's slice of the graph: owned nodes and their out-edges."""

    partition_id: int
    node_ids: np.ndarray                  # global ids of owned nodes
    out_src: np.ndarray                   # global src of owned out-edges (all in node_ids)
    out_dst: np.ndarray                   # global dst of owned out-edges
    out_edge_features: Optional[np.ndarray] = None
    node_features: Optional[np.ndarray] = None
    labels: Optional[np.ndarray] = None

    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.size)

    @property
    def num_out_edges(self) -> int:
        return int(self.out_src.size)


def partition_graph(graph: Graph, partitioner: HashPartitioner,
                    layout: Optional[ClusterLayout] = None) -> List[Partition]:
    """Split ``graph`` into per-worker partitions (nodes + their out-edges).

    A precomputed :class:`~repro.cluster.layout.ClusterLayout` may be supplied
    to skip the assignment pass (a session caches one per prepared plan); it
    must cover exactly this graph under exactly this partitioner.
    """
    partitions, _ = partition_graph_with_layout(graph, partitioner, layout)
    return partitions


def partition_graph_with_layout(
        graph: Graph, partitioner: HashPartitioner,
        layout: Optional[ClusterLayout] = None) -> Tuple[List[Partition], ClusterLayout]:
    """Like :func:`partition_graph`, but also return the routing layout.

    The layout's dense owner/local tables are what the execution engines use
    to translate message destinations in bulk; computing them here (one
    assignment pass + one stable argsort) replaces the per-partition
    ``nonzero`` scans the old implementation performed.
    """
    if layout is None:
        layout = ClusterLayout.build(graph.num_nodes, partitioner)
    elif (layout.num_nodes != graph.num_nodes
          or layout.num_partitions != partitioner.num_partitions):
        raise ValueError(
            f"layout covers {layout.num_nodes} nodes / {layout.num_partitions} "
            f"partitions but the graph has {graph.num_nodes} nodes and the "
            f"partitioner {partitioner.num_partitions} partitions")

    # Group owned out-edges per partition in one argsort pass; within each
    # partition edge ids stay ascending (stable sort), matching the old
    # per-partition nonzero scans bit for bit.
    edge_owner = layout.owners(graph.src)
    edge_order, edge_counts, edge_starts = stable_group_by(
        edge_owner, partitioner.num_partitions)

    partitions: List[Partition] = []
    for pid in range(partitioner.num_partitions):
        node_ids = layout.nodes_of(pid)
        start = int(edge_starts[pid])
        edge_ids = edge_order[start:start + int(edge_counts[pid])]
        partitions.append(Partition(
            partition_id=pid,
            node_ids=node_ids,
            out_src=graph.src[edge_ids],
            out_dst=graph.dst[edge_ids],
            out_edge_features=None if graph.edge_features is None else graph.edge_features[edge_ids],
            node_features=None if graph.node_features is None else graph.node_features[node_ids],
            labels=None if graph.labels is None else graph.labels[node_ids],
        ))
    return partitions, layout


def partition_balance(partitions: List[Partition]) -> Dict[str, float]:
    """Load-balance statistics over a partitioning (used in skew analysis)."""
    node_counts = np.array([p.num_nodes for p in partitions], dtype=np.float64)
    edge_counts = np.array([p.num_out_edges for p in partitions], dtype=np.float64)
    def _stats(values: np.ndarray) -> Dict[str, float]:
        if values.size == 0:
            return {"mean": 0.0, "max": 0.0, "std": 0.0}
        return {"mean": float(values.mean()), "max": float(values.max()),
                "std": float(values.std())}
    return {
        "nodes_" + key: value for key, value in _stats(node_counts).items()
    } | {
        "edges_" + key: value for key, value in _stats(edge_counts).items()
    }
