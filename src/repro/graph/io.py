"""Graph serialisation: save/load graphs and warehouse tables as ``.npz`` files.

The paper's pipeline reads node/edge tables from a data warehouse; this module
provides the file-based equivalent so trained-model signatures and graphs can
be shipped between the training and inference steps (and so experiments can
cache generated graphs).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.graph.tables import EdgeTable, NodeTable, graph_to_tables, tables_to_graph


def save_graph(graph: Graph, path: str) -> None:
    """Save a graph to a single ``.npz`` file (features/labels included)."""
    payload = {
        "src": graph.src,
        "dst": graph.dst,
        "num_nodes": np.asarray([graph.num_nodes], dtype=np.int64),
    }
    if graph.node_features is not None:
        payload["node_features"] = graph.node_features
    if graph.edge_features is not None:
        payload["edge_features"] = graph.edge_features
    if graph.labels is not None:
        payload["labels"] = graph.labels
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(path, **payload)


def load_graph(path: str) -> Graph:
    """Load a graph previously written by :func:`save_graph`."""
    archive = np.load(path if path.endswith(".npz") else path + ".npz")
    return Graph(
        src=archive["src"],
        dst=archive["dst"],
        node_features=archive["node_features"] if "node_features" in archive else None,
        edge_features=archive["edge_features"] if "edge_features" in archive else None,
        labels=archive["labels"] if "labels" in archive else None,
        num_nodes=int(archive["num_nodes"][0]),
    )


def save_tables(node_table: NodeTable, edge_table: EdgeTable, directory: str) -> None:
    """Save warehouse tables (node table + edge table) under a directory."""
    os.makedirs(directory, exist_ok=True)
    # Adjacency lists are ragged: store them flattened with an index pointer.
    lengths = np.asarray([len(nbrs) for nbrs in node_table.out_neighbors], dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(lengths)])
    flat_neighbors = (np.concatenate(node_table.out_neighbors)
                      if lengths.sum() else np.empty(0, dtype=np.int64))
    node_payload = {
        "node_ids": node_table.node_ids,
        "indptr": indptr,
        "flat_neighbors": flat_neighbors,
    }
    if node_table.features is not None:
        node_payload["features"] = node_table.features
    if node_table.labels is not None:
        node_payload["labels"] = node_table.labels
    np.savez_compressed(os.path.join(directory, "node_table.npz"), **node_payload)

    edge_payload = {"src": edge_table.src, "dst": edge_table.dst}
    if edge_table.features is not None:
        edge_payload["features"] = edge_table.features
    np.savez_compressed(os.path.join(directory, "edge_table.npz"), **edge_payload)


def load_tables(directory: str) -> Tuple[NodeTable, EdgeTable]:
    """Load warehouse tables previously written by :func:`save_tables`."""
    node_archive = np.load(os.path.join(directory, "node_table.npz"))
    indptr = node_archive["indptr"]
    flat = node_archive["flat_neighbors"]
    out_neighbors = [flat[indptr[i]:indptr[i + 1]] for i in range(len(indptr) - 1)]
    node_table = NodeTable(
        node_ids=node_archive["node_ids"],
        features=node_archive["features"] if "features" in node_archive else None,
        out_neighbors=out_neighbors,
        labels=node_archive["labels"] if "labels" in node_archive else None,
    )
    edge_archive = np.load(os.path.join(directory, "edge_table.npz"))
    edge_table = EdgeTable(
        src=edge_archive["src"],
        dst=edge_archive["dst"],
        features=edge_archive["features"] if "features" in edge_archive else None,
    )
    return node_table, edge_table


def export_graph_as_tables(graph: Graph, directory: str) -> None:
    """Convenience: convert a graph to tables and save both under ``directory``."""
    node_table, edge_table = graph_to_tables(graph)
    save_tables(node_table, edge_table, directory)


def import_graph_from_tables(directory: str) -> Graph:
    """Convenience: load tables from ``directory`` and rebuild the graph."""
    node_table, edge_table = load_tables(directory)
    return tables_to_graph(node_table, edge_table)
