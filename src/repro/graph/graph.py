"""In-memory attributed directed graph.

The graph follows the paper's definition G = {V, E, X, E_feat}: a directed,
weighted, attributed graph with node features ``X`` and optional edge features.
Edges are stored in COO form (``src``, ``dst``); CSR (grouped by source, i.e.
out-edges) and CSC (grouped by destination, i.e. in-edges) index structures
are built lazily and cached because both the trainer (in-edge gathers) and the
partitioners (out-edge ownership) need them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cluster.layout import csr_gather


@dataclass
class _AdjacencyIndex:
    """CSR-style index: ``indptr[v]:indptr[v+1]`` slices ``edge_ids`` for node v."""

    indptr: np.ndarray
    edge_ids: np.ndarray
    neighbor_ids: np.ndarray


class Graph:
    """Directed attributed graph in COO format with cached adjacency indices.

    Parameters
    ----------
    src, dst:
        Integer arrays of shape [E]; edge i points from ``src[i]`` to ``dst[i]``.
        Messages flow along edge direction (src → dst), so ``dst`` gathers from
        its in-edges exactly as in the paper's message-passing formulation.
    node_features:
        Float array [N, F] (optional — some topologies are feature-less).
    edge_features:
        Float array [E, Fe] or None.
    labels:
        Integer array [N] (single-label) or float array [N, C] (multi-label),
        or None for unlabeled graphs.
    num_nodes:
        Number of nodes; inferred from indices / features when omitted.
    """

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        node_features: Optional[np.ndarray] = None,
        edge_features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        num_nodes: Optional[int] = None,
    ) -> None:
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        if self.src.shape != self.dst.shape:
            raise ValueError("src and dst must have the same length")
        if self.src.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays")

        inferred = 0
        if self.src.size:
            inferred = int(max(self.src.max(), self.dst.max())) + 1
        if node_features is not None:
            inferred = max(inferred, np.asarray(node_features).shape[0])
        if labels is not None:
            inferred = max(inferred, np.asarray(labels).shape[0])
        self.num_nodes = int(num_nodes) if num_nodes is not None else inferred
        if self.src.size and int(max(self.src.max(), self.dst.max())) >= self.num_nodes:
            raise ValueError("edge endpoints exceed num_nodes")

        self.node_features = None if node_features is None else np.asarray(node_features, dtype=np.float64)
        self.edge_features = None if edge_features is None else np.asarray(edge_features, dtype=np.float64)
        if self.node_features is not None and self.node_features.shape[0] != self.num_nodes:
            raise ValueError("node_features first dimension must equal num_nodes")
        if self.edge_features is not None and self.edge_features.shape[0] != self.num_edges:
            raise ValueError("edge_features first dimension must equal num_edges")
        self.labels = None if labels is None else np.asarray(labels)

        self._out_index: Optional[_AdjacencyIndex] = None
        self._in_index: Optional[_AdjacencyIndex] = None

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    @property
    def feature_dim(self) -> int:
        return 0 if self.node_features is None else int(self.node_features.shape[1])

    @property
    def edge_feature_dim(self) -> int:
        return 0 if self.edge_features is None else int(self.edge_features.shape[1])

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node."""
        degrees = np.zeros(self.num_nodes, dtype=np.int64)
        np.add.at(degrees, self.dst, 1)
        return degrees

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node."""
        degrees = np.zeros(self.num_nodes, dtype=np.int64)
        np.add.at(degrees, self.src, 1)
        return degrees

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
                f"feature_dim={self.feature_dim})")

    # ------------------------------------------------------------------ #
    # adjacency indices
    # ------------------------------------------------------------------ #
    @staticmethod
    def _build_index(keys: np.ndarray, values: np.ndarray, num_nodes: int) -> _AdjacencyIndex:
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        counts = np.bincount(sorted_keys, minlength=num_nodes)
        indptr[1:] = np.cumsum(counts)
        return _AdjacencyIndex(indptr=indptr, edge_ids=order, neighbor_ids=values[order])

    def _out(self) -> _AdjacencyIndex:
        if self._out_index is None:
            self._out_index = self._build_index(self.src, self.dst, self.num_nodes)
        return self._out_index

    def _in(self) -> _AdjacencyIndex:
        if self._in_index is None:
            self._in_index = self._build_index(self.dst, self.src, self.num_nodes)
        return self._in_index

    def out_neighbors(self, node: int) -> np.ndarray:
        """Destination ids of the node's out-edges."""
        index = self._out()
        return index.neighbor_ids[index.indptr[node]:index.indptr[node + 1]]

    def in_neighbors(self, node: int) -> np.ndarray:
        """Source ids of the node's in-edges."""
        index = self._in()
        return index.neighbor_ids[index.indptr[node]:index.indptr[node + 1]]

    def out_edge_ids(self, node: int) -> np.ndarray:
        """Edge ids (positions in src/dst) of the node's out-edges."""
        index = self._out()
        return index.edge_ids[index.indptr[node]:index.indptr[node + 1]]

    def out_neighbors_many(self, nodes: np.ndarray) -> np.ndarray:
        """Concatenated out-neighbour ids of every node in ``nodes``.

        One repeat/gather pass over the cached CSR index — the batched walk
        the incremental-inference frontier expansion runs once per hop.
        Duplicates are preserved (callers ``np.unique`` when they need a set).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return np.empty(0, dtype=np.int64)
        index = self._out()
        return csr_gather(index.indptr, index.neighbor_ids, nodes)

    def invalidate_adjacency(self) -> None:
        """Drop the cached CSR/CSC indices after an in-place edge mutation.

        The adjacency indices are derived from ``src``/``dst`` lazily; any code
        that swaps those arrays (e.g. applying a
        :class:`~repro.inference.delta.GraphDelta`) must call this so the next
        neighbour lookup rebuilds them instead of reading stale slices.
        """
        self._out_index = None
        self._in_index = None

    def in_edge_ids(self, node: int) -> np.ndarray:
        """Edge ids (positions in src/dst) of the node's in-edges."""
        index = self._in()
        return index.edge_ids[index.indptr[node]:index.indptr[node + 1]]

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def subgraph(self, node_ids: np.ndarray) -> Tuple["Graph", np.ndarray, np.ndarray]:
        """Induced subgraph over ``node_ids``.

        Returns (subgraph, node_ids, edge_ids) where node/edge ids map local
        indices back to the parent graph.  Features and labels are sliced.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        lookup = np.full(self.num_nodes, -1, dtype=np.int64)
        lookup[node_ids] = np.arange(node_ids.size)
        keep = (lookup[self.src] >= 0) & (lookup[self.dst] >= 0)
        edge_ids = np.nonzero(keep)[0]
        sub_src = lookup[self.src[edge_ids]]
        sub_dst = lookup[self.dst[edge_ids]]
        sub = Graph(
            src=sub_src,
            dst=sub_dst,
            node_features=None if self.node_features is None else self.node_features[node_ids],
            edge_features=None if self.edge_features is None else self.edge_features[edge_ids],
            labels=None if self.labels is None else self.labels[node_ids],
            num_nodes=node_ids.size,
        )
        return sub, node_ids, edge_ids

    def reverse(self) -> "Graph":
        """Graph with all edge directions flipped (features preserved)."""
        return Graph(
            src=self.dst.copy(),
            dst=self.src.copy(),
            node_features=self.node_features,
            edge_features=self.edge_features,
            labels=self.labels,
            num_nodes=self.num_nodes,
        )

    def add_self_loops(self) -> "Graph":
        """Return a graph with a self-loop added to every node.

        Self-loop edge features are zero vectors when edge features exist.
        """
        loop_ids = np.arange(self.num_nodes, dtype=np.int64)
        src = np.concatenate([self.src, loop_ids])
        dst = np.concatenate([self.dst, loop_ids])
        edge_features = None
        if self.edge_features is not None:
            loops = np.zeros((self.num_nodes, self.edge_features.shape[1]))
            edge_features = np.concatenate([self.edge_features, loops], axis=0)
        return Graph(src, dst, self.node_features, edge_features, self.labels, self.num_nodes)

    # ------------------------------------------------------------------ #
    # statistics used by the dataset-summary experiment (Table I)
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, float]:
        """Summary statistics in the shape of the paper's Table I."""
        in_deg = self.in_degrees()
        out_deg = self.out_degrees()
        num_classes = 0
        if self.labels is not None:
            if self.labels.ndim == 1:
                num_classes = int(self.labels.max()) + 1 if self.labels.size else 0
            else:
                num_classes = int(self.labels.shape[1])
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "node_feature_dim": self.feature_dim,
            "edge_feature_dim": self.edge_feature_dim,
            "num_classes": num_classes,
            "max_in_degree": int(in_deg.max()) if in_deg.size else 0,
            "max_out_degree": int(out_deg.max()) if out_deg.size else 0,
            "mean_degree": float(self.num_edges / max(self.num_nodes, 1)),
        }
