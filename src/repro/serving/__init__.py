"""Async serving tier: a concurrent multi-tenant front-end over the pool.

The layers compose bottom-up:

* :class:`~repro.inference.session.InferenceSession` — plan once, infer many
  (thread-safe; measures its own per-infer wall clock);
* :class:`~repro.inference.pool.SessionPool` — one prepared session per graph
  content, weighted eviction + TTLs (thread-safe);
* :class:`ServingGateway` (this package) — an asyncio request front-end that
  batches concurrent infer requests per tick, coalesces deltas into one
  deferred flush, overlaps next-tick delta application with current-tick
  execution on worker threads, and rejects beyond a bounded queue depth with
  :class:`Overloaded`.

Quickstart::

    from repro.inference import InferenceConfig, GatewayConfig, SessionPool
    from repro.serving import ServingGateway

    pool = SessionPool(signature, InferenceConfig(backend="pregel"),
                       capacity=64)
    async with ServingGateway(pool, GatewayConfig(max_queue_depth=32)) as gw:
        gw.register("tenant-a", graph_a)
        result = await gw.infer("tenant-a")
        await gw.submit_delta("tenant-a", delta)       # coalesced
        fresh = await gw.infer("tenant-a", mode="incremental")
        print(gw.snapshot().describe())
"""

from repro.inference.config import GatewayConfig
from repro.serving.admission import AdmissionController, Overloaded
from repro.serving.gateway import ServingGateway
from repro.serving.metrics import (
    GatewaySnapshot,
    LatencyWindow,
    TenantStats,
    merged_percentiles,
)

__all__ = [
    "ServingGateway",
    "GatewayConfig",
    "AdmissionController",
    "Overloaded",
    "GatewaySnapshot",
    "LatencyWindow",
    "TenantStats",
    "merged_percentiles",
]
