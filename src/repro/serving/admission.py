"""Admission control: bounded per-tenant queues with retry-after hints.

A serving front-end that buffers without bound converts overload into memory
exhaustion and unbounded tail latency; the gateway instead *rejects at the
door*.  Each tenant holds at most ``max_queue_depth`` **outstanding** infer
requests — queued plus those executing in the current tick — and one more
raises :class:`Overloaded` immediately, before anything touches the session
pool, so a rejected request provably leaves pool state (entries, counters,
deferred buffers) untouched.

The ``retry_after`` hint is an estimate of when the queue will have drained
enough to admit the caller: ``ticks_to_drain * recent mean tick latency``,
falling back to a configured default before any latency history exists.
"""

from __future__ import annotations

import math

from repro.serving.metrics import LatencyWindow


class Overloaded(Exception):
    """A tenant's request queue is full; retry after ``retry_after`` seconds.

    Raised by the gateway *before* the request is enqueued or any pool state
    is touched.  ``tenant_id`` names the saturated queue; ``queue_depth`` is
    its outstanding-request count (queued plus executing) at rejection time.
    """

    def __init__(self, tenant_id: str, queue_depth: int,
                 retry_after: float) -> None:
        self.tenant_id = tenant_id
        self.queue_depth = queue_depth
        self.retry_after = retry_after
        super().__init__(
            f"tenant {tenant_id!r} is overloaded ({queue_depth} requests "
            f"outstanding); retry after {retry_after:.3f}s")


class AdmissionController:
    """Decides whether one more infer request may join a tenant's queue."""

    def __init__(self, max_queue_depth: int, max_batch: int,
                 default_retry_after_seconds: float) -> None:
        self.max_queue_depth = max_queue_depth
        self.max_batch = max_batch
        self.default_retry_after_seconds = default_retry_after_seconds

    def retry_after(self, queue_depth: int, window: LatencyWindow) -> float:
        """Estimated seconds until the queue admits again.

        The queue drains up to ``max_batch`` requests per tick, each tick
        costing roughly the tenant's recent mean latency; with no history yet
        the configured default stands in.
        """
        mean = window.mean()
        if mean <= 0.0:
            return self.default_retry_after_seconds
        ticks_to_drain = max(1, math.ceil(queue_depth / self.max_batch))
        return max(self.default_retry_after_seconds, ticks_to_drain * mean)

    def admit(self, tenant_id: str, queue_depth: int,
              window: LatencyWindow) -> None:
        """Raise :class:`Overloaded` iff the queue is at capacity."""
        if queue_depth >= self.max_queue_depth:
            raise Overloaded(tenant_id, queue_depth,
                             self.retry_after(queue_depth, window))
