"""Per-tenant and gateway-level serving metrics.

The latency samples flowing in here are
:attr:`~repro.inference.session.InferenceResult.elapsed_seconds` — measured
*inside* ``InferenceSession.infer()`` (deferred-delta flush included), so the
gateway's percentiles, the pool's ``total_infer_seconds`` and a bare
session's :class:`~repro.inference.session.RunReport` all describe the same
clock.  The gateway never wraps its own timer around a tick.

:class:`GatewaySnapshot` is the dump format for the serving benchmark's
``BENCH_serving_gateway.json`` artifact: everything in it is a plain float /
int / string, so ``json.dumps(snapshot.to_dict())`` always works.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Deque, Dict, List, Optional

import numpy as np


class LatencyWindow:
    """A bounded window of recent latency samples with percentile queries."""

    def __init__(self, maxlen: int = 512) -> None:
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self._samples: Deque[float] = deque(maxlen=maxlen)

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def last(self) -> float:
        return self._samples[-1] if self._samples else 0.0

    def mean(self) -> float:
        return float(np.mean(self._samples)) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the window (0.0 when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        return float(np.percentile(np.fromiter(self._samples, dtype=np.float64), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)


@dataclass
class TenantStats:
    """One tenant's cumulative serving counters plus current latency shape."""

    tenant_id: str
    requests: int              #: infer requests admitted (incl. in flight)
    deltas: int                #: deltas accepted and folded into buffers
    ticks: int                 #: batched executions run on the tenant's behalf
    rejections: int            #: requests refused by admission control
    queue_depth: int           #: infer requests currently waiting or in flight
    p50_tick_seconds: float
    p99_tick_seconds: float
    mean_tick_seconds: float
    last_tick_seconds: float

    @property
    def batching_factor(self) -> float:
        """Mean infer requests served per executed tick (1.0 = no batching win)."""
        return self.requests / self.ticks if self.ticks else 0.0

    def describe(self) -> str:
        return (f"{self.tenant_id}: {self.requests} req / {self.ticks} tick(s) "
                f"(x{self.batching_factor:.1f} batched), {self.deltas} delta(s), "
                f"{self.rejections} rejected, depth {self.queue_depth}, "
                f"p50 {self.p50_tick_seconds * 1e3:.1f} ms / "
                f"p99 {self.p99_tick_seconds * 1e3:.1f} ms")


@dataclass
class GatewaySnapshot:
    """Whole-gateway state at one instant — the ``BENCH_*.json`` surface."""

    tenants: List[TenantStats]
    requests: int
    deltas: int
    ticks: int
    rejections: int
    p50_tick_seconds: float
    p99_tick_seconds: float
    #: Straight copy of :class:`~repro.inference.pool.PoolStats` fields.
    pool: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable dict (artifact format for ``BENCH_*.json``)."""
        return {
            "requests": self.requests,
            "deltas": self.deltas,
            "ticks": self.ticks,
            "rejections": self.rejections,
            "p50_tick_seconds": self.p50_tick_seconds,
            "p99_tick_seconds": self.p99_tick_seconds,
            "pool": dict(self.pool),
            "tenants": [asdict(tenant) for tenant in self.tenants],
        }

    def describe(self) -> str:
        lines = [
            f"gateway: {self.requests} req / {self.ticks} tick(s), "
            f"{self.deltas} delta(s), {self.rejections} rejected, "
            f"p50 {self.p50_tick_seconds * 1e3:.1f} ms / "
            f"p99 {self.p99_tick_seconds * 1e3:.1f} ms",
        ]
        lines.extend("  " + tenant.describe() for tenant in self.tenants)
        return "\n".join(lines)


def merged_percentiles(windows: List[LatencyWindow],
                       q: float) -> float:
    """Percentile over the union of several windows' samples (0.0 when empty)."""
    samples: List[float] = []
    for window in windows:
        samples.extend(window._samples)
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))
