"""The asyncio serving gateway: concurrent multi-tenant requests over a pool.

``SessionPool`` gave the serving tier its plan cache; this module gives it a
**request front-end**.  :class:`ServingGateway` accepts concurrent tenant
traffic — interleaved :class:`~repro.inference.delta.GraphDelta` submissions
and infer requests — and turns it into the pool's efficient shape:

* **per-tenant queues, batched ticks** — all infer requests a tenant has
  pending (same mode) are served by **one** plan-cache-hit execution; ten
  concurrent dashboard refreshes cost one backend run, not ten;
* **delta coalescing** — deltas are folded into the owning session's
  :class:`~repro.inference.delta.DeltaBuffer` the moment they arrive
  (``pool.apply_delta(..., defer=True)``); the next tick flushes them as one
  merged plan patch;
* **overlap** — tick execution runs on a worker-thread pool (the backend's
  ``process`` executor does the real compute off-GIL in worker processes),
  so while tick N executes, the event loop keeps admitting requests and
  coalescing tick N+1's deltas, and other tenants' ticks run in parallel;
* **admission control** — each tenant's queue is bounded; a request beyond
  ``max_queue_depth`` is rejected with :class:`~repro.serving.admission.Overloaded`
  (carrying a drain-time ``retry_after`` hint) *before* touching pool state;
* **metrics** — per-tenant :class:`~repro.serving.metrics.TenantStats`
  (p50/p99 tick latency sampled from the session's own
  ``InferenceResult.elapsed_seconds``) and a gateway-level
  :class:`~repro.serving.metrics.GatewaySnapshot` ready to dump as a
  ``BENCH_*.json`` artifact.

Consistency model: requests and deltas of one tenant are processed in
arrival order; a tick's execution reflects every delta folded before its
flush — at minimum all deltas the tenant awaited before submitting the
request, possibly fresher ones that arrived while the request queued
(serving freshness, never staleness).  A delta submitted *while* a tick
executes lands in the **next** tick's coalesced flush — results are always
identical to the same submit/await sequence issued one call at a time
against a bare pool.

Typical flow::

    async with ServingGateway(pool) as gateway:
        gateway.register("tenant-a", graph_a)
        gateway.register("tenant-b", graph_b)
        scores = (await gateway.infer("tenant-a")).scores
        await gateway.submit_delta("tenant-a", delta)
        results = await gateway.map(["tenant-a", "tenant-b"])   # concurrent
        print(gateway.snapshot().describe())
"""

from __future__ import annotations

import asyncio
import functools
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # runtime import is deferred until the first tick
    from concurrent.futures import ThreadPoolExecutor

from repro.graph.graph import Graph
from repro.inference.config import GatewayConfig
from repro.inference.delta import DeltaOutcome, GraphDelta
from repro.inference.pool import SessionPool
from repro.inference.session import InferenceResult
from repro.serving.admission import AdmissionController, Overloaded
from repro.serving.metrics import (
    GatewaySnapshot,
    LatencyWindow,
    TenantStats,
    merged_percentiles,
)


@dataclass
class _Request:
    """One queued infer request awaiting its tick."""

    future: "asyncio.Future[InferenceResult]"
    mode: str
    check_memory: bool


@dataclass
class _TenantState:
    """Everything the gateway tracks for one registered tenant."""

    tenant_id: str
    graph: Graph
    window: LatencyWindow
    queue: Deque[_Request] = field(default_factory=deque)
    #: Requests picked from the queue but not yet completed (current tick).
    executing: int = 0
    #: Wakes the tenant loop when work arrives (or the gateway closes).
    wake: Optional[asyncio.Event] = None
    #: Serialises this tenant's delta applications (arrival order).
    delta_lock: Optional[asyncio.Lock] = None
    task: Optional["asyncio.Task[None]"] = None
    requests: int = 0
    deltas: int = 0
    ticks: int = 0
    rejections: int = 0

    @property
    def depth(self) -> int:
        """Admission-visible queue depth: waiting plus in-flight requests."""
        return len(self.queue) + self.executing


class ServingGateway:
    """Async multi-tenant request front-end over a :class:`SessionPool`.

    Parameters
    ----------
    pool:
        The (thread-safe) session pool executions are served from.  The
        gateway drives it from worker threads but never owns it — pool
        capacity, weighted eviction and TTLs keep working underneath, and
        the caller may keep using the pool directly.
    config:
        :class:`~repro.inference.config.GatewayConfig` knobs (queue bound,
        batch size, tick thread count, latency window).

    All coroutine methods must run on one event loop (the usual asyncio
    single-loop discipline); the heavy lifting — plan preparation, delta
    merging, backend execution — happens on the gateway's worker threads and
    in the backend's worker processes, never on the loop.
    """

    def __init__(self, pool: SessionPool,
                 config: Optional[GatewayConfig] = None) -> None:
        self.pool = pool
        self.config = config or GatewayConfig()
        self._admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            max_batch=self.config.max_batch,
            default_retry_after_seconds=self.config.default_retry_after_seconds)
        self._tenants: Dict[str, _TenantState] = {}
        self._executor: Optional["ThreadPoolExecutor"] = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def __aenter__(self) -> "ServingGateway":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Drain every tenant queue, stop the tick loops, free the threads.

        Requests already admitted are served to completion; new submissions
        raise ``RuntimeError``.  The pool is left untouched (the caller owns
        it — close it separately to release backend workers).
        """
        if self._closed:
            return
        self._closed = True
        tasks = []
        for state in self._tenants.values():
            if state.wake is not None:
                state.wake.set()
            if state.task is not None:
                tasks.append(state.task)
        if tasks:
            await asyncio.gather(*tasks)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("gateway is closed")

    def _threads(self) -> "ThreadPoolExecutor":
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.max_concurrent_ticks,
                thread_name_prefix="repro-gateway-tick")
        return self._executor

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, tenant_id: str, graph: Graph) -> None:
        """Bind ``tenant_id`` to its graph handle.

        The graph must be an in-memory :class:`~repro.graph.graph.Graph`
        (deltas are mirrored onto it — the handle tracks the content, exactly
        as :meth:`SessionPool.apply_delta` requires).  Planning happens
        lazily on the tenant's first tick; call
        ``await gateway.warm(tenant_id)`` to front-load it.
        """
        self._require_open()
        if not isinstance(graph, Graph):
            raise TypeError("register() requires an in-memory Graph tenant "
                            "(deltas are mirrored onto the handle)")
        if tenant_id in self._tenants:
            raise ValueError(f"tenant {tenant_id!r} is already registered")
        self._tenants[tenant_id] = _TenantState(
            tenant_id=tenant_id, graph=graph,
            window=LatencyWindow(self.config.latency_window))

    def tenants(self) -> List[str]:
        """Registered tenant ids, registration order."""
        return list(self._tenants)

    def _state(self, tenant_id: str) -> _TenantState:
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise KeyError(f"unknown tenant {tenant_id!r}; register(tenant_id, "
                           "graph) first") from None

    def _ensure_loop_state(self, state: _TenantState) -> None:
        """Create the tenant's loop-bound objects on first use (lazy: the
        constructor and ``register()`` are synchronous and may run before any
        event loop exists)."""
        if state.wake is None:
            state.wake = asyncio.Event()
        if state.delta_lock is None:
            state.delta_lock = asyncio.Lock()
        if state.task is None or state.task.done():
            state.task = asyncio.get_running_loop().create_task(
                self._tenant_loop(state), name=f"gateway-tick[{state.tenant_id}]")

    # ------------------------------------------------------------------ #
    # request paths
    # ------------------------------------------------------------------ #
    async def warm(self, tenant_id: str) -> None:
        """Prepare the tenant's plan off the request path (optional)."""
        self._require_open()
        state = self._state(tenant_id)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._threads(),
                                   self.pool.prepare, state.graph)

    async def infer(self, tenant_id: str, mode: str = "full",
                    check_memory: bool = False) -> InferenceResult:
        """One inference for ``tenant_id``, batched into its next tick.

        Concurrent requests for one tenant (same ``mode``) are served by a
        single execution — every caller receives the same
        :class:`~repro.inference.session.InferenceResult`.  Raises
        :class:`~repro.serving.admission.Overloaded` when the tenant already
        has ``max_queue_depth`` requests outstanding (queued plus executing);
        the rejected request touches no pool state.
        """
        self._require_open()
        if mode not in ("full", "incremental"):
            raise ValueError(f"mode must be 'full' or 'incremental', got {mode!r}")
        state = self._state(tenant_id)
        try:
            self._admission.admit(tenant_id, state.depth, state.window)
        except Overloaded:
            state.rejections += 1
            raise
        self._ensure_loop_state(state)
        state.requests += 1
        future: "asyncio.Future[InferenceResult]" = (
            asyncio.get_running_loop().create_future())
        state.queue.append(_Request(future=future, mode=mode,
                                    check_memory=check_memory))
        state.wake.set()
        return await future

    async def map(self, tenant_ids: Iterable[str], mode: str = "full",
                  check_memory: bool = False) -> List[InferenceResult]:
        """Concurrent :meth:`infer` over many tenants, results in input order.

        The ``runner.map`` idiom: think one tenant, scale with map — each
        tenant's requests batch into its own tick and the ticks overlap on
        the worker threads.
        """
        return await asyncio.gather(
            *(self.infer(tenant_id, mode=mode, check_memory=check_memory)
              for tenant_id in tenant_ids))

    async def submit_delta(self, tenant_id: str,
                           delta: GraphDelta) -> DeltaOutcome:
        """Fold ``delta`` into the tenant's deferred buffer (coalesced).

        Applied immediately — not queued — via
        ``pool.apply_delta(graph, delta, defer=True)`` on a worker thread, so
        it may overlap an executing tick: a delta arriving mid-tick lands in
        the *next* tick's one merged flush.  One tenant's deltas apply in
        submission order.
        """
        self._require_open()
        state = self._state(tenant_id)
        self._ensure_loop_state(state)
        loop = asyncio.get_running_loop()
        async with state.delta_lock:
            outcome = await loop.run_in_executor(
                self._threads(),
                functools.partial(self.pool.apply_delta, state.graph, delta,
                                  defer=True))
        state.deltas += 1
        return outcome

    # ------------------------------------------------------------------ #
    # the tick loop
    # ------------------------------------------------------------------ #
    def _next_batch(self, state: _TenantState) -> List[_Request]:
        """Pop the longest same-shaped FIFO prefix, up to ``max_batch``.

        Requests batch only when one execution can serve them all: same mode
        and same ``check_memory``.  A shape change starts the next tick.
        """
        batch: List[_Request] = [state.queue.popleft()]
        while (state.queue and len(batch) < self.config.max_batch
               and state.queue[0].mode == batch[0].mode
               and state.queue[0].check_memory == batch[0].check_memory):
            batch.append(state.queue.popleft())
        return batch

    def _execute_tick(self, state: _TenantState,
                      mode: str, check_memory: bool) -> InferenceResult:
        """Worker-thread body: one batched, coalesced-flush execution."""
        return self.pool.infer(state.graph, mode=mode,
                               check_memory=check_memory)

    async def _tenant_loop(self, state: _TenantState) -> None:
        """Per-tenant scheduler: drain the queue one batched tick at a time."""
        loop = asyncio.get_running_loop()
        while True:
            await state.wake.wait()
            state.wake.clear()
            while state.queue:
                batch = self._next_batch(state)
                state.executing = len(batch)
                try:
                    result = await loop.run_in_executor(
                        self._threads(),
                        self._execute_tick, state,
                        batch[0].mode, batch[0].check_memory)
                except Exception as exc:
                    # Deliberately broad: whatever a tick raises (backend
                    # errors, StalePlanError, WorkerCrashError) belongs to
                    # the awaiting callers, not the scheduler loop — which
                    # must survive to serve the tenant's next request.
                    for request in batch:
                        if not request.future.done():
                            request.future.set_exception(exc)
                else:
                    state.ticks += 1
                    # The session measured this tick's wall clock itself
                    # (flush included) — the one latency source of truth.
                    state.window.record(result.elapsed_seconds)
                    for request in batch:
                        if not request.future.done():
                            request.future.set_result(result)
                finally:
                    state.executing = 0
            if self._closed:
                return

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def tenant_stats(self, tenant_id: str) -> TenantStats:
        """Current counters and latency percentiles for one tenant."""
        state = self._state(tenant_id)
        return TenantStats(
            tenant_id=tenant_id,
            requests=state.requests,
            deltas=state.deltas,
            ticks=state.ticks,
            rejections=state.rejections,
            queue_depth=state.depth,
            p50_tick_seconds=state.window.p50,
            p99_tick_seconds=state.window.p99,
            mean_tick_seconds=state.window.mean(),
            last_tick_seconds=state.window.last,
        )

    def snapshot(self) -> GatewaySnapshot:
        """Whole-gateway view: per-tenant stats, merged percentiles, pool."""
        tenants = [self.tenant_stats(tenant_id) for tenant_id in self._tenants]
        windows = [state.window for state in self._tenants.values()]
        pool_stats = asdict(self.pool.stats)
        pool_stats["hit_rate"] = self.pool.stats.hit_rate
        return GatewaySnapshot(
            tenants=tenants,
            requests=sum(t.requests for t in tenants),
            deltas=sum(t.deltas for t in tenants),
            ticks=sum(t.ticks for t in tenants),
            rejections=sum(t.rejections for t in tenants),
            p50_tick_seconds=merged_percentiles(windows, 50.0),
            p99_tick_seconds=merged_percentiles(windows, 99.0),
            pool=pool_stats,
        )
