"""Tests for graph serialisation and the experiment CLI runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import runner
from repro.graph import io
from repro.graph.generators import labeled_community_graph
from repro.graph.graph import Graph
from repro.graph.tables import graph_to_tables


class TestGraphIO:
    @pytest.fixture(scope="class")
    def graph(self):
        return labeled_community_graph(num_nodes=80, num_classes=3, feature_dim=5,
                                       avg_degree=4.0, edge_feature_dim=2, seed=1)

    def test_save_load_graph_roundtrip(self, graph, tmp_path):
        path = str(tmp_path / "graph.npz")
        io.save_graph(graph, path)
        loaded = io.load_graph(path)
        assert loaded.num_nodes == graph.num_nodes
        np.testing.assert_array_equal(loaded.src, graph.src)
        np.testing.assert_array_equal(loaded.dst, graph.dst)
        np.testing.assert_allclose(loaded.node_features, graph.node_features)
        np.testing.assert_allclose(loaded.edge_features, graph.edge_features)
        np.testing.assert_array_equal(loaded.labels, graph.labels)

    def test_save_load_graph_without_attributes(self, tmp_path):
        bare = Graph(np.array([0, 1]), np.array([1, 2]), num_nodes=4)
        path = str(tmp_path / "bare.npz")
        io.save_graph(bare, path)
        loaded = io.load_graph(path)
        assert loaded.node_features is None
        assert loaded.labels is None
        assert loaded.num_nodes == 4

    def test_load_appends_npz_suffix(self, graph, tmp_path):
        path = str(tmp_path / "graph2.npz")
        io.save_graph(graph, path)
        loaded = io.load_graph(str(tmp_path / "graph2"))
        assert loaded.num_edges == graph.num_edges

    def test_tables_roundtrip(self, graph, tmp_path):
        node_table, edge_table = graph_to_tables(graph)
        directory = str(tmp_path / "tables")
        io.save_tables(node_table, edge_table, directory)
        loaded_nodes, loaded_edges = io.load_tables(directory)
        assert len(loaded_nodes) == len(node_table)
        assert len(loaded_edges) == len(edge_table)
        np.testing.assert_allclose(loaded_nodes.features, node_table.features)
        for original, restored in zip(node_table.out_neighbors, loaded_nodes.out_neighbors):
            np.testing.assert_array_equal(original, restored)

    def test_export_import_graph_as_tables(self, graph, tmp_path):
        directory = str(tmp_path / "export")
        io.export_graph_as_tables(graph, directory)
        rebuilt = io.import_graph_from_tables(directory)
        assert rebuilt.num_nodes == graph.num_nodes
        assert rebuilt.num_edges == graph.num_edges
        np.testing.assert_allclose(rebuilt.node_features, graph.node_features)

    def test_isolated_nodes_survive_table_roundtrip(self, tmp_path):
        graph = Graph(np.array([0]), np.array([1]),
                      node_features=np.ones((5, 2)), num_nodes=5)
        directory = str(tmp_path / "isolated")
        io.export_graph_as_tables(graph, directory)
        rebuilt = io.import_graph_from_tables(directory)
        assert rebuilt.num_nodes == 5


class TestRunner:
    def test_lists_all_experiments(self, capsys):
        assert runner.main(["list"]) == 0
        printed = capsys.readouterr().out.split()
        assert set(printed) == set(runner.EXPERIMENTS)

    def test_run_single_experiment(self, capsys):
        assert runner.main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "finished in" in output

    def test_run_experiment_function_quick(self):
        report = runner.run_experiment("fig9", preset="quick")
        assert "Fig. 9" in report

    def test_unknown_experiment_errors(self, capsys):
        assert runner.main(["table99"]) == 2

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            runner.run_experiment("table1", preset="huge")

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            runner.run_experiment("nope")

    def test_every_registered_experiment_has_both_presets(self):
        for name, (module, quick_kwargs, full_kwargs) in runner.EXPERIMENTS.items():
            assert hasattr(module, "run")
            assert hasattr(module, "format_result")
            assert isinstance(quick_kwargs, dict)
            assert isinstance(full_kwargs, dict)
