"""Property tests: columnar routing is byte-identical to a naive reference.

The refactored hot path (``ClusterLayout`` lookups, ``MessageBlock.split_by``
bucketing, CSR shadow expansion) changes *how* rows move, not *what* they say.
These tests rebuild the old per-target-mask / per-row-loop semantics as naive
reference implementations and assert the vectorised code produces
byte-identical per-partition mailboxes on random power-law graphs — including
:class:`~repro.inference.strategies.BroadcastMessageBlock` payload-reference
blocks and shadow-expanded destinations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
import pytest

from repro.graph.generators import powerlaw_graph
from repro.graph.partition import HashPartitioner
from repro.inference.shadow import apply_shadow_nodes
from repro.inference.strategies import BroadcastMessageBlock
from repro.pregel.combiners import SumCombiner
from repro.pregel.engine import PregelEngine, _route_outgoing
from repro.pregel.vertex import MessageBlock, PartitionContext

SEEDS = [0, 1, 2]
NUM_WORKERS = 4
PAYLOAD_DIM = 6


# --------------------------------------------------------------------------- #
# naive reference implementations (the pre-refactor semantics)
# --------------------------------------------------------------------------- #
def naive_route_blocks(blocks: List[MessageBlock], partitioner: HashPartitioner,
                       num_workers: int, combiner=None) -> List[List[MessageBlock]]:
    """Old ``_route``: one nonzero mask per destination partition."""
    outgoing: List[List[MessageBlock]] = [[] for _ in range(num_workers)]
    for block in blocks:
        if block.dst_ids.size == 0:
            continue
        targets = partitioner.assign_many(block.dst_ids)
        for target in np.unique(targets):
            rows = np.nonzero(targets == target)[0]
            piece = block.take(rows)
            if combiner is not None and piece.combinable:
                piece = combiner.combine_block(piece)
            outgoing[int(target)].append(piece)
    return outgoing


def naive_expand(replica_map: Dict[int, np.ndarray], dst_ids: np.ndarray,
                 payload: np.ndarray, counts: Optional[np.ndarray] = None) -> tuple:
    """Old ``expand_destinations``: per-row dict lookups and appends."""
    dst_ids = np.asarray(dst_ids, dtype=np.int64)
    if counts is None:
        counts = np.ones(dst_ids.shape[0], dtype=np.int64)
    if not replica_map:
        return dst_ids, payload, counts
    replicated = np.fromiter(replica_map.keys(), dtype=np.int64, count=len(replica_map))
    needs = np.isin(dst_ids, replicated)
    if not needs.any():
        return dst_ids, payload, counts
    keep = np.nonzero(~needs)[0]
    out_dst = [dst_ids[keep]]
    out_payload = [payload[keep]]
    out_counts = [counts[keep]]
    for row in np.nonzero(needs)[0]:
        replicas = replica_map[int(dst_ids[row])]
        out_dst.append(replicas)
        out_payload.append(np.repeat(payload[row][None, :], replicas.size, axis=0))
        out_counts.append(np.full(replicas.size, counts[row], dtype=np.int64))
    return (np.concatenate(out_dst), np.concatenate(out_payload, axis=0),
            np.concatenate(out_counts))


def assert_blocks_equal(actual: MessageBlock, expected: MessageBlock) -> None:
    """Byte-identical block comparison, including broadcast internals."""
    assert type(actual) is type(expected)
    np.testing.assert_array_equal(actual.dst_ids, expected.dst_ids)
    np.testing.assert_array_equal(actual.counts, expected.counts)
    np.testing.assert_array_equal(actual.dense_payload(), expected.dense_payload())
    if isinstance(actual, BroadcastMessageBlock):
        np.testing.assert_array_equal(actual.payload_refs, expected.payload_refs)
        np.testing.assert_array_equal(actual.unique_payloads, expected.unique_payloads)
    assert actual.nbytes() == expected.nbytes()


def assert_mailboxes_equal(actual: List[List[MessageBlock]],
                           expected: List[List[MessageBlock]]) -> None:
    assert len(actual) == len(expected)
    for actual_bucket, expected_bucket in zip(actual, expected):
        assert len(actual_bucket) == len(expected_bucket)
        for a, e in zip(actual_bucket, expected_bucket):
            assert_blocks_equal(a, e)


def random_graph(seed: int):
    return powerlaw_graph(num_nodes=300, avg_degree=5.0, skew="out",
                          feature_dim=4, num_classes=2, seed=seed)


def edge_blocks(graph, rng, chunks: int = 3) -> List[MessageBlock]:
    """Random payload blocks over the graph's edge destinations."""
    payload = rng.normal(size=(graph.num_edges, PAYLOAD_DIM))
    counts = rng.integers(1, 4, size=graph.num_edges).astype(np.int64)
    pieces = np.array_split(np.arange(graph.num_edges), chunks)
    return [MessageBlock(dst_ids=graph.dst[rows], payload=payload[rows],
                         counts=counts[rows]) for rows in pieces if rows.size]


def _route_via_engine(engine: PregelEngine, blocks: List[MessageBlock],
                      combiner=None) -> List[List[MessageBlock]]:
    context = PartitionContext(engine.partitions[0], superstep=0, aggregated={},
                               num_graph_vertices=engine.graph.num_nodes)
    for block in blocks:
        context.send_block(block)
    # The engine-hosted routing pass the partition harness runs per superstep
    # (the effective combiner is resolved by the harness before this call).
    return _route_outgoing(context, engine.layout, engine.num_workers, combiner)


class TestRouteEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_plain_blocks_match_naive_reference(self, seed):
        graph = random_graph(seed)
        rng = np.random.default_rng(seed + 100)
        blocks = edge_blocks(graph, rng)
        engine = PregelEngine(graph, num_workers=NUM_WORKERS)
        expected = naive_route_blocks(blocks, engine.partitioner, NUM_WORKERS)
        assert_mailboxes_equal(_route_via_engine(engine, blocks), expected)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_combined_blocks_match_naive_reference(self, seed):
        graph = random_graph(seed)
        rng = np.random.default_rng(seed + 200)
        blocks = edge_blocks(graph, rng)
        engine = PregelEngine(graph, num_workers=NUM_WORKERS)
        combiner = SumCombiner()
        expected = naive_route_blocks(blocks, engine.partitioner, NUM_WORKERS, combiner)
        assert_mailboxes_equal(_route_via_engine(engine, blocks, combiner), expected)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_broadcast_blocks_match_naive_reference(self, seed):
        graph = random_graph(seed)
        rng = np.random.default_rng(seed + 300)
        num_rows = graph.num_edges
        unique_payloads = rng.normal(size=(3, PAYLOAD_DIM))
        block = BroadcastMessageBlock(
            dst_ids=graph.dst,
            payload_refs=rng.integers(0, 3, size=num_rows),
            unique_payloads=unique_payloads,
            counts=rng.integers(1, 3, size=num_rows).astype(np.int64),
        )
        engine = PregelEngine(graph, num_workers=NUM_WORKERS)
        # Broadcast blocks are not combinable; the combiner must pass through.
        expected = naive_route_blocks([block], engine.partitioner, NUM_WORKERS,
                                      SumCombiner())
        assert_mailboxes_equal(_route_via_engine(engine, [block], SumCombiner()),
                               expected)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_shadow_expanded_destinations_match_naive_reference(self, seed):
        graph = random_graph(seed)
        rng = np.random.default_rng(seed + 400)
        plan = apply_shadow_nodes(graph, threshold=8, num_workers=NUM_WORKERS)
        if not plan.has_mirrors:
            pytest.skip("graph produced no mirrors at this threshold")
        payload = rng.normal(size=(graph.num_edges, PAYLOAD_DIM))
        counts = rng.integers(1, 4, size=graph.num_edges).astype(np.int64)

        expected = naive_expand(plan.replica_map, graph.dst, payload, counts)
        actual = plan.expand_destinations(graph.dst, payload, counts)
        for a, e in zip(actual, expected):
            np.testing.assert_array_equal(a, e)

        # ... and the expanded rows route identically through the engine
        # built over the shadow-expanded graph.
        block = MessageBlock(dst_ids=actual[0], payload=actual[1], counts=actual[2])
        engine = PregelEngine(plan.graph, num_workers=NUM_WORKERS)
        reference = naive_route_blocks([block], engine.partitioner, NUM_WORKERS)
        assert_mailboxes_equal(_route_via_engine(engine, [block]), reference)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_expand_rows_inline_ordering(self, seed):
        """The record-oriented expansion keeps every row at its position."""
        graph = random_graph(seed)
        plan = apply_shadow_nodes(graph, threshold=8, num_workers=NUM_WORKERS)
        if not plan.has_mirrors:
            pytest.skip("graph produced no mirrors at this threshold")
        replica_map = plan.replica_map
        row_index, expanded = plan.expand_rows(graph.dst)
        # Naive inline expansion.
        naive_rows, naive_dst = [], []
        for row, dst in enumerate(graph.dst):
            replicas = replica_map.get(int(dst), np.array([dst], dtype=np.int64))
            naive_rows.extend([row] * replicas.size)
            naive_dst.extend(replicas.tolist())
        np.testing.assert_array_equal(row_index, naive_rows)
        np.testing.assert_array_equal(expanded, naive_dst)


class TestSplitBy:
    def test_split_by_matches_masks(self):
        rng = np.random.default_rng(7)
        block = MessageBlock(dst_ids=rng.integers(0, 50, size=200),
                             payload=rng.normal(size=(200, 3)),
                             counts=rng.integers(1, 5, size=200).astype(np.int64))
        targets = rng.integers(0, 8, size=200)
        pieces = dict(block.split_by(targets, 8))
        for bucket in range(8):
            rows = np.nonzero(targets == bucket)[0]
            if rows.size == 0:
                assert bucket not in pieces
            else:
                assert_blocks_equal(pieces[bucket], block.take(rows))

    def test_split_by_empty_block(self):
        block = MessageBlock(dst_ids=np.empty(0, dtype=np.int64),
                             payload=np.zeros((0, 2)))
        assert block.split_by(np.empty(0, dtype=np.int64), 4) == []

    def test_split_by_single_bucket(self):
        block = MessageBlock(dst_ids=np.array([1, 2, 3]), payload=np.zeros((3, 2)))
        pieces = block.split_by(np.array([2, 2, 2]), 4)
        assert len(pieces) == 1 and pieces[0][0] == 2
        np.testing.assert_array_equal(pieces[0][1].dst_ids, [1, 2, 3])

    def test_split_by_validates_lengths_and_range(self):
        block = MessageBlock(dst_ids=np.array([1, 2]), payload=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            block.split_by(np.array([0]), 4)
        with pytest.raises(ValueError):
            block.split_by(np.array([0, 4]), 4)


class TestLocalIndices:
    def test_matches_naive_dict(self, small_graph):
        engine = PregelEngine(small_graph, num_workers=NUM_WORKERS)
        for partition in engine.partitions:
            naive = {int(node): i for i, node in enumerate(partition.node_ids)}
            ids = partition.out_src
            expected = np.array([naive[int(v)] for v in ids], dtype=np.int64)
            np.testing.assert_array_equal(partition.local_indices(ids), expected)

    def test_non_owned_vertex_raises_value_error(self, small_graph):
        engine = PregelEngine(small_graph, num_workers=NUM_WORKERS)
        partition = engine.partitions[0]
        foreign = int(engine.partitions[1].node_ids[0])
        with pytest.raises(ValueError, match=rf"partition 0 does not own vertex {foreign}"):
            partition.local_indices(np.array([int(partition.node_ids[0]), foreign]))
        with pytest.raises(ValueError, match="partition 0 does not own vertex"):
            partition.local_index(foreign)

    def test_out_of_range_vertex_raises_value_error(self, small_graph):
        engine = PregelEngine(small_graph, num_workers=NUM_WORKERS)
        partition = engine.partitions[0]
        with pytest.raises(ValueError, match="does not own vertex"):
            partition.local_indices(np.array([small_graph.num_nodes + 5]))
        assert not partition.owns(-1)
        assert not partition.owns(small_graph.num_nodes + 5)

    @pytest.mark.parametrize("bad_dst", [-1, 10**6])
    def test_vertex_message_to_unknown_vertex_raises(self, small_graph, bad_dst):
        """The legacy per-vertex path reports unroutable destinations clearly
        instead of crashing with a bare IndexError (or wrapping negatives)."""
        engine = PregelEngine(small_graph, num_workers=NUM_WORKERS)
        context = PartitionContext(engine.partitions[0], superstep=0, aggregated={},
                                   num_graph_vertices=small_graph.num_nodes)
        context.send_message(bad_dst, 1.0)
        with pytest.raises(ValueError, match=f"unknown vertex {bad_dst}"):
            _route_outgoing(context, engine.layout, engine.num_workers, None)
