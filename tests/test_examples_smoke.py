"""Smoke-run every documented example in reduced-size mode.

The examples are the README's entry points; this test executes each
``examples/*.py`` as a subprocess with ``REPRO_EXAMPLE_SCALE`` shrinking the
workloads (see ``examples/example_utils.py``), so a refactor that breaks a
documented flow fails tier-1 instead of rotting silently.  The parametrized
list is discovered from the directory — adding an example automatically adds
its smoke run.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(path for path in EXAMPLES_DIR.glob("*.py")
                  if not path.name.startswith(("_", "example_utils")))
SCALE = "0.1"
TIMEOUT_SECONDS = 180


def test_all_examples_are_discovered():
    # The serving docs reference at least these five flows; an accidental
    # rename must not silently shrink smoke coverage.
    names = {path.stem for path in EXAMPLES}
    assert {"quickstart", "incremental_serving", "multi_tenant_pool",
            "fraud_detection_powerlaw", "backend_tradeoff_mag240m",
            "pregel_pagerank", "async_gateway"} <= names


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_reduced(example: Path):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_SCALE"] = SCALE
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    completed = subprocess.run(
        [sys.executable, str(example)],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        timeout=TIMEOUT_SECONDS)
    assert completed.returncode == 0, (
        f"{example.name} failed at scale {SCALE}:\n"
        f"--- stdout ---\n{completed.stdout[-2000:]}\n"
        f"--- stderr ---\n{completed.stderr[-2000:]}")
    assert completed.stdout.strip(), f"{example.name} printed nothing"
