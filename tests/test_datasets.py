"""Tests for the dataset registry and synthetic stand-ins."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.registry import PAPER_STATS, Dataset, list_datasets, load_dataset


class TestRegistry:
    def test_lists_all_paper_datasets(self):
        assert list_datasets() == ["ppi", "products", "mag240m", "powerlaw"]

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("citeseer")

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("ppi", size="gigantic")

    @pytest.mark.parametrize("name", ["ppi", "products", "mag240m", "powerlaw"])
    def test_loads_and_has_paper_stats(self, name):
        dataset = load_dataset(name, size="tiny")
        assert dataset.graph.num_nodes > 0
        assert dataset.graph.num_edges > 0
        assert dataset.paper_stats == PAPER_STATS[name]

    def test_ppi_is_multilabel_with_121_labels(self):
        dataset = load_dataset("ppi", size="tiny")
        assert dataset.multilabel
        assert dataset.num_classes == 121
        assert dataset.feature_dim == 50

    def test_products_class_and_feature_dims(self):
        dataset = load_dataset("products", size="tiny")
        assert dataset.num_classes == 47
        assert dataset.feature_dim == 100
        assert not dataset.multilabel

    def test_mag240m_low_label_fraction(self):
        dataset = load_dataset("mag240m", size="tiny")
        assert dataset.summary()["train_fraction"] < 0.1
        assert dataset.num_classes == 153

    def test_powerlaw_tiny_train_fraction(self):
        dataset = load_dataset("powerlaw", size="tiny")
        assert dataset.summary()["train_fraction"] <= 0.01

    def test_powerlaw_custom_scale_and_skew(self):
        dataset = load_dataset("powerlaw", num_nodes=3000, skew="in", avg_degree=6.0)
        assert dataset.graph.num_nodes == 3000
        assert dataset.graph.in_degrees().max() > dataset.graph.out_degrees().max()

    def test_sizes_scale_node_count(self):
        tiny = load_dataset("products", size="tiny")
        default = load_dataset("products", size="default")
        assert default.graph.num_nodes > tiny.graph.num_nodes

    def test_splits_are_disjoint_and_cover_nodes(self):
        dataset = load_dataset("products", size="tiny")
        train = set(dataset.train_nodes.tolist())
        val = set(dataset.val_nodes.tolist())
        test = set(dataset.test_nodes.tolist())
        assert not (train & val)
        assert not (train & test)
        assert not (val & test)
        assert len(train | val | test) == dataset.graph.num_nodes

    def test_deterministic_by_seed(self):
        a = load_dataset("ppi", size="tiny", seed=3)
        b = load_dataset("ppi", size="tiny", seed=3)
        np.testing.assert_array_equal(a.graph.src, b.graph.src)
        np.testing.assert_array_equal(a.train_nodes, b.train_nodes)

    def test_different_seeds_differ(self):
        a = load_dataset("ppi", size="tiny", seed=1)
        b = load_dataset("ppi", size="tiny", seed=2)
        assert not np.array_equal(a.graph.src, b.graph.src)

    def test_summary_has_table1_fields(self):
        stats = load_dataset("mag240m", size="tiny").summary()
        for field in ("num_nodes", "num_edges", "node_feature_dim", "num_classes"):
            assert field in stats
