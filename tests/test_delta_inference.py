"""The staleness contract and incremental delta-inference.

Property-style checks on random power-law graphs: mutating a prepared graph
out of band must raise :class:`StalePlanError` (never silently serve stale
scores), and an in-band :class:`GraphDelta` followed by
``infer(mode="incremental")`` must be *bit-identical* to a fresh full
``prepare()+infer()`` on the mutated graph — shadow nodes and broadcast
enabled, on every backend (non-pregel backends take the full-recompute
default path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.graph.graph import Graph
from repro.inference import (
    GraphDelta,
    InferenceConfig,
    InferenceSession,
    StalePlanError,
    StrategyConfig,
    graph_fingerprint,
)
from repro.inference.delta import apply_delta_to_graph, expand_frontier
from repro.inference.shadow import apply_shadow_nodes


ALL_ON = dict(partial_gather=True, broadcast=True, shadow_nodes=True,
              hub_threshold_override=20)


def make_graph(seed: int, num_nodes: int = 700) -> Graph:
    return powerlaw_graph(num_nodes=num_nodes, avg_degree=6.0, skew="out",
                          feature_dim=8, num_classes=4, seed=seed)


def make_config(backend: str = "pregel", **strategy_kwargs) -> InferenceConfig:
    kwargs = dict(ALL_ON)
    kwargs.update(strategy_kwargs)
    return InferenceConfig(backend=backend, num_workers=4,
                           strategies=StrategyConfig(**kwargs))


def make_session(graph: Graph, kind: str = "gcn", **config_kwargs) -> InferenceSession:
    model = build_model(kind, graph.feature_dim, 16, 4, num_layers=2, seed=0)
    return InferenceSession(model, make_config(**config_kwargs))


def fresh_scores(graph: Graph, kind: str = "gcn", **config_kwargs) -> np.ndarray:
    session = make_session(graph, kind, **config_kwargs)
    session.prepare(graph)
    return session.infer().scores


def random_feature_delta(rng: np.random.Generator, graph: Graph,
                         fraction: float = 0.03) -> GraphDelta:
    count = max(1, int(graph.num_nodes * fraction))
    ids = rng.choice(graph.num_nodes, size=count, replace=False)
    rows = rng.standard_normal((count, graph.feature_dim))
    return GraphDelta(node_ids=ids, node_features=rows)


# --------------------------------------------------------------------------- #
# staleness detection
# --------------------------------------------------------------------------- #
class TestStaleness:
    @pytest.mark.parametrize("backend", ["pregel", "mapreduce", "khop"])
    def test_out_of_band_mutation_raises(self, backend):
        graph = make_graph(seed=1)
        session = make_session(graph, backend=backend)
        session.prepare(graph)
        session.infer()
        graph.node_features[3, 0] += 1.0
        with pytest.raises(StalePlanError, match="apply_delta"):
            session.infer()

    def test_edge_mutation_raises(self):
        graph = make_graph(seed=2)
        session = make_session(graph)
        session.prepare(graph)
        graph.src = np.concatenate([graph.src, np.array([0])])
        graph.dst = np.concatenate([graph.dst, np.array([1])])
        graph.invalidate_adjacency()
        with pytest.raises(StalePlanError):
            session.infer()

    def test_exact_restore_serves_again(self):
        graph = make_graph(seed=3)
        session = make_session(graph)
        session.prepare(graph)
        base = session.infer().scores
        saved = graph.node_features[5].copy()
        graph.node_features[5] = 7.0
        with pytest.raises(StalePlanError):
            session.infer()
        graph.node_features[5] = saved
        np.testing.assert_array_equal(session.infer().scores, base)

    def test_staleness_check_can_be_disabled(self):
        graph = make_graph(seed=4)
        model = build_model("gcn", graph.feature_dim, 16, 4, num_layers=2, seed=0)
        config = make_config()
        config.staleness_check = False
        session = InferenceSession(model, config)
        session.prepare(graph)
        session.infer()
        graph.node_features[0, 0] += 1.0
        session.infer()     # explicitly opted out of the contract

    def test_apply_delta_on_stale_graph_raises(self):
        # apply_delta must not launder an out-of-band mutation into a fresh
        # fingerprint: the patch would cover only the delta's rows while the
        # foreign mutation silently reached some-but-not-all caches.
        graph = make_graph(seed=6)
        session = make_session(graph)
        session.prepare(graph)
        session.infer()
        graph.node_features[7] += 5.0     # out of band
        delta = GraphDelta(node_ids=np.array([3]),
                           node_features=np.ones((1, graph.feature_dim)))
        with pytest.raises(StalePlanError):
            session.apply_delta(delta)

    def test_apply_delta_checks_staleness_even_when_disabled(self):
        # staleness_check=False only buys back the per-infer() CRC pass;
        # apply_delta must still refuse to absorb a foreign mutation.
        graph = make_graph(seed=8)
        model = build_model("gcn", graph.feature_dim, 16, 4, num_layers=2, seed=0)
        config = make_config()
        config.staleness_check = False
        session = InferenceSession(model, config)
        session.prepare(graph)
        session.infer()
        graph.node_features[7] += 5.0     # out of band
        with pytest.raises(StalePlanError):
            session.apply_delta(GraphDelta(node_ids=np.array([3]),
                                           node_features=np.ones((1, graph.feature_dim))))

    def test_fingerprint_tracks_content(self):
        graph = make_graph(seed=5)
        before = graph_fingerprint(graph)
        assert graph_fingerprint(graph) == before
        graph.node_features[0, 0] += 1.0
        assert graph_fingerprint(graph) != before


# --------------------------------------------------------------------------- #
# incremental inference: bit-identity with a fresh full run
# --------------------------------------------------------------------------- #
class TestIncrementalFeatureDelta:
    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_bit_identical_on_random_powerlaw(self, seed):
        rng = np.random.default_rng(seed)
        graph = make_graph(seed=seed)
        session = make_session(graph)
        session.prepare(graph)
        session.infer()

        delta = random_feature_delta(rng, graph)
        outcome = session.apply_delta(delta)
        assert outcome.in_place
        incremental = session.infer(mode="incremental").scores

        reference = make_graph(seed=seed)
        reference.node_features[delta.node_ids] = delta.node_features
        np.testing.assert_array_equal(incremental, fresh_scores(reference))

    def test_consecutive_deltas_accumulate(self):
        rng = np.random.default_rng(7)
        graph = make_graph(seed=7)
        reference = make_graph(seed=7)
        session = make_session(graph)
        session.prepare(graph)
        session.infer()
        for _ in range(3):
            delta = random_feature_delta(rng, graph, fraction=0.01)
            session.apply_delta(delta)
            reference.node_features[delta.node_ids] = delta.node_features
        incremental = session.infer(mode="incremental").scores
        np.testing.assert_array_equal(incremental, fresh_scores(reference))

    def test_full_mode_after_delta_is_current(self):
        rng = np.random.default_rng(9)
        graph = make_graph(seed=9)
        session = make_session(graph)
        session.prepare(graph)
        session.infer()
        delta = random_feature_delta(rng, graph)
        session.apply_delta(delta)
        full = session.infer().scores      # default full mode, patched plan
        reference = make_graph(seed=9)
        reference.node_features[delta.node_ids] = delta.node_features
        np.testing.assert_array_equal(full, fresh_scores(reference))

    def test_gat_projecting_apply_edge(self):
        # GAT's apply_edge projects messages, exercising the full-shape
        # recompute path instead of the identity row-gather fast path.
        rng = np.random.default_rng(13)
        graph = make_graph(seed=13, num_nodes=400)
        session = make_session(graph, kind="gat")
        session.prepare(graph)
        session.infer()
        delta = random_feature_delta(rng, graph)
        session.apply_delta(delta)
        incremental = session.infer(mode="incremental").scores
        reference = make_graph(seed=13, num_nodes=400)
        reference.node_features[delta.node_ids] = delta.node_features
        np.testing.assert_array_equal(incremental, fresh_scores(reference, kind="gat"))

    def test_incremental_before_any_full_run_falls_back(self):
        rng = np.random.default_rng(17)
        graph = make_graph(seed=17)
        session = make_session(graph)
        session.prepare(graph)     # never ran infer(): no warm state cache
        delta = random_feature_delta(rng, graph)
        session.apply_delta(delta)
        scores = session.infer(mode="incremental").scores
        reference = make_graph(seed=17)
        reference.node_features[delta.node_ids] = delta.node_features
        np.testing.assert_array_equal(scores, fresh_scores(reference))

    def test_incremental_without_state_cache_falls_back(self):
        rng = np.random.default_rng(19)
        graph = make_graph(seed=19)
        model = build_model("gcn", graph.feature_dim, 16, 4, num_layers=2, seed=0)
        config = make_config()
        config.incremental_state_cache = False
        session = InferenceSession(model, config)
        session.prepare(graph)
        session.infer()
        delta = random_feature_delta(rng, graph)
        session.apply_delta(delta)
        scores = session.infer(mode="incremental").scores
        reference = make_graph(seed=19)
        reference.node_features[delta.node_ids] = delta.node_features
        np.testing.assert_array_equal(scores, fresh_scores(reference))

    def test_incremental_with_no_delta_reproduces_cached_scores(self):
        graph = make_graph(seed=21)
        session = make_session(graph)
        session.prepare(graph)
        base = session.infer().scores
        again = session.infer(mode="incremental").scores
        np.testing.assert_array_equal(again, base)

    def test_incremental_moves_fewer_bytes(self):
        rng = np.random.default_rng(25)
        graph = make_graph(seed=25)
        session = make_session(graph)
        session.prepare(graph)
        full = session.infer()
        # The state cache is lazy: the first post-delta run primes it (full
        # cost), later incrementals ride it.
        session.apply_delta(random_feature_delta(rng, graph, fraction=0.005))
        priming = session.infer(mode="incremental")
        assert priming.cost.total_bytes >= full.cost.total_bytes * 0.99
        session.apply_delta(random_feature_delta(rng, graph, fraction=0.005))
        incremental = session.infer(mode="incremental")
        assert incremental.cost.total_bytes < full.cost.total_bytes

    def test_state_cache_lazy_until_first_delta(self):
        # A session that never sees a delta must not pay the per-superstep
        # state cache (the pre-delta peak-memory behaviour); the cache arms on
        # the first apply_delta and fills on the next full-shaped run.
        from repro.inference.pregel_adaptor import has_cached_run

        rng = np.random.default_rng(29)
        graph = make_graph(seed=29)
        session = make_session(graph)
        session.prepare(graph)
        no_delta_run = session.infer()
        engine = session.plan.state["engine"]
        assert not any(has_cached_run(p, session.model.num_layers)
                       for p in engine.partitions)
        session.apply_delta(random_feature_delta(rng, graph, fraction=0.01))
        delta_run = session.infer()            # full run, now caching
        assert all(has_cached_run(p, session.model.num_layers)
                   for p in engine.partitions)
        # Modeled worker memory reflects the cache: armed runs are heavier.
        peak = lambda result: max(m.peak_memory_bytes
                                  for m in result.metrics.instances())
        assert peak(delta_run) > peak(no_delta_run)

    def test_invalid_mode_rejected(self):
        graph = make_graph(seed=27)
        session = make_session(graph)
        session.prepare(graph)
        with pytest.raises(ValueError, match="mode"):
            session.infer(mode="partial")


# --------------------------------------------------------------------------- #
# edge deltas
# --------------------------------------------------------------------------- #
class TestEdgeDelta:
    def _reference_graph(self, seed, delta):
        base = make_graph(seed=seed)
        apply_delta_to_graph(base, delta)
        return base

    def test_in_place_edge_delta_bit_identical(self):
        rng = np.random.default_rng(31)
        graph = make_graph(seed=31)
        session = make_session(graph, shadow_nodes=False)
        session.prepare(graph)
        session.infer()
        # Keep the hub set stable: add at most one edge per deep-non-hub
        # source, and remove edges whose source stays a deep non-hub.
        threshold = session.plan.strategy_plan.threshold
        degrees = graph.out_degrees()
        safe_sources = np.nonzero(degrees < threshold - 3)[0]
        added_src = rng.choice(safe_sources, size=40, replace=False)
        removable = np.nonzero(degrees[graph.src] < threshold - 3)[0]
        delta = GraphDelta(
            added_src=added_src,
            added_dst=rng.integers(0, graph.num_nodes, size=40),
            removed_edge_ids=rng.choice(removable, size=20, replace=False),
        )
        outcome = session.apply_delta(delta)
        assert outcome.in_place
        incremental = session.infer(mode="incremental").scores
        reference = self._reference_graph(31, GraphDelta(
            added_src=delta.added_src, added_dst=delta.added_dst,
            removed_edge_ids=delta.removed_edge_ids))
        np.testing.assert_array_equal(incremental,
                                      fresh_scores(reference, shadow_nodes=False))

    def test_hub_set_change_replans_transparently(self):
        graph = make_graph(seed=33)
        session = make_session(graph, shadow_nodes=False)
        session.prepare(graph)
        session.infer()
        # Blast one quiet node far past the hub threshold: the hub set must
        # change, invalidating the plan.
        degrees = graph.out_degrees()
        quiet = int(np.argmin(degrees))
        added_dst = np.arange(50, dtype=np.int64) % graph.num_nodes
        delta = GraphDelta(added_src=np.full(50, quiet, dtype=np.int64),
                           added_dst=added_dst)
        outcome = session.apply_delta(delta)
        assert not outcome.in_place and "hub" in outcome.reason
        scores = session.infer(mode="incremental").scores   # falls back fresh
        reference = self._reference_graph(33, GraphDelta(
            added_src=np.full(50, quiet, dtype=np.int64), added_dst=added_dst))
        np.testing.assert_array_equal(scores,
                                      fresh_scores(reference, shadow_nodes=False))

    def test_edge_delta_with_shadow_nodes_in_place(self):
        # The position-stable mirror assignment lets edge deltas patch the
        # shadow-expanded working graph in place: an in-place outcome must be
        # bit-identical to a fresh prepare()+infer() over the post-delta graph
        # with the same (shadow-on) strategies.
        rng = np.random.default_rng(35)
        graph = make_graph(seed=35)
        session = make_session(graph)          # shadow_nodes=True
        session.prepare(graph)
        session.infer()
        threshold = session.plan.strategy_plan.threshold
        degrees = graph.out_degrees()
        safe_sources = np.nonzero(degrees < threshold - 3)[0]
        added_src = rng.choice(safe_sources, size=40, replace=False)
        removable = np.nonzero(degrees[graph.src] < threshold - 3)[0]
        delta = GraphDelta(
            added_src=added_src,
            added_dst=rng.integers(0, graph.num_nodes, size=40),
            removed_edge_ids=rng.choice(removable, size=20, replace=False),
        )
        reference = self._reference_graph(35, GraphDelta(
            added_src=delta.added_src, added_dst=delta.added_dst,
            removed_edge_ids=delta.removed_edge_ids))
        outcome = session.apply_delta(delta)
        assert outcome.in_place
        np.testing.assert_array_equal(session.infer().scores,
                                      fresh_scores(reference))

    def test_edge_delta_onto_hub_out_edges_in_place(self):
        # Adding/removing a *hub's* out-edges stays in place as long as the
        # hub's mirror-group count survives; the new edges must land on the
        # same mirror a fresh rewrite would assign them to.
        graph = make_graph(seed=36)
        session = make_session(graph)          # shadow_nodes=True
        session.prepare(graph)
        session.infer()
        assert session.plan.shadow_plan.has_mirrors
        degrees = graph.out_degrees()
        threshold = session.plan.strategy_plan.threshold
        # Pick a hub whose degree is not about to cross a group boundary.
        hubs = np.nonzero(degrees >= threshold)[0]
        hub = int(hubs[int(np.argmax(degrees[hubs] % threshold))])
        hub_edges = np.nonzero(graph.src == hub)[0]
        delta = GraphDelta(
            added_src=np.array([hub, hub]),
            added_dst=np.array([(hub + 1) % graph.num_nodes,
                                (hub + 2) % graph.num_nodes]),
            removed_edge_ids=hub_edges[:1],
        )
        reference = self._reference_graph(36, GraphDelta(
            added_src=delta.added_src, added_dst=delta.added_dst,
            removed_edge_ids=delta.removed_edge_ids))
        outcome = session.apply_delta(delta)
        assert outcome.in_place
        np.testing.assert_array_equal(session.infer().scores,
                                      fresh_scores(reference))

    def test_mirror_group_count_change_replans(self):
        # Pushing a hub's degree across the next group boundary changes its
        # mirror count — the one shadow-specific way an edge delta still
        # invalidates the plan.
        graph = make_graph(seed=38)
        session = make_session(graph)          # shadow_nodes=True
        session.prepare(graph)
        session.infer()
        plan = session.plan
        assert plan.shadow_plan.has_mirrors
        threshold = plan.strategy_plan.threshold
        degrees = graph.out_degrees()
        original = plan.shadow_plan.original_num_nodes
        hubs = plan.strategy_plan.out_degree_hubs
        hubs = hubs[hubs < original]
        # Round a hub's degree up past its next multiple of the threshold
        # (group counts are capped at num_workers=4, so pick one below cap).
        hub = int(hubs[np.argmin(degrees[hubs])])
        groups = int(-(-degrees[hub] // threshold))
        assert groups < 4
        need = (groups * threshold + 1) - int(degrees[hub])
        delta = GraphDelta(
            added_src=np.full(need, hub, dtype=np.int64),
            added_dst=(hub + 1 + np.arange(need, dtype=np.int64)) % graph.num_nodes)
        reference = self._reference_graph(38, GraphDelta(
            added_src=delta.added_src, added_dst=delta.added_dst))
        outcome = session.apply_delta(delta)
        assert not outcome.in_place and "mirror" in outcome.reason
        np.testing.assert_array_equal(session.infer().scores,
                                      fresh_scores(reference))

    def test_gat_edge_delta_replans(self):
        # Projecting apply_edge runs at edge-table shape; changing the edge
        # count must invalidate rather than risk ulp drift.
        graph = make_graph(seed=37, num_nodes=300)
        session = make_session(graph, kind="gat", shadow_nodes=False)
        session.prepare(graph)
        session.infer()
        outcome = session.apply_delta(
            GraphDelta(added_src=np.array([0]), added_dst=np.array([1])))
        assert not outcome.in_place and "apply_edge" in outcome.reason

    def test_new_node_rejected(self):
        graph = make_graph(seed=39)
        session = make_session(graph)
        session.prepare(graph)
        with pytest.raises(ValueError, match="fresh prepare"):
            session.apply_delta(GraphDelta(
                added_src=np.array([graph.num_nodes]), added_dst=np.array([0])))


# --------------------------------------------------------------------------- #
# full-recompute default on backends without delta hooks
# --------------------------------------------------------------------------- #
class TestFallbackBackends:
    def test_tables_source_survives_the_replan_path(self):
        # A session prepared from (NodeTable, EdgeTable) whose delta takes the
        # full-recompute path must keep serving post-delta scores when called
        # as infer(tables) — re-ingesting the pair would resurrect the
        # pre-delta edge arrays.
        from repro.graph.tables import graph_to_tables

        graph = make_graph(seed=43, num_nodes=300)
        tables = graph_to_tables(graph)
        session = make_session(graph, backend="khop")
        session.prepare(tables)
        session.infer()
        delta = GraphDelta(added_src=np.array([2, 3]), added_dst=np.array([0, 1]))
        outcome = session.apply_delta(delta)
        assert not outcome.in_place                      # khop: no delta hooks
        after = session.infer().scores
        again = session.infer(tables).scores             # must not re-ingest
        np.testing.assert_array_equal(again, after)

    def test_khop_apply_delta_replans_and_serves_current(self):
        # khop has no delta hooks at all: always the full-recompute default.
        rng = np.random.default_rng(41)
        graph = make_graph(seed=41, num_nodes=300)
        session = make_session(graph, backend="khop")
        session.prepare(graph)
        session.infer()
        delta = random_feature_delta(rng, graph)
        outcome = session.apply_delta(delta)
        assert not outcome.in_place
        scores = session.infer(mode="incremental").scores   # falls back to full
        reference = make_graph(seed=41, num_nodes=300)
        reference.node_features[delta.node_ids] = delta.node_features
        np.testing.assert_array_equal(scores,
                                      fresh_scores(reference, backend="khop"))

    def test_mapreduce_feature_delta_patches_in_place(self):
        # mapreduce now has delta hooks: feature deltas patch the cached
        # input records row-wise (no re-plan); full infer() serves current
        # scores bit-identical to a fresh prepare()+infer().
        rng = np.random.default_rng(42)
        graph = make_graph(seed=42, num_nodes=300)
        session = make_session(graph, backend="mapreduce")
        session.prepare(graph)
        session.infer()
        records_before = session.plan.state["input_records"]
        delta = random_feature_delta(rng, graph)
        outcome = session.apply_delta(delta)
        assert outcome.in_place
        assert session.plan.state["input_records"] is records_before  # no re-plan
        scores = session.infer().scores
        reference = make_graph(seed=42, num_nodes=300)
        reference.node_features[delta.node_ids] = delta.node_features
        np.testing.assert_array_equal(scores,
                                      fresh_scores(reference, backend="mapreduce"))

    def test_mapreduce_edge_delta_patches_in_place(self):
        # Hub-preserving edge deltas splice into the cached input records
        # (no re-plan); the rebuilt adjacency payloads are byte-identical to
        # a fresh record scan, so full infer() stays bit-identical too.
        graph = make_graph(seed=44, num_nodes=300)
        session = make_session(graph, backend="mapreduce")
        session.prepare(graph)
        session.infer()
        records_before = session.plan.state["input_records"]
        outcome = session.apply_delta(
            GraphDelta(added_src=np.array([2, 3]), added_dst=np.array([0, 1])))
        assert outcome.in_place
        assert session.plan.state["input_records"] is records_before  # no re-plan
        after = session.infer().scores
        reference = make_graph(seed=44, num_nodes=300)
        apply_delta_to_graph(reference, GraphDelta(
            added_src=np.array([2, 3]), added_dst=np.array([0, 1])))
        np.testing.assert_array_equal(after,
                                      fresh_scores(reference, backend="mapreduce"))

    def test_mapreduce_incremental_after_edge_delta(self):
        # After an in-place edge delta, incremental inference seeds its
        # closure from topo_dirty and agrees with a fresh full run to the
        # repo's 1e-9 equivalence tolerance.
        rng = np.random.default_rng(46)
        graph = make_graph(seed=46, num_nodes=300)
        session = make_session(graph, backend="mapreduce")
        session.prepare(graph)
        session.infer()
        # Prime the lazy score cache with a post-delta full-shaped run.
        session.apply_delta(random_feature_delta(rng, graph, fraction=0.01))
        session.infer(mode="incremental")
        threshold = session.plan.strategy_plan.threshold
        degrees = graph.out_degrees()
        safe_sources = np.nonzero(degrees < threshold - 3)[0]
        added_src = rng.choice(safe_sources, size=10, replace=False)
        removable = np.nonzero(degrees[graph.src] < threshold - 3)[0]
        delta = GraphDelta(
            added_src=added_src,
            added_dst=rng.integers(0, graph.num_nodes, size=10),
            removed_edge_ids=rng.choice(removable, size=5, replace=False),
        )
        reference = Graph(src=graph.src.copy(), dst=graph.dst.copy(),
                          node_features=graph.node_features.copy(),
                          num_nodes=graph.num_nodes)
        apply_delta_to_graph(reference, GraphDelta(
            added_src=delta.added_src, added_dst=delta.added_dst,
            removed_edge_ids=delta.removed_edge_ids))
        outcome = session.apply_delta(delta)
        assert outcome.in_place
        incremental = session.infer(mode="incremental").scores
        np.testing.assert_allclose(
            incremental, fresh_scores(reference, backend="mapreduce"),
            atol=1e-9, rtol=0)


# --------------------------------------------------------------------------- #
# delta plumbing
# --------------------------------------------------------------------------- #
class TestGraphDelta:
    def test_validation(self):
        with pytest.raises(ValueError, match="together"):
            GraphDelta(node_ids=np.array([1]))
        with pytest.raises(ValueError, match="together"):
            GraphDelta(added_src=np.array([1]))
        with pytest.raises(ValueError, match="duplicates"):
            GraphDelta(node_ids=np.array([1, 1]), node_features=np.zeros((2, 3)))
        with pytest.raises(ValueError, match="matrix"):
            GraphDelta(node_ids=np.array([1]), node_features=np.zeros((2, 3)))
        assert GraphDelta().is_empty
        assert "2 feature row" in GraphDelta(node_ids=np.array([1, 2]),
                                             node_features=np.zeros((2, 3))).describe()

    def test_apply_to_graph_removes_then_appends(self):
        graph = Graph(src=np.array([0, 1, 2]), dst=np.array([1, 2, 0]),
                      node_features=np.zeros((3, 2)), num_nodes=3)
        topo = apply_delta_to_graph(graph, GraphDelta(
            added_src=np.array([0]), added_dst=np.array([2]),
            removed_edge_ids=np.array([1])))
        np.testing.assert_array_equal(graph.src, [0, 2, 0])
        np.testing.assert_array_equal(graph.dst, [1, 0, 2])
        np.testing.assert_array_equal(topo, [2])    # both changed dsts

    def test_rejected_delta_leaves_graph_untouched(self):
        # A combined delta whose edge half is invalid must not land its
        # feature half: the session's fingerprint would wedge every infer().
        graph = make_graph(seed=45)
        session = make_session(graph)
        session.prepare(graph)
        base = session.infer().scores
        bad = GraphDelta(node_ids=np.array([3]),
                         node_features=np.ones((1, graph.feature_dim)),
                         removed_edge_ids=np.array([10 ** 9]))
        with pytest.raises(ValueError, match="removed_edge_ids"):
            session.apply_delta(bad)
        np.testing.assert_array_equal(session.infer().scores, base)   # still serves

    def test_bad_edge_feature_width_rejected_before_any_write(self):
        graph = Graph(src=np.array([0, 1]), dst=np.array([1, 0]),
                      node_features=np.zeros((2, 2)),
                      edge_features=np.zeros((2, 4)), num_nodes=2)
        bad = GraphDelta(node_ids=np.array([0]),
                         node_features=np.ones((1, 2)),
                         added_src=np.array([0]), added_dst=np.array([1]),
                         added_edge_features=np.ones((1, 3)))
        with pytest.raises(ValueError, match="edge-feature width"):
            apply_delta_to_graph(graph, bad)
        np.testing.assert_array_equal(graph.node_features, np.zeros((2, 2)))
        assert graph.num_edges == 2

    def test_session_rejects_bad_edge_feature_width_at_entry(self):
        # The eager session path validates at the API boundary (the same
        # checks DeltaBuffer.add performs on the deferred path): a wrong-width
        # added_edge_features fails before any graph, plan or cache write.
        rng = np.random.default_rng(47)
        graph = make_graph(seed=47, num_nodes=200)
        graph.edge_features = rng.standard_normal((graph.num_edges, 4))
        session = make_session(graph)
        session.prepare(graph)
        base = session.infer().scores
        bad = GraphDelta(added_src=np.array([0]), added_dst=np.array([1]),
                         added_edge_features=np.ones((1, 3)))
        with pytest.raises(ValueError, match="edge-feature width"):
            session.apply_delta(bad)
        np.testing.assert_array_equal(session.infer().scores, base)

    def test_validate_aligns_edge_feature_dtype(self):
        # Validation aligns the delta's added_edge_features dtype with the
        # graph's edge-feature buffer so the append never silently upcasts.
        from repro.inference.delta import validate_delta_against_graph

        graph = Graph(src=np.array([0, 1]), dst=np.array([1, 0]),
                      node_features=np.zeros((2, 2)),
                      edge_features=np.zeros((2, 4), dtype=np.float64),
                      num_nodes=2)
        delta = GraphDelta(added_src=np.array([0]), added_dst=np.array([1]),
                           added_edge_features=np.ones((1, 4)))
        # Simulate a hand-built delta whose rows bypassed __post_init__'s
        # coercion (e.g. assigned after construction).
        delta.added_edge_features = delta.added_edge_features.astype(np.float32)
        validate_delta_against_graph(graph, delta)
        assert delta.added_edge_features.dtype == graph.edge_features.dtype
        apply_delta_to_graph(graph, delta)
        assert graph.edge_features.dtype == np.float64

    def test_feature_width_mismatch(self):
        graph = Graph(src=np.array([0]), dst=np.array([1]),
                      node_features=np.zeros((2, 4)), num_nodes=2)
        with pytest.raises(ValueError, match="width"):
            apply_delta_to_graph(graph, GraphDelta(
                node_ids=np.array([0]), node_features=np.zeros((1, 3))))

    def test_expand_frontier_grows_and_is_replica_closed(self):
        graph = make_graph(seed=43)
        plan = apply_shadow_nodes(graph, threshold=20, num_workers=4)
        seeds = np.array([0, 1], dtype=np.int64)
        frontiers = expand_frontier(plan.graph, seeds, np.empty(0, np.int64),
                                    num_supersteps=3, shadow_plan=plan)
        assert len(frontiers) == 3
        for earlier, later in zip(frontiers, frontiers[1:]):
            assert np.isin(earlier, later).all()          # monotone growth
        for frontier in frontiers:
            closed = plan.replicas_of(frontier)
            np.testing.assert_array_equal(frontier, closed)   # replica-closed
