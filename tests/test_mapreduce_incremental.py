"""MapReduce delta hooks: in-place record patching + closure-replay inference.

Two contracts, property-tested on random power-law graphs with all hub
strategies enabled:

* ``apply_delta`` patches the cached ``input_records`` row-wise for feature
  deltas (no re-plan, no per-node table rescan), and a following full
  ``infer()`` is **bit-identical** to a fresh ``prepare()+infer()`` on the
  mutated graph — the replay feeds the same records through the same rounds;
* ``infer(mode="incremental")`` replays only the delta's dependency closure
  and splices into the cached score matrix; agreement with the full recompute
  is **tolerance-level** (~1e-15 — batch shapes change BLAS accumulation
  order), asserted far inside the repo's 1e-9 equivalence tolerance, and
  untouched rows keep their cached bits exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference import (
    GraphDelta,
    InferenceConfig,
    InferenceSession,
    StrategyConfig,
)

RTOL, ATOL = 1e-9, 1e-12


def make_graph(seed: int, num_nodes: int = 500):
    return powerlaw_graph(num_nodes=num_nodes, avg_degree=6.0, skew="out",
                          feature_dim=8, num_classes=4, seed=seed)


def make_config(**strategy_kwargs) -> InferenceConfig:
    kwargs = dict(partial_gather=True, broadcast=True, shadow_nodes=True,
                  hub_threshold_override=20)
    kwargs.update(strategy_kwargs)
    return InferenceConfig(backend="mapreduce", num_workers=4,
                           strategies=StrategyConfig(**kwargs))


def make_session(kind: str = "gcn", **strategy_kwargs) -> InferenceSession:
    model = build_model(kind, 8, 16, 4, num_layers=2, seed=0)
    return InferenceSession(model, make_config(**strategy_kwargs))


def fresh_scores(graph, kind: str = "gcn", **strategy_kwargs) -> np.ndarray:
    session = make_session(kind, **strategy_kwargs)
    session.prepare(graph)
    return session.infer().scores


def feature_delta(rng: np.random.Generator, num_nodes: int,
                  fraction: float = 0.03) -> GraphDelta:
    count = max(1, int(num_nodes * fraction))
    ids = rng.choice(num_nodes, size=count, replace=False)
    return GraphDelta(node_ids=ids,
                      node_features=rng.standard_normal((count, 8)))


def warmed_session(graph, **strategy_kwargs) -> InferenceSession:
    """A session with an armed, primed incremental score cache.

    The cache is lazy (arms on the first delta) and primes on the next full
    run, so: full run, tiny delta, full run.
    """
    session = make_session(**strategy_kwargs)
    session.prepare(graph)
    session.infer()
    session.apply_delta(GraphDelta(node_ids=np.array([0]),
                                   node_features=graph.node_features[[0]].copy()))
    session.infer()
    return session


class TestIncrementalReplay:
    @pytest.mark.parametrize("seed", [11, 23, 47])
    @pytest.mark.parametrize("strategies", [
        {},                                       # all strategies on
        {"shadow_nodes": False},                  # broadcast without mirrors
        {"shadow_nodes": False, "broadcast": False},
    ])
    def test_incremental_matches_full_recompute(self, seed, strategies):
        rng = np.random.default_rng(seed)
        graph = make_graph(seed)
        session = warmed_session(graph, **strategies)
        delta = feature_delta(rng, graph.num_nodes)
        outcome = session.apply_delta(delta)
        assert outcome.in_place
        incremental = session.infer(mode="incremental").scores

        reference = make_graph(seed)
        reference.node_features[delta.node_ids] = delta.node_features
        full = fresh_scores(reference, **strategies)
        np.testing.assert_allclose(incremental, full, rtol=RTOL, atol=ATOL)

    def test_untouched_rows_keep_cached_bits(self):
        rng = np.random.default_rng(7)
        graph = make_graph(7)
        session = warmed_session(graph)
        cached = session.infer().scores
        delta = feature_delta(rng, graph.num_nodes, fraction=0.01)
        session.apply_delta(delta)
        incremental = session.infer(mode="incremental").scores
        # The two-hop out-reach of the dirty nodes may change; everything
        # outside it must be byte-for-byte the cached rows.
        reach = set(delta.node_ids.tolist())
        frontier = set(delta.node_ids.tolist())
        for _ in range(2):
            frontier = {n for f in frontier for n in graph.out_neighbors(f)} | frontier
        outside = np.array(sorted(set(range(graph.num_nodes)) - frontier))
        np.testing.assert_array_equal(incremental[outside], cached[outside])
        assert reach  # sanity: the delta was not empty

    def test_consecutive_incrementals_chain(self):
        rng = np.random.default_rng(13)
        graph = make_graph(13)
        reference = make_graph(13)
        session = warmed_session(graph)
        for _ in range(3):
            delta = feature_delta(rng, graph.num_nodes, fraction=0.01)
            session.apply_delta(delta)
            reference.node_features[delta.node_ids] = delta.node_features
            incremental = session.infer(mode="incremental").scores
        np.testing.assert_allclose(incremental, fresh_scores(reference),
                                   rtol=RTOL, atol=ATOL)

    def test_incremental_moves_fewer_bytes_than_full(self):
        rng = np.random.default_rng(17)
        graph = make_graph(17, num_nodes=1500)
        session = warmed_session(graph)
        full = session.infer()
        session.apply_delta(feature_delta(rng, graph.num_nodes, fraction=0.005))
        incremental = session.infer(mode="incremental")
        assert incremental.cost.total_bytes < full.cost.total_bytes

    def test_first_post_delta_incremental_falls_back_and_primes(self):
        rng = np.random.default_rng(19)
        graph = make_graph(19)
        session = make_session()
        session.prepare(graph)
        session.infer()
        assert "scores" not in session.plan.state      # lazy: nothing cached yet
        delta = feature_delta(rng, graph.num_nodes)
        session.apply_delta(delta)
        scores = session.infer(mode="incremental").scores   # full fallback
        assert "scores" in session.plan.state               # primed
        reference = make_graph(19)
        reference.node_features[delta.node_ids] = delta.node_features
        np.testing.assert_array_equal(scores, fresh_scores(reference))

    def test_incremental_disabled_cache_falls_back(self):
        rng = np.random.default_rng(21)
        graph = make_graph(21)
        config = make_config()
        config.incremental_state_cache = False
        session = InferenceSession(build_model("gcn", 8, 16, 4, num_layers=2, seed=0),
                                   config)
        session.prepare(graph)
        session.infer()
        delta = feature_delta(rng, graph.num_nodes)
        session.apply_delta(delta)
        scores = session.infer(mode="incremental").scores
        assert "scores" not in session.plan.state
        reference = make_graph(21)
        reference.node_features[delta.node_ids] = delta.node_features
        np.testing.assert_array_equal(scores, fresh_scores(reference))


class TestRecordPatching:
    def test_full_infer_after_patch_bit_identical_to_fresh_plan(self):
        rng = np.random.default_rng(29)
        graph = make_graph(29)
        session = make_session()
        session.prepare(graph)
        session.infer()
        records = session.plan.state["input_records"]
        delta = feature_delta(rng, graph.num_nodes)
        outcome = session.apply_delta(delta)
        assert outcome.in_place
        assert session.plan.state["input_records"] is records   # no rescan
        reference = make_graph(29)
        reference.node_features[delta.node_ids] = delta.node_features
        np.testing.assert_array_equal(session.infer().scores,
                                      fresh_scores(reference))

    def test_shadow_mirror_records_refreshed(self):
        rng = np.random.default_rng(31)
        graph = make_graph(31)
        session = make_session()
        session.prepare(graph)
        shadow_plan = session.plan.shadow_plan
        assert shadow_plan is not None and shadow_plan.has_mirrors
        # Pick a mirrored hub and refresh its features: every replica record
        # must carry the new row.
        hub = int(next(iter(shadow_plan.replica_map)))
        delta = GraphDelta(node_ids=np.array([hub]),
                           node_features=rng.standard_normal((1, 8)))
        outcome = session.apply_delta(delta)
        assert outcome.in_place
        records = session.plan.state["input_records"]
        for replica in shadow_plan.replica_map[hub].tolist():
            np.testing.assert_array_equal(records[replica][1][0],
                                          delta.node_features[0])

    def test_patch_rejects_misindexed_records(self):
        from repro.inference.mapreduce_adaptor import patch_input_records

        graph = make_graph(33, num_nodes=300)
        session = make_session(shadow_nodes=False)
        session.prepare(graph)
        records = session.plan.state["input_records"]
        records[5], records[6] = records[6], records[5]
        with pytest.raises(RuntimeError, match="id-indexed"):
            patch_input_records(records, graph, np.array([5]))
