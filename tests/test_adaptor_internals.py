"""White-box tests for the backend adaptors' internal building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.mapreduce import TaskContext
from repro.gnn.model import build_model
from repro.graph.generators import labeled_community_graph, star_graph
from repro.inference.config import InferenceConfig, StrategyConfig
from repro.inference.mapreduce_adaptor import GNNRoundJob, _combine_messages, _partition_fn
from repro.inference.pregel_adaptor import GNNInferenceProgram
from repro.inference.strategies import build_strategy_plan
from repro.pregel.engine import PregelEngine
from repro.pregel.vertex import MessageBlock


@pytest.fixture()
def graph():
    return labeled_community_graph(num_nodes=60, num_classes=3, feature_dim=6,
                                   avg_degree=4.0, seed=2)


@pytest.fixture()
def sage(graph):
    return build_model("sage", graph.feature_dim, 8, 3, num_layers=2, seed=0)


@pytest.fixture()
def gat(graph):
    return build_model("gat", graph.feature_dim, 8, 3, num_layers=2, seed=0)


class TestPartitionFn:
    def test_integer_keys_by_modulo(self):
        assert _partition_fn(13, 4) == 1
        assert _partition_fn(8, 4) == 0

    def test_broadcast_keys_carry_bucket(self):
        assert _partition_fn(("bc", 2), 8) == 2
        assert _partition_fn(("bc", 11), 8) == 3


class TestCombineMessages:
    def test_folds_only_message_records(self, graph, sage):
        plan = build_strategy_plan(sage, graph, 4, StrategyConfig(partial_gather=True), False)
        values = [("m", np.ones(8), 1), ("m", np.ones(8) * 3, 1),
                  ("s", np.zeros(8), np.array([1]), None)]
        combined = _combine_messages(sage, plan, 0, 7, values)
        kinds = sorted(value[0] for _, value in combined)
        assert kinds == ["m", "s"]
        message = [value for _, value in combined if value[0] == "m"][0]
        np.testing.assert_allclose(message[1], np.ones(8) * 4)
        assert message[2] == 2

    def test_passthrough_when_partial_gather_disabled(self, graph, sage):
        plan = build_strategy_plan(sage, graph, 4, StrategyConfig(partial_gather=False), False)
        values = [("m", np.ones(8), 1), ("m", np.ones(8), 1)]
        combined = _combine_messages(sage, plan, 0, 7, values)
        assert len(combined) == 2

    def test_single_message_kept_as_is(self, graph, sage):
        plan = build_strategy_plan(sage, graph, 4, StrategyConfig(partial_gather=True), False)
        combined = _combine_messages(sage, plan, 0, 7, [("m", np.ones(8), 2)])
        assert combined[0][1][2] == 2

    def test_gat_never_combines(self, graph, gat):
        plan = build_strategy_plan(gat, graph, 4, StrategyConfig(partial_gather=True), False)
        values = [("m", np.ones(gat.layers[0].message_dim), 1)] * 3
        combined = _combine_messages(gat, plan, 0, 7, values)
        assert len(combined) == 3


class TestGNNRoundJob:
    def test_identity_map_for_later_rounds(self, graph, sage):
        plan = build_strategy_plan(sage, graph, 4, StrategyConfig(), False)
        job = GNNRoundJob(sage, plan, None, layer_index=1, num_reducers=4,
                          original_num_nodes=graph.num_nodes)
        records = [(3, ("m", np.ones(8), 1))]
        assert list(job.map_partition(records, TaskContext("map", 0))) == records

    def test_init_round_emits_state_and_messages(self, graph, sage):
        plan = build_strategy_plan(sage, graph, 4, StrategyConfig(), False)
        job = GNNRoundJob(sage, plan, None, layer_index=0, num_reducers=4,
                          original_num_nodes=graph.num_nodes)
        node_id = 0
        neighbors = graph.out_neighbors(node_id)
        records = [(node_id, (graph.node_features[node_id], neighbors, None))]
        emitted = list(job.map_partition(records, TaskContext("map", 0)))
        kinds = [value[0] for _, value in emitted]
        assert kinds.count("s") == 1
        assert kinds.count("m") == neighbors.size

    def test_combiner_flag_follows_plan(self, graph, sage, gat):
        sage_plan = build_strategy_plan(sage, graph, 4, StrategyConfig(partial_gather=True), False)
        gat_plan = build_strategy_plan(gat, graph, 4, StrategyConfig(partial_gather=True), False)
        assert GNNRoundJob(sage, sage_plan, None, 0, 4, graph.num_nodes).has_combiner
        assert not GNNRoundJob(gat, gat_plan, None, 0, 4, graph.num_nodes).has_combiner


class TestPregelProgram:
    def test_supersteps_equal_layers_plus_one(self, graph, sage):
        plan = build_strategy_plan(sage, graph, 4, StrategyConfig(), False)
        program = GNNInferenceProgram(sage, plan)
        assert program.max_supersteps() == 3

    def test_combiner_only_for_partial_layers(self, graph, sage, gat):
        sage_plan = build_strategy_plan(sage, graph, 4, StrategyConfig(partial_gather=True), False)
        program = GNNInferenceProgram(sage, sage_plan)
        assert program.combiner_for_superstep(0) is not None
        assert program.combiner_for_superstep(2) is None     # final superstep sends nothing
        gat_plan = build_strategy_plan(gat, graph, 4, StrategyConfig(partial_gather=True), False)
        gat_program = GNNInferenceProgram(gat, gat_plan)
        assert gat_program.combiner_for_superstep(0) is None

    def test_setup_partition_caches_local_indices(self, graph, sage):
        plan = build_strategy_plan(sage, graph, 4, StrategyConfig(), False)
        program = GNNInferenceProgram(sage, plan)
        engine = PregelEngine(graph, num_workers=4)
        partition = engine.partitions[0]
        program.setup_partition(partition)
        cached = partition.block_state["out_src_local"]
        np.testing.assert_array_equal(partition.node_ids[cached], partition.out_src)

    def test_assemble_messages_empty(self, graph, sage):
        plan = build_strategy_plan(sage, graph, 4, StrategyConfig(), False)
        program = GNNInferenceProgram(sage, plan)
        engine = PregelEngine(graph, num_workers=4)
        local_dst, payload, counts = program._assemble_messages(engine.partitions[0], [])
        assert local_dst.size == 0
        assert payload.shape[0] == 0

    def test_assemble_messages_concatenates_blocks(self, graph, sage):
        plan = build_strategy_plan(sage, graph, 4, StrategyConfig(), False)
        program = GNNInferenceProgram(sage, plan)
        engine = PregelEngine(graph, num_workers=4)
        partition = engine.partitions[0]
        owned = partition.node_ids[:2]
        blocks = [MessageBlock(dst_ids=np.array([owned[0]]), payload=np.ones((1, 8))),
                  MessageBlock(dst_ids=np.array([owned[1]]), payload=np.zeros((1, 8)))]
        local_dst, payload, counts = program._assemble_messages(partition, blocks)
        assert payload.shape == (2, 8)
        np.testing.assert_array_equal(local_dst, [0, 1])

    def test_star_hub_broadcast_block_used(self):
        """On an out-degree star with broadcast enabled, the hub's partition
        sends a reference-compressed block (far fewer payload bytes than rows)."""
        star = star_graph(200, direction="out", seed=0)
        model = build_model("sage", star.feature_dim, 8, 2, num_layers=2, seed=0)
        from repro.inference import InferTurbo

        base = InferTurbo(model, InferenceConfig(
            backend="pregel", num_workers=4,
            strategies=StrategyConfig(partial_gather=False))).run(star)
        broadcast = InferTurbo(model, InferenceConfig(
            backend="pregel", num_workers=4,
            strategies=StrategyConfig(partial_gather=False, broadcast=True,
                                      hub_threshold_override=10))).run(star)
        hub_worker = 0  # node 0 lives on partition 0 with mod-hash partitioning
        assert (broadcast.metrics.per_instance("bytes_out")[hub_worker]
                < base.metrics.per_instance("bytes_out")[hub_worker])
