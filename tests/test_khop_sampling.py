"""Tests for k-hop neighbourhood extraction, samplers and graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import (
    erdos_renyi_graph,
    labeled_community_graph,
    powerlaw_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.khop import khop_neighborhood, receptive_field_sizes
from repro.graph.sampling import (
    FullNeighborSampler,
    TopKNeighborSampler,
    UniformNeighborSampler,
)


class TestKHop:
    def test_line_graph_hops(self, tiny_line_graph):
        # 0 → 1 → 2 → 3 ; the 2-hop in-neighbourhood of 3 is {3, 2, 1}.
        sub = khop_neighborhood(tiny_line_graph, [3], num_hops=2)
        assert set(sub.node_ids.tolist()) == {3, 2, 1}
        assert sub.num_edges == 2
        assert sub.target_positions[0] == 0

    def test_zero_hops_returns_targets_only(self, tiny_line_graph):
        sub = khop_neighborhood(tiny_line_graph, [2], num_hops=0)
        assert sub.num_nodes == 1
        assert sub.num_edges == 0

    def test_star_graph_in_direction(self):
        star = star_graph(50, direction="in")
        sub = khop_neighborhood(star, [0], num_hops=1)
        assert sub.num_nodes == 51
        assert sub.num_edges == 50

    def test_star_graph_out_direction_has_no_in_neighbors(self):
        star = star_graph(50, direction="out")
        sub = khop_neighborhood(star, [0], num_hops=2)
        assert sub.num_nodes == 1      # hub has no in-edges

    def test_targets_keep_order_and_duplicates_are_merged(self, small_graph):
        sub = khop_neighborhood(small_graph, [5, 7, 5], num_hops=1)
        assert sub.target_positions.shape == (3,)
        assert sub.target_positions[0] == sub.target_positions[2]

    def test_local_indices_are_dense(self, small_graph):
        sub = khop_neighborhood(small_graph, [0, 1, 2], num_hops=2)
        assert sub.src.max(initial=-1) < sub.num_nodes
        assert sub.dst.max(initial=-1) < sub.num_nodes

    def test_features_and_labels_sliced(self, small_graph):
        sub = khop_neighborhood(small_graph, [3], num_hops=1)
        np.testing.assert_allclose(sub.node_features, small_graph.node_features[sub.node_ids])
        np.testing.assert_array_equal(sub.labels, small_graph.labels[sub.node_ids])

    def test_sampling_bounds_edges_per_node(self, small_graph):
        sampler = UniformNeighborSampler(2)
        sub = khop_neighborhood(small_graph, list(range(20)), num_hops=2, sampler=sampler,
                                rng=np.random.default_rng(0))
        counts = np.bincount(sub.dst, minlength=sub.num_nodes)
        assert counts.max(initial=0) <= 2

    def test_full_sampler_matches_receptive_field_growth(self, small_graph):
        sizes_1 = receptive_field_sizes(small_graph, [0, 1, 2], 1)
        sizes_2 = receptive_field_sizes(small_graph, [0, 1, 2], 2)
        assert np.all(sizes_2 >= sizes_1)

    def test_deterministic_with_full_sampler(self, small_graph):
        a = khop_neighborhood(small_graph, [4, 9], num_hops=2)
        b = khop_neighborhood(small_graph, [4, 9], num_hops=2)
        np.testing.assert_array_equal(a.node_ids, b.node_ids)
        np.testing.assert_array_equal(a.src, b.src)


class TestSamplers:
    def test_full_sampler_keeps_everything(self):
        edges = np.arange(17)
        out = FullNeighborSampler().sample(edges, np.random.default_rng(0))
        np.testing.assert_array_equal(out, edges)
        assert not FullNeighborSampler().is_stochastic

    def test_uniform_sampler_caps_count(self):
        sampler = UniformNeighborSampler(5)
        out = sampler.sample(np.arange(100), np.random.default_rng(0))
        assert out.size == 5
        assert sampler.is_stochastic

    def test_uniform_sampler_returns_all_when_small(self):
        sampler = UniformNeighborSampler(10)
        edges = np.arange(4)
        np.testing.assert_array_equal(sampler.sample(edges, np.random.default_rng(0)), edges)

    def test_uniform_sampler_varies_with_rng(self):
        sampler = UniformNeighborSampler(3)
        edges = np.arange(50)
        first = sampler.sample(edges, np.random.default_rng(1))
        second = sampler.sample(edges, np.random.default_rng(2))
        assert not np.array_equal(np.sort(first), np.sort(second))

    def test_topk_sampler_is_deterministic(self):
        sampler = TopKNeighborSampler(3)
        edges = np.array([9, 4, 1, 7, 2])
        out = sampler.sample(edges, np.random.default_rng(0))
        np.testing.assert_array_equal(out, [1, 2, 4])
        assert not sampler.is_stochastic

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            UniformNeighborSampler(0)
        with pytest.raises(ValueError):
            TopKNeighborSampler(-1)


class TestGenerators:
    def test_community_graph_shapes(self):
        graph = labeled_community_graph(300, num_classes=5, feature_dim=7, seed=0)
        assert graph.num_nodes == 300
        assert graph.node_features.shape == (300, 7)
        assert graph.labels.max() == 4

    def test_community_graph_deterministic_by_seed(self):
        a = labeled_community_graph(100, 3, 4, seed=5)
        b = labeled_community_graph(100, 3, 4, seed=5)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_allclose(a.node_features, b.node_features)

    def test_community_graph_multilabel(self):
        graph = labeled_community_graph(80, num_classes=6, feature_dim=4, multilabel=True, seed=1)
        assert graph.labels.shape == (80, 6)
        assert set(np.unique(graph.labels)).issubset({0.0, 1.0})

    def test_community_graph_edge_features(self):
        graph = labeled_community_graph(60, 3, 4, edge_feature_dim=5, seed=2)
        assert graph.edge_features.shape == (graph.num_edges, 5)

    def test_community_graph_homophily(self):
        graph = labeled_community_graph(400, num_classes=4, feature_dim=4, homophily=0.9, seed=3)
        same = (graph.labels[graph.src] == graph.labels[graph.dst]).mean()
        assert same > 0.5

    def test_powerlaw_out_skew(self):
        graph = powerlaw_graph(1000, avg_degree=8, skew="out", seed=0)
        out_deg = graph.out_degrees()
        in_deg = graph.in_degrees()
        # Out-degree distribution should be far more skewed than in-degree.
        assert out_deg.max() > 4 * in_deg.max()

    def test_powerlaw_in_skew(self):
        graph = powerlaw_graph(1000, avg_degree=8, skew="in", seed=0)
        assert graph.in_degrees().max() > 4 * graph.out_degrees().max()

    def test_powerlaw_both_skew_runs(self):
        graph = powerlaw_graph(500, avg_degree=6, skew="both", seed=1)
        assert graph.num_edges > 0

    def test_powerlaw_invalid_skew(self):
        with pytest.raises(ValueError):
            powerlaw_graph(100, skew="sideways")

    def test_powerlaw_no_self_loops(self):
        graph = powerlaw_graph(300, avg_degree=5, skew="out", seed=2)
        assert np.all(graph.src != graph.dst)

    def test_erdos_renyi(self):
        graph = erdos_renyi_graph(200, avg_degree=4, seed=0)
        assert graph.num_nodes == 200
        assert abs(graph.num_edges / 200 - 4) < 1.5

    def test_star_graph_degrees(self):
        star_in = star_graph(30, direction="in")
        assert star_in.in_degrees()[0] == 30
        star_out = star_graph(30, direction="out")
        assert star_out.out_degrees()[0] == 30

    def test_star_graph_invalid_direction(self):
        with pytest.raises(ValueError):
            star_graph(10, direction="loop")
