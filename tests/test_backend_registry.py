"""The backend plugin registry: lookup, registration rules, and the k-hop
backend's parity with the full-graph backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.resources import ClusterSpec
from repro.gnn.model import build_model
from repro.graph.generators import labeled_community_graph
from repro.inference import (
    InferenceConfig,
    InferenceSession,
    UnknownBackendError,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.inference.backends import KHopBackend, MapReduceBackend, PregelBackend


@pytest.fixture(scope="module")
def community():
    return labeled_community_graph(num_nodes=120, num_classes=3, feature_dim=8,
                                   avg_degree=5.0, seed=2)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == {"pregel", "mapreduce", "khop"}

    def test_get_backend_returns_singletons(self):
        assert isinstance(get_backend("pregel"), PregelBackend)
        assert isinstance(get_backend("mapreduce"), MapReduceBackend)
        assert isinstance(get_backend("khop"), KHopBackend)
        assert get_backend("pregel") is get_backend("pregel")

    def test_unknown_backend_lists_registered_names(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("spark-on-mars")
        message = str(excinfo.value)
        assert "spark-on-mars" in message
        for name in ("pregel", "mapreduce", "khop"):
            assert name in message

    def test_unknown_backend_is_a_value_error(self):
        with pytest.raises(ValueError):
            get_backend("nope")

    def test_duplicate_registration_rejected(self):
        @register_backend("test-dummy")
        class DummyBackend:
            def default_cluster(self, num_workers):
                return ClusterSpec.pregel_default(num_workers)

            def plan(self, model, graph, config):
                raise NotImplementedError

            def execute(self, plan, metrics):
                raise NotImplementedError

        try:
            assert "test-dummy" in available_backends()
            with pytest.raises(ValueError, match="already registered"):
                register_backend("test-dummy")(DummyBackend)
        finally:
            unregister_backend("test-dummy")
        assert "test-dummy" not in available_backends()

    def test_decorator_stamps_name(self):
        assert get_backend("khop").name == "khop"

    def test_config_accepts_any_registered_backend(self):
        config = InferenceConfig(backend="khop", num_workers=4)
        assert config.cluster.num_workers == 4
        # khop simulates the traditional deployment's beefier workers.
        assert config.cluster.worker.cpu_cores == ClusterSpec.traditional_default(4).worker.cpu_cores

    def test_config_rejects_unregistered_backend_with_names(self):
        with pytest.raises(ValueError) as excinfo:
            InferenceConfig(backend="flink")
        assert "pregel" in str(excinfo.value)


class TestKHopBackend:
    def test_khop_matches_pregel_shape_dtype_and_values(self, community):
        model = build_model("sage", community.feature_dim, 16, 3, num_layers=2, seed=1)
        pregel = InferenceSession(model, InferenceConfig(backend="pregel", num_workers=4))
        khop = InferenceSession(model, InferenceConfig(backend="khop", num_workers=4))
        p = pregel.infer(community)
        k = khop.infer(community)
        assert k.scores.shape == p.scores.shape
        assert k.scores.dtype == p.scores.dtype
        # Full neighbourhoods -> deterministic and numerically equal.
        np.testing.assert_allclose(k.scores, p.scores, atol=1e-9)

    def test_khop_repeated_runs_identical(self, community):
        model = build_model("gcn", community.feature_dim, 12, 3, num_layers=2, seed=3)
        session = InferenceSession(model, InferenceConfig(backend="khop", num_workers=2))
        session.prepare(community)
        first, second = session.infer_many(2)
        np.testing.assert_array_equal(first.scores, second.scores)

    def test_khop_records_metrics_and_cost(self, community):
        model = build_model("sage", community.feature_dim, 8, 3, num_layers=2, seed=4)
        session = InferenceSession(model, InferenceConfig(backend="khop", num_workers=2))
        result = session.infer(community)
        assert result.cost.cpu_minutes > 0
        assert result.metrics.instances(), "khop execution should record per-instance metrics"
