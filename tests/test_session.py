"""InferenceSession: plan-once/infer-many semantics, bit-identical parity with
the deprecated InferTurbo shim, structured reports, and the hub-mirror merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.gnn.signature import export_signature
from repro.graph.generators import labeled_community_graph, powerlaw_graph
from repro.graph.tables import graph_to_tables
from repro.inference import (
    InferenceConfig,
    InferenceSession,
    InferTurbo,
    StrategyConfig,
)
from repro.inference.backends import merge_hub_mirrors, plan_gas_execution
from repro.inference.shadow import ShadowNodePlan, apply_shadow_nodes
from repro.inference.strategies import build_strategy_plan


@pytest.fixture(scope="module")
def community():
    return labeled_community_graph(num_nodes=150, num_classes=4, feature_dim=10,
                                   avg_degree=6.0, seed=5)


@pytest.fixture(scope="module")
def skewed():
    return powerlaw_graph(num_nodes=350, avg_degree=6.0, skew="out", feature_dim=8,
                          num_classes=3, seed=9)


ALL_ON = StrategyConfig(partial_gather=True, broadcast=True, shadow_nodes=True,
                        hub_threshold_override=15)


class _CountingBackend:
    """Delegating spy that counts plan/execute calls on one session."""

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.plan_calls = 0
        self.execute_calls = 0

    def default_cluster(self, num_workers):
        return self._inner.default_cluster(num_workers)

    def plan(self, model, graph, config):
        self.plan_calls += 1
        return self._inner.plan(model, graph, config)

    def execute(self, plan, metrics):
        self.execute_calls += 1
        return self._inner.execute(plan, metrics)


class TestSessionLifecycle:
    def test_infer_before_prepare_raises(self, community):
        model = build_model("sage", community.feature_dim, 8, 4, seed=0)
        session = InferenceSession(model, InferenceConfig(backend="pregel", num_workers=2))
        with pytest.raises(RuntimeError, match="prepare"):
            session.infer()

    def test_prepare_returns_cached_plan(self, community):
        model = build_model("sage", community.feature_dim, 8, 4, seed=0)
        session = InferenceSession(model, InferenceConfig(backend="pregel", num_workers=2))
        assert not session.is_prepared
        plan = session.prepare(community)
        assert session.is_prepared and session.plan is plan
        assert "pregel" in plan.describe()

    @pytest.mark.parametrize("backend", ["pregel", "mapreduce"])
    def test_second_infer_skips_planning(self, community, backend):
        model = build_model("sage", community.feature_dim, 8, 4, seed=1)
        session = InferenceSession(model, InferenceConfig(backend=backend, num_workers=3))
        spy = _CountingBackend(session.backend)
        session.backend = spy

        plan = session.prepare(community)
        first = session.infer()
        second = session.infer(community)     # same graph object: no re-plan
        third = session.infer()
        assert spy.plan_calls == 1
        assert spy.execute_calls == 3
        assert session.plan is plan
        np.testing.assert_array_equal(first.scores, second.scores)
        np.testing.assert_array_equal(first.scores, third.scores)

    def test_new_graph_triggers_replan(self, community):
        other = labeled_community_graph(num_nodes=90, num_classes=4,
                                        feature_dim=community.feature_dim,
                                        avg_degree=5.0, seed=21)
        model = build_model("sage", community.feature_dim, 8, 4, seed=1)
        session = InferenceSession(model, InferenceConfig(backend="pregel", num_workers=2))
        spy = _CountingBackend(session.backend)
        session.backend = spy
        session.infer(community)
        session.infer(other)
        assert spy.plan_calls == 2

    def test_infer_many(self, community):
        model = build_model("gcn", community.feature_dim, 8, 4, seed=2)
        session = InferenceSession(model, InferenceConfig(backend="pregel", num_workers=2))
        session.prepare(community)
        results = session.infer_many(3)
        assert len(results) == 3 and session.num_runs == 3
        for result in results[1:]:
            np.testing.assert_array_equal(results[0].scores, result.scores)
        with pytest.raises(ValueError):
            session.infer_many(0)

    def test_infer_many_rejects_non_integral_n(self, community):
        # infer_many(0.5) used to pass the n <= 0 guard and silently return []
        # without running anything.
        model = build_model("gcn", community.feature_dim, 8, 4, seed=2)
        session = InferenceSession(model, InferenceConfig(backend="pregel", num_workers=2))
        session.prepare(community)
        with pytest.raises(TypeError, match="integer"):
            session.infer_many(0.5)
        with pytest.raises(TypeError, match="integer"):
            session.infer_many(2.0)
        with pytest.raises(TypeError, match="integer"):
            session.infer_many(True)
        assert session.num_runs == 0
        assert len(session.infer_many(np.int64(2))) == 2

    def test_session_from_signature_and_tables(self, community):
        model = build_model("sage", community.feature_dim, 8, 4, seed=3)
        from_model = InferenceSession(model, InferenceConfig(num_workers=3)).infer(community)
        signature_session = InferenceSession(export_signature(model),
                                             InferenceConfig(num_workers=3))
        from_signature = signature_session.infer(graph_to_tables(community))
        np.testing.assert_allclose(from_model.scores, from_signature.scores, atol=1e-12)

    def test_table_pair_does_not_replan_per_infer(self, community):
        """A (NodeTable, EdgeTable) source is ingested once, not per call."""
        model = build_model("sage", community.feature_dim, 8, 4, seed=1)
        session = InferenceSession(model, InferenceConfig(backend="pregel", num_workers=2))
        spy = _CountingBackend(session.backend)
        session.backend = spy
        tables = graph_to_tables(community)
        session.prepare(tables)
        first = session.infer(tables)
        second = session.infer(tables)
        assert spy.plan_calls == 1
        np.testing.assert_array_equal(first.scores, second.scores)

    def test_bad_table_pair_rejected(self, community):
        model = build_model("sage", community.feature_dim, 8, 4, seed=0)
        session = InferenceSession(model, InferenceConfig(num_workers=2))
        with pytest.raises(TypeError):
            session.prepare(("not", "tables"))


class TestReport:
    def test_report_aggregates_runs(self, community):
        model = build_model("sage", community.feature_dim, 8, 4, seed=4)
        session = InferenceSession(model, InferenceConfig(backend="pregel", num_workers=2))
        empty = session.report()
        assert empty.num_runs == 0 and empty.scores is None
        assert empty.plan_description == "<unprepared>"

        session.prepare(community)
        results = session.infer_many(2)
        report = session.report()
        assert report.backend == "pregel"
        assert report.num_runs == 2
        assert report.scores is results[-1].scores
        assert report.total_wall_clock_seconds == pytest.approx(
            sum(r.cost.wall_clock_seconds for r in results))
        assert report.total_cpu_minutes == pytest.approx(
            sum(r.cost.cpu_minutes for r in results))
        assert "pregel" in report.describe()

    def test_report_tracks_measured_wall_clock(self, community):
        # elapsed_seconds is the *measured* per-infer wall clock (distinct
        # from the simulated cluster cost model) — the single latency source
        # of truth the pool's totals and the gateway's percentiles read.
        model = build_model("sage", community.feature_dim, 8, 4, seed=4)
        session = InferenceSession(model, InferenceConfig(backend="pregel",
                                                          num_workers=2))
        session.prepare(community)
        results = session.infer_many(3)
        assert all(r.elapsed_seconds > 0.0 for r in results)
        report = session.report()
        assert report.total_elapsed_seconds == pytest.approx(
            sum(r.elapsed_seconds for r in results))
        assert report.last_elapsed_seconds == results[-1].elapsed_seconds
        assert report.mean_elapsed_seconds == pytest.approx(
            report.total_elapsed_seconds / 3)
        assert "measured" in report.describe()


class TestShimParity:
    @pytest.mark.parametrize("backend", ["pregel", "mapreduce"])
    def test_session_bit_identical_to_inferturbo(self, skewed, backend):
        model = build_model("sage", skewed.feature_dim, 16, 3, num_layers=2, seed=2)
        config = dict(backend=backend, num_workers=4, strategies=ALL_ON)
        session = InferenceSession(model, InferenceConfig(**config))
        via_session = session.infer(skewed)
        with pytest.deprecated_call():
            shim = InferTurbo(model, InferenceConfig(**config))
        via_shim = shim.run(skewed)
        np.testing.assert_array_equal(via_session.scores, via_shim.scores)

    def test_shim_exposes_model_and_config(self, community):
        model = build_model("sage", community.feature_dim, 8, 4, seed=0)
        config = InferenceConfig(num_workers=2)
        with pytest.deprecated_call():
            shim = InferTurbo(model, config)
        assert shim.model is model
        assert shim.config is config
        assert isinstance(shim.session, InferenceSession)


class TestHubMirrorMerge:
    def _plan_for(self, graph, model, num_workers=4, threshold=15):
        return build_strategy_plan(
            model, graph, num_workers,
            StrategyConfig(shadow_nodes=True, broadcast=True,
                           hub_threshold_override=threshold),
            graph.edge_features is not None)

    def test_merge_dedupes_and_sorts(self, skewed):
        model = build_model("sage", skewed.feature_dim, 8, 3, seed=0)
        plan = self._plan_for(skewed, model)
        shadow = apply_shadow_nodes(skewed, plan.threshold, 4)
        assert shadow.mirror_origin, "fixture should produce mirrors"
        merge_hub_mirrors(plan, shadow)
        hubs = plan.out_degree_hubs
        assert hubs.dtype == np.int64
        assert np.array_equal(hubs, np.unique(hubs))  # sorted + deduplicated

    def test_merge_with_empty_hub_array_stays_int64(self, skewed):
        model = build_model("sage", skewed.feature_dim, 8, 3, seed=0)
        plan = self._plan_for(skewed, model)
        plan.out_degree_hubs = np.empty(0, dtype=np.float64)  # worst case dtype
        shadow = ShadowNodePlan(graph=skewed, original_num_nodes=skewed.num_nodes)
        merge_hub_mirrors(plan, shadow)
        assert plan.out_degree_hubs.dtype == np.int64
        assert plan.out_degree_hubs.size == 0
        merge_hub_mirrors(plan, None)
        assert plan.out_degree_hubs.dtype == np.int64

    def test_gas_planning_produces_sorted_hubs(self, skewed):
        model = build_model("sage", skewed.feature_dim, 8, 3, seed=0)
        config = InferenceConfig(backend="pregel", num_workers=4, strategies=ALL_ON)
        plan = plan_gas_execution("pregel", model, skewed, config)
        hubs = plan.strategy_plan.out_degree_hubs
        assert hubs.dtype == np.int64
        assert np.array_equal(hubs, np.unique(hubs))
        # Mirrors of hubs are included in the hub set.
        assert plan.shadow_plan is not None
        mirrors_of_hubs = [mid for mid, origin in plan.shadow_plan.mirror_origin.items()]
        if mirrors_of_hubs:
            assert np.isin(np.asarray(mirrors_of_hubs, dtype=np.int64), hubs).any()
