"""Tests that the hub-node strategies actually change the system behaviour the
paper claims they change: less IO, fewer records, better balance — while the
equivalence tests (test_inference_equivalence.py) pin down that results never
change."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph, star_graph
from repro.inference import InferTurbo, InferenceConfig, StrategyConfig


def run_with(graph, arch="sage", backend="pregel", num_workers=8, **strategy_kwargs):
    model = build_model(arch, graph.feature_dim, 16, 2, num_layers=2, seed=0)
    config = InferenceConfig(backend=backend, num_workers=num_workers,
                             strategies=StrategyConfig(**strategy_kwargs))
    return InferTurbo(model, config).run(graph)


@pytest.fixture(scope="module")
def in_skewed():
    return powerlaw_graph(num_nodes=2000, avg_degree=8.0, skew="in", feature_dim=8,
                          num_classes=2, seed=3)


@pytest.fixture(scope="module")
def out_skewed():
    return powerlaw_graph(num_nodes=2000, avg_degree=8.0, skew="out", feature_dim=8,
                          num_classes=2, seed=4)


class TestPartialGatherEffects:
    def test_reduces_received_records(self, in_skewed):
        base = run_with(in_skewed, partial_gather=False)
        partial = run_with(in_skewed, partial_gather=True)
        assert (partial.metrics.total("records_in")
                < base.metrics.total("records_in"))

    def test_reduces_received_bytes(self, in_skewed):
        base = run_with(in_skewed, partial_gather=False)
        partial = run_with(in_skewed, partial_gather=True)
        assert partial.metrics.total("bytes_in") < base.metrics.total("bytes_in")

    def test_caps_messages_per_node_at_worker_count(self):
        """A huge in-degree hub receives at most one message per worker and layer."""
        star = star_graph(500, direction="in", seed=0)
        num_workers = 4
        partial = run_with(star, num_workers=num_workers, partial_gather=True)
        # Hub (node 0) lives on instance 0; count its received records in the
        # superstep that gathers layer-0 messages.
        records = partial.metrics.get("superstep_1", 0).records_in
        assert records <= num_workers * 2  # one per worker (+ slack for mirror-free setup)

    def test_flattens_straggler_time(self, in_skewed):
        base = run_with(in_skewed, partial_gather=False)
        partial = run_with(in_skewed, partial_gather=True)
        base_times = np.fromiter(base.cost.instance_times().values(), dtype=np.float64)
        partial_times = np.fromiter(partial.cost.instance_times().values(), dtype=np.float64)
        assert partial_times.var() < base_times.var()

    def test_no_effect_for_gat(self, in_skewed):
        """GAT's union aggregate cannot be partially gathered: plan must disable it."""
        result = run_with(in_skewed, arch="gat", partial_gather=True)
        assert not any(layer.partial_gather for layer in result.plan.layer_strategies)


class TestBroadcastEffects:
    def test_reduces_bytes_out_on_out_skewed_graph(self, out_skewed):
        base = run_with(out_skewed, broadcast=False, partial_gather=False)
        broadcast = run_with(out_skewed, broadcast=True, partial_gather=False)
        assert broadcast.metrics.total("bytes_out") < base.metrics.total("bytes_out")

    def test_reduces_hub_owner_bytes_out(self):
        star = star_graph(1000, direction="out", seed=1)
        base = run_with(star, num_workers=4, broadcast=False, partial_gather=False,
                        hub_threshold_override=50)
        broadcast = run_with(star, num_workers=4, broadcast=True, partial_gather=False,
                             hub_threshold_override=50)
        # The hub lives on instance 0; its output bytes must shrink sharply.
        base_out = base.metrics.per_instance("bytes_out")[0]
        broadcast_out = broadcast.metrics.per_instance("bytes_out")[0]
        assert broadcast_out < 0.6 * base_out

    def test_threshold_controls_applicability(self, out_skewed):
        """With an absurdly high threshold no node is a hub and broadcast is a no-op."""
        base = run_with(out_skewed, broadcast=False, partial_gather=False)
        no_hubs = run_with(out_skewed, broadcast=True, partial_gather=False,
                           hub_threshold_override=10**9)
        assert no_hubs.metrics.total("bytes_out") == pytest.approx(
            base.metrics.total("bytes_out"))

    def test_broadcast_applies_to_gat_messages(self, out_skewed):
        """GAT messages depend only on the source, so broadcast still applies."""
        base = run_with(out_skewed, arch="gat", broadcast=False, partial_gather=False)
        broadcast = run_with(out_skewed, arch="gat", broadcast=True, partial_gather=False)
        assert broadcast.metrics.total("bytes_out") < base.metrics.total("bytes_out")


class TestShadowNodeEffects:
    def test_balances_bytes_out(self, out_skewed):
        base = run_with(out_skewed, shadow_nodes=False, partial_gather=False)
        shadow = run_with(out_skewed, shadow_nodes=True, partial_gather=False)
        base_out = np.fromiter(base.metrics.per_instance("bytes_out").values(), dtype=np.float64)
        shadow_out = np.fromiter(shadow.metrics.per_instance("bytes_out").values(), dtype=np.float64)
        assert shadow_out.max() < base_out.max()

    def test_increases_total_bytes_in(self, out_skewed):
        """The documented overhead: mirrors duplicate in-edge messages."""
        base = run_with(out_skewed, shadow_nodes=False, partial_gather=False)
        shadow = run_with(out_skewed, shadow_nodes=True, partial_gather=False,
                          hub_threshold_override=50)
        assert shadow.metrics.total("bytes_in") >= base.metrics.total("bytes_in")

    def test_scores_exclude_mirrors(self, out_skewed):
        shadow = run_with(out_skewed, shadow_nodes=True, partial_gather=False)
        assert shadow.scores.shape[0] == out_skewed.num_nodes


class TestBackendTradeoff:
    def test_mapreduce_moves_more_bytes_than_pregel(self, out_skewed):
        """The MR backend re-shuffles node state every round; Pregel keeps it local."""
        pregel = run_with(out_skewed, backend="pregel", partial_gather=True)
        mapreduce = run_with(out_skewed, backend="mapreduce", partial_gather=True)
        assert (mapreduce.metrics.total("bytes_out")
                > pregel.metrics.total("bytes_out"))

    def test_mapreduce_bounded_peak_memory(self, out_skewed):
        """Peak reducer memory must stay well below holding the entire graph state."""
        mapreduce = run_with(out_skewed, backend="mapreduce", partial_gather=True)
        peak = max(m.peak_memory_bytes for m in mapreduce.metrics.instances())
        total_feature_bytes = out_skewed.node_features.nbytes
        total_message_bytes = out_skewed.num_edges * 16 * 8
        assert peak < total_feature_bytes + total_message_bytes

    def test_pregel_uses_fewer_supersteps_worth_of_phases(self, out_skewed):
        pregel = run_with(out_skewed, backend="pregel")
        mapreduce = run_with(out_skewed, backend="mapreduce")
        assert len(pregel.metrics.phases()) == 3          # L+1 supersteps
        assert len(mapreduce.metrics.phases()) == 4       # L rounds x (map + reduce)

    def test_cost_summary_populated(self, out_skewed):
        result = run_with(out_skewed, backend="pregel")
        assert result.cost.wall_clock_seconds > 0
        assert result.cost.cpu_minutes > 0
        assert result.cost.total_bytes > 0
        assert len(result.cost.phases) == 3
